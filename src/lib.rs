//! # HIRE — Heterogeneous Interaction Modeling for Cold-Start Rating Prediction
//!
//! A from-scratch Rust reproduction of the ICDE 2025 paper *"All-in-One:
//! Heterogeneous Interaction Modeling for Cold-Start Rating Prediction"*.
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `hire-tensor` | dense `f32` tensors + reverse-mode autograd |
//! | [`nn`] | `hire-nn` | Linear/Embedding/MHSA/LayerNorm/MLP layers |
//! | [`optim`] | `hire-optim` | SGD/Adam/LAMB/Lookahead, LR schedules, clipping |
//! | [`graph`] | `hire-graph` | bipartite rating graph + context samplers |
//! | [`data`] | `hire-data` | datasets, synthetic generators, cold-start splits |
//! | [`core`] | `hire-core` | the HIRE model (HIM blocks) and trainer |
//! | [`baselines`] | `hire-baselines` | NeuMF, Wide&Deep, DeepFM, AFN, GraphRec, HIN, MeLU, MAMO, TaNP |
//! | [`metrics`] | `hire-metrics` | Precision/NDCG/MAP @ k |
//! | [`eval`] | `hire-eval` | the comparison harness used by the benches |
//! | [`serve`] | `hire-serve` | online inference: frozen models, context cache, worker pool, degradation ladder |
//! | [`wal`] | `hire-wal` | write-ahead log: group commit, segment rotation, crash recovery |
//! | [`chaos`] | `hire-chaos` | deterministic fault injection for resilience testing |
//!
//! ```
//! use hire::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. generate a small MovieLens-like dataset
//! let dataset = SyntheticConfig::movielens_like().scaled(40, 30, (8, 16)).generate(7);
//! // 2. make a user cold-start split and train HIRE
//! let split = ColdStartSplit::new(&dataset, ColdStartScenario::UserCold, 0.25, 0.1, 7);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let config = HireConfig::fast().with_blocks(1).with_context_size(6, 6);
//! let model = HireModel::new(&dataset, &config, &mut rng);
//! let report = hire::core::train(
//!     &model, &dataset, &split.train_graph(&dataset), &NeighborhoodSampler,
//!     &TrainConfig { steps: 5, batch_size: 2, base_lr: 1e-3, grad_clip: 1.0,
//!                    ..TrainConfig::paper_default() },
//!     &mut rng)
//!     .expect("training");
//! assert_eq!(report.steps.len(), 5);
//! assert!(report.recoveries.is_empty());
//! ```

pub use hire_baselines as baselines;
pub use hire_chaos as chaos;
pub use hire_core as core;
pub use hire_data as data;
pub use hire_error as error;
pub use hire_eval as eval;
pub use hire_graph as graph;
pub use hire_metrics as metrics;
pub use hire_nn as nn;
pub use hire_optim as optim;
pub use hire_serve as serve;
pub use hire_tensor as tensor;
pub use hire_wal as wal;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use hire_core::{
        fine_tune, train, train_guarded, GuardConfig, HireConfig, HireModel, TrainConfig,
        TrainOutcome, TrainReport,
    };
    pub use hire_data::{
        test_context, training_context, ColdStartScenario, ColdStartSplit, Dataset,
        PredictionContext, SyntheticConfig,
    };
    pub use hire_eval::{evaluate_model, EvalConfig, HireRatingModel, SpeedTier};
    pub use hire_graph::{
        BipartiteGraph, ContextSampler, FeatureSimilaritySampler, NeighborhoodSampler,
        RandomSampler, Rating,
    };
    pub use hire_metrics::{map_at_k, ndcg_at_k, precision_at_k, ranking_metrics, ScoredPair};
    pub use hire_nn::Module;
    pub use hire_serve::{
        BreakerConfig, BreakerState, ColdScenario, EngineConfig, EvalReport, FrozenModel,
        ModelVersion, OnlineConfig, OnlineLoop, OnlineTrainer, RatingQuery, ResilienceConfig,
        RoundOutcome, ServeEngine, ServeError, ServedBy, Server, ServerConfig, TierStats,
    };
    pub use hire_tensor::{NdArray, Shape, Tensor};
    pub use hire_wal::{Durability, Wal, WalOptions};
}
