//! Head-to-head comparison on all three cold-start scenarios: HIRE vs a
//! CF baseline (NeuMF) and a meta-learning baseline (MeLU) — a miniature
//! of the paper's Tables III-V.
//!
//! ```sh
//! cargo run --release --example cold_start_comparison
//! ```

use hire::baselines::{EdgeTrainConfig, MeLU, MetaTrainConfig, NeuMF, RatingModel};
use hire::eval::{evaluate_model, EvalConfig, HireRatingModel};
use hire::prelude::*;

fn main() {
    let dataset = SyntheticConfig::movielens_like()
        .scaled(100, 80, (15, 35))
        .generate(7);
    println!(
        "dataset: {} ({} users x {} items, {} ratings)\n",
        dataset.name,
        dataset.num_users,
        dataset.num_items,
        dataset.ratings.len()
    );

    let eval_cfg = EvalConfig {
        max_entities: 15,
        ..Default::default()
    };
    println!(
        "{:<10}{:<12}{:>10}{:>10}{:>10}",
        "Scenario", "Method", "Pre@5", "NDCG@5", "MAP@5"
    );
    for scenario in ColdStartScenario::ALL {
        let split = ColdStartSplit::new(&dataset, scenario, 0.25, 0.1, 7);
        let mut models: Vec<Box<dyn RatingModel>> = vec![
            Box::new(NeuMF::new(8, EdgeTrainConfig::default())),
            Box::new(MeLU::new(8, MetaTrainConfig::default())),
            Box::new(HireRatingModel::new(
                HireConfig::fast(),
                TrainConfig {
                    steps: 150,
                    batch_size: 4,
                    base_lr: 3e-3,
                    grad_clip: 1.0,
                    ..TrainConfig::paper_default()
                },
            )),
        ];
        for model in &mut models {
            let r = evaluate_model(model.as_mut(), &dataset, &split, &eval_cfg);
            let at5 = &r.at_k[0];
            println!(
                "{:<10}{:<12}{:>10.4}{:>10.4}{:>10.4}",
                scenario.label(),
                r.model,
                at5.precision,
                at5.ndcg,
                at5.map
            );
        }
        println!();
    }
    println!("(expected shape: HIRE leads, MeLU between, NeuMF weakest on cold entities)");
}
