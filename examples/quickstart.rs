//! Quickstart: train HIRE on a small synthetic dataset and predict the
//! ratings of a cold-start user.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hire::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. A small MovieLens-like dataset: 80 users x 60 items with
    //    categorical attributes on both sides.
    let dataset = SyntheticConfig::movielens_like()
        .scaled(80, 60, (15, 30))
        .generate(42);
    println!(
        "dataset: {} users x {} items, {} ratings",
        dataset.num_users,
        dataset.num_items,
        dataset.ratings.len()
    );

    // 2. Hold out 25% of users as cold-start users. Each cold user reveals
    //    ~10% of their ratings (support); the rest are queries to predict.
    let split = ColdStartSplit::new(&dataset, ColdStartScenario::UserCold, 0.25, 0.1, 42);
    println!(
        "split: {} warm users, {} cold users, {} query ratings",
        split.train_users.len(),
        split.test_users.len(),
        split.query_ratings.len()
    );

    // 3. Build and train a HIRE model (scaled-down configuration).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let config = HireConfig::fast().with_context_size(12, 12);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let train_graph = split.train_graph(&dataset);
    println!("training HIRE ({} parameters) ...", model.num_parameters());
    let report = hire::core::train(
        &model,
        &dataset,
        &train_graph,
        &NeighborhoodSampler,
        &TrainConfig {
            steps: 120,
            batch_size: 4,
            base_lr: 3e-3,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        },
        &mut rng,
    )
    .expect("training");
    println!(
        "loss: {:.3} -> {:.3} ({} recoveries)",
        report.steps.first().unwrap().loss,
        report.steps.last().unwrap().loss,
        report.recoveries.len()
    );

    // 4. Predict one cold user's query ratings. The prediction context is
    //    sampled around the cold user from the *visible* graph (training
    //    edges + the cold user's few support edges).
    let visible = split.visible_graph(&dataset);
    let (cold_user, queries) = split
        .queries_by_entity()
        .into_iter()
        .max_by_key(|(_, q)| q.len())
        .expect("cold user with queries");
    let ctx = test_context(&visible, &NeighborhoodSampler, &queries, 12, 12, &mut rng)
        .expect("test context");
    let pred = model.predict(&ctx, &dataset);

    println!("\ncold user u{cold_user}:");
    let mut scored = Vec::new();
    for (row, col, actual) in ctx.targets() {
        if ctx.users[row] == cold_user {
            let p = pred.at(&[row, col]);
            println!(
                "  item i{:<5} predicted {:.2}  actual {:.1}",
                ctx.items[col], p, actual
            );
            scored.push(ScoredPair::new(p, actual));
        }
    }

    // 5. Ranking quality of the prediction.
    let m = ranking_metrics(&scored, 5, dataset.relevance_threshold());
    println!(
        "\nPrecision@5 = {:.3}   NDCG@5 = {:.3}   MAP@5 = {:.3}",
        m.precision, m.ndcg, m.map
    );
}
