//! Inspect the heterogeneous interactions HIRE learns (the paper's Fig. 9
//! case study): train a model, run one prediction context, and print the
//! strongest user-user, item-item and attribute-attribute attention edges.
//!
//! ```sh
//! cargo run --release --example attention_inspection
//! ```

use hire::prelude::*;
use rand::SeedableRng;

fn main() {
    let dataset = SyntheticConfig::movielens_like()
        .scaled(80, 60, (15, 30))
        .generate(11);
    let split = ColdStartSplit::new(&dataset, ColdStartScenario::UserCold, 0.25, 0.1, 11);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    let config = HireConfig::fast().with_context_size(10, 10);
    let model = HireModel::new(&dataset, &config, &mut rng);
    println!("training ...");
    hire::core::train(
        &model,
        &dataset,
        &split.train_graph(&dataset),
        &NeighborhoodSampler,
        &TrainConfig {
            steps: 150,
            batch_size: 4,
            base_lr: 3e-3,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        },
        &mut rng,
    )
    .expect("training");

    // Build a test context for the first eligible cold user.
    let (cold_user, queries) = split
        .queries_by_entity()
        .into_iter()
        .find(|(_, q)| q.len() >= 4)
        .expect("cold user with queries");
    let visible = split.visible_graph(&dataset);
    let ctx = test_context(
        &visible,
        &NeighborhoodSampler,
        &queries[..4],
        10,
        10,
        &mut rng,
    )
    .expect("test context");
    let (_, attns) = model.forward_with_attention(&ctx, &dataset);
    let last = attns.last().unwrap();

    // Strongest user-user interactions for the first item view (MBU).
    println!(
        "\n## strongest user-user attention (MBU, item i{} view)",
        ctx.items[0]
    );
    let heads = last.mbu.dims()[1];
    let n = ctx.n();
    let mut edges: Vec<(f32, usize, usize)> = Vec::new();
    for r in 0..n {
        for c in 0..n {
            if r == c {
                continue;
            }
            let w: f32 = (0..heads).map(|h| last.mbu.at(&[0, h, r, c])).sum::<f32>() / heads as f32;
            edges.push((w, r, c));
        }
    }
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for &(w, r, c) in edges.iter().take(5) {
        println!("  u{} <- u{}  weight {:.3}", ctx.users[r], ctx.users[c], w);
    }

    // Strongest item-item interactions for the cold user's view (MBI).
    let cold_row = ctx.user_row(cold_user).unwrap_or(0);
    println!("\n## strongest item-item attention (MBI, cold user u{cold_user} view)");
    let m = ctx.m();
    let mut edges: Vec<(f32, usize, usize)> = Vec::new();
    for r in 0..m {
        for c in 0..m {
            if r == c {
                continue;
            }
            let w: f32 = (0..heads)
                .map(|h| last.mbi.at(&[cold_row, h, r, c]))
                .sum::<f32>()
                / heads as f32;
            edges.push((w, r, c));
        }
    }
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for &(w, r, c) in edges.iter().take(5) {
        println!("  i{} <- i{}  weight {:.3}", ctx.items[r], ctx.items[c], w);
    }

    // Attribute-attribute attention for the (cold user, first item) pair.
    println!(
        "\n## attribute attention (MBA) for (u{cold_user}, i{})",
        ctx.items[0]
    );
    let mut labels: Vec<String> = dataset
        .user_schema
        .attributes()
        .iter()
        .map(|a| format!("u:{}", a.name))
        .collect();
    labels.extend(
        dataset
            .item_schema
            .attributes()
            .iter()
            .map(|a| format!("i:{}", a.name)),
    );
    labels.push("rating".into());
    let h_attrs = labels.len();
    let pair_view = cold_row * m; // pair (cold_row, item column 0)
    let mut edges: Vec<(f32, usize, usize)> = Vec::new();
    for r in 0..h_attrs {
        for c in 0..h_attrs {
            if r == c {
                continue;
            }
            let w: f32 = (0..heads)
                .map(|h| last.mba.at(&[pair_view, h, r, c]))
                .sum::<f32>()
                / heads as f32;
            edges.push((w, r, c));
        }
    }
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for &(w, r, c) in edges.iter().take(6) {
        println!("  {} <- {}  weight {:.3}", labels[r], labels[c], w);
    }
    println!("\n(attention is directional; the matrices are asymmetric, as in Fig. 9)");
}
