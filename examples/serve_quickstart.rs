//! Serving quickstart: train HIRE, freeze it, answer rating queries
//! through the online inference stack (context cache + micro-batched
//! worker pool), close the loop — fine-tune on freshly observed ratings
//! and hot-swap the promoted candidate into serving — then kill the
//! engine and recover it from the write-ahead log, bit-identical.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use hire::prelude::*;
use hire::serve::{recover, Predictor};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Train a small HIRE model (same recipe as the quickstart example).
    let dataset = SyntheticConfig::movielens_like()
        .scaled(80, 60, (15, 30))
        .generate(42);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let config = HireConfig::fast().with_context_size(12, 12);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let graph = dataset.graph();
    println!("training HIRE ({} parameters) ...", model.num_parameters());
    hire::core::train(
        &model,
        &dataset,
        &graph,
        &NeighborhoodSampler,
        &TrainConfig {
            steps: 120,
            batch_size: 4,
            base_lr: 3e-3,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        },
        &mut rng,
    )
    .expect("training");

    // 2. Freeze: export the weights to plain arrays. The frozen forward
    //    never builds an autograd tape but is bit-identical to
    //    `HireModel::predict`. (A snapshot on disk works too — see
    //    `FrozenModel::from_checkpoint_dir`.)
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    println!(
        "frozen: {} parameters, embed dim {}",
        frozen.num_parameters(),
        frozen.embed_dim()
    );

    // 3. The engine samples a deterministic context per (user, item),
    //    memoizes it in an LRU cache, and runs batched no-grad forwards.
    //    Attaching a write-ahead log makes every accepted write durable:
    //    `insert_rating` appends (group-committed fsync) before acking,
    //    and model promotions/demotions are logged too — step 7 rebuilds
    //    the whole engine from this log after a simulated crash.
    let dataset = Arc::new(dataset);
    let base = frozen.clone();
    let scratch = std::env::temp_dir().join(format!("hire-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let wal_dir = scratch.join("wal");
    let ckpt_dir = scratch.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("scratch dir");
    let (wal, _) = Wal::open(&wal_dir, WalOptions::default()).expect("open wal");
    let engine = Arc::new(
        ServeEngine::new(
            frozen,
            dataset.clone(),
            EngineConfig::from_model_config(&config),
        )
        .with_wal(Arc::new(wal)),
    );

    // 4. Serve through the micro-batching worker pool: submissions are
    //    coalesced into batches of up to `max_batch` and answered on
    //    `workers` threads, with bounded-queue backpressure. Each query
    //    carries a deadline budget — a query that cannot be answered in
    //    time comes back as a typed `DeadlineExceeded` or is degraded to
    //    the graph-statistics fallback tier, never silently late.
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            workers: 2,
            max_batch: 8,
            max_queue: 256,
            batch_timeout: Duration::from_millis(2),
        },
    );
    let queries: Vec<RatingQuery> = (0..8)
        .map(|k| RatingQuery {
            user: k,
            item: 3 * k,
        })
        .collect();
    let handles: Vec<_> = queries
        .iter()
        .map(|&q| {
            server
                .submit_with_deadline(q, Some(Duration::from_millis(500)))
                .expect("accepted")
        })
        .collect();
    for (q, h) in queries.iter().zip(handles) {
        // `recv_timeout` bounds the wait without consuming the handle:
        // elapsing the bound yields `DeadlineExceeded` while the query
        // stays in flight, so a caller can poll again (or walk away).
        let p = h
            .recv_timeout(Duration::from_secs(5))
            .expect("answered within bound");
        let tier = match p.served_by {
            ServedBy::Model => "model",
            ServedBy::Quantized => "quantized",
            ServedBy::Hybrid => "hybrid",
            ServedBy::Cache => "cache",
            ServedBy::Fallback => "fallback",
        };
        println!(
            "  u{:<3} i{:<3} -> {:.2}  ({:.2} ms, {tier} tier, model v{})",
            q.user,
            q.item,
            p.rating,
            p.latency.as_secs_f64() * 1e3,
            p.version
        );
    }

    // 5. A new observed rating invalidates every cached context its edge
    //    touches; the next query resamples against the updated graph.
    let removed = engine
        .insert_rating(hire::graph::Rating::new(0, 0, 5.0))
        .expect("in range");
    let after = engine
        .predict_batch(&[RatingQuery { user: 0, item: 0 }])
        .expect("served")[0];
    let stats = engine.cache_stats();
    println!(
        "\ninserted rating (u0, i0, 5.0): {removed} contexts invalidated, re-served -> {after:.2}"
    );
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );

    // 6. Close the loop: accumulate more observed ratings, fine-tune a
    //    copy of the serving model on them in a crash-isolated round,
    //    shadow-eval it against the incumbent on a held-out slice, and —
    //    if no gate regressed — hot-swap it in under a new version.
    //    In-flight batches finish on the version they started with.
    let fresh: Vec<_> = (0..24)
        .map(|k| hire::graph::Rating::new((7 * k) % 80, (11 * k) % 60, ((k % 5) + 1) as f32))
        .collect();
    for r in &fresh {
        engine.insert_rating(*r).expect("in range");
    }
    let online_config = OnlineConfig {
        min_new_ratings: 8,
        fine_tune_steps: 10,
        batch_size: 2,
        base_lr: 1e-4,
        holdout_every: 4,
        // The example demonstrates the machinery, so the gate is
        // lenient; production keeps the default 5 % tolerance.
        regression_tolerance: 1.0,
        // With a WAL attached, promotions checkpoint the candidate's
        // weights *before* logging the swap — recovery reloads them from
        // here.
        checkpoint_dir: Some(ckpt_dir),
        ..OnlineConfig::default()
    };
    let online = OnlineLoop::new(engine.clone(), online_config.clone());
    println!("\nfine-tuning on {} fresh ratings ...", fresh.len());
    match online.run_round() {
        RoundOutcome::Promoted { version, eval } => println!(
            "promoted: v{} -> v{version} (holdout {} samples, MAE {:.3} -> {:.3})",
            eval.incumbent_version, eval.holdout_size, eval.incumbent_mae, eval.candidate_mae
        ),
        RoundOutcome::Rejected { eval } => {
            println!("rejected: {}", eval.failed_gates.join("; "))
        }
        other => println!("round outcome: {other:?}"),
    }
    let tagged = engine
        .predict_batch_tagged(&[RatingQuery { user: 0, item: 0 }], None)
        .expect("served");
    println!(
        "re-served (u0, i0) -> {:.2} by model v{}",
        tagged[0].rating, tagged[0].version
    );
    server.shutdown();

    // 7. Kill the engine and recover it from the log alone. Everything
    //    durable comes back: every acked rating, the promoted model (its
    //    weights reloaded from the promotion checkpoint), and the online
    //    loop's routing state — and the recovered engine answers
    //    bit-identically to the one we just killed.
    let before: Vec<f32> = engine.predict_batch(&queries).expect("served");
    let version_before = engine.version();
    let inserted_before = engine.inserted_since(0).0.len();
    drop(online);
    drop(engine); // the "crash": nothing survives but the log + checkpoints
    let recovered = recover(
        base,
        dataset.clone(),
        Arc::new(dataset.graph()),
        EngineConfig::from_model_config(&config),
        online_config,
        &wal_dir,
        WalOptions::default(),
    )
    .expect("recover from wal");
    let after: Vec<f32> = recovered.engine.predict_batch(&queries).expect("served");
    let bitwise = before
        .iter()
        .zip(&after)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "\nrecovered from WAL: {} ratings replayed ({} records), model v{} (was v{})",
        recovered.ratings,
        recovered.records_replayed,
        recovered.engine.version(),
        version_before
    );
    println!(
        "recovered answers bit-identical: {bitwise} ({} of {} ratings, holdout {})",
        recovered.ratings,
        inserted_before,
        recovered.online.holdout_len()
    );
    assert!(bitwise, "recovered engine must answer identically");
    assert_eq!(recovered.engine.version(), version_before);
    let _ = std::fs::remove_dir_all(&scratch);
}
