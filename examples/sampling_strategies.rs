//! Explore the three context-construction strategies of § IV-B / § VI-E:
//! neighborhood-based BFS (HIRE's default), uniform random, and
//! feature-similarity sampling — and how the choice changes what a
//! prediction context contains.
//!
//! ```sh
//! cargo run --release --example sampling_strategies
//! ```

use hire::prelude::*;
use rand::SeedableRng;

fn main() {
    let dataset = SyntheticConfig::movielens_like()
        .scaled(120, 90, (15, 30))
        .generate(3);
    let graph = dataset.graph();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // Seed: predict user 0's rating on item 5.
    let (seed_user, seed_item) = (0usize, 5usize);
    println!(
        "seed pair: u{seed_user} (degree {}) x i{seed_item} (degree {})\n",
        graph.user_degree(seed_user),
        graph.item_degree(seed_item)
    );

    let feature_sampler = FeatureSimilaritySampler::new(
        (0..dataset.num_users)
            .map(|u| dataset.user_feature(u))
            .collect(),
        (0..dataset.num_items)
            .map(|i| dataset.item_feature(i))
            .collect(),
    );
    let samplers: Vec<&dyn ContextSampler> =
        vec![&NeighborhoodSampler, &RandomSampler, &feature_sampler];

    for sampler in samplers {
        let sel = sampler.sample(&graph, &[seed_user], &[seed_item], 8, 8, &mut rng);

        // How connected is the sampled context to the seed?
        let connected_users = sel
            .users
            .iter()
            .filter(|&&u| graph.rating(u, seed_item).is_some())
            .count();
        let rated_cells: usize = sel
            .users
            .iter()
            .map(|&u| {
                sel.items
                    .iter()
                    .filter(|&&i| graph.rating(u, i).is_some())
                    .count()
            })
            .sum();
        // How attribute-similar are the sampled users to the seed user?
        let sim: f32 = sel.users[1..]
            .iter()
            .map(|&u| {
                dataset.user_attrs[seed_user]
                    .iter()
                    .zip(&dataset.user_attrs[u])
                    .filter(|(a, b)| a == b)
                    .count() as f32
            })
            .sum::<f32>()
            / (sel.users.len() - 1) as f32;

        println!("## {} sampling", sampler.name());
        println!("  users: {:?}", sel.users);
        println!("  items: {:?}", sel.items);
        println!("  users who rated the seed item: {connected_users}/8");
        println!("  observed cells in the 8x8 block: {rated_cells}/64");
        println!("  mean shared attributes with the seed user: {sim:.2}/4\n");
    }

    println!("neighborhood sampling maximizes observed cells (informative context);");
    println!("feature-similarity maximizes attribute overlap; random does neither.");
}
