#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation section.
# Usage: scripts/run_all_experiments.sh [tier] (smoke|fast|full; default fast)
set -euo pipefail
tier="${1:-fast}"
cd "$(dirname "$0")/.."
cargo build -p hire-bench --release
mkdir -p results
for b in table2_profiles table3_movielens table4_bookcrossing table5_douban \
         fig6_efficiency fig7_sensitivity table6_ablation fig8_sampling fig9_case_study; do
  echo "=== $b ($tier) ==="
  ./target/release/$b --tier "$tier" --out "results/$b.json" | tee "results/$b.txt"
done
