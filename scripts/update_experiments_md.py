#!/usr/bin/env python3
"""Appends the latest results/*.txt runs to EXPERIMENTS.md (measured section)."""
import pathlib, datetime

root = pathlib.Path(__file__).resolve().parent.parent
results = root / "results"
md = root / "EXPERIMENTS.md"

order = [
    ("table2_profiles", "Table II — dataset profiles"),
    ("table3_movielens", "Table III — MovieLens-1M stand-in"),
    ("table4_bookcrossing", "Table IV — Bookcrossing stand-in"),
    ("table5_douban", "Table V — Douban stand-in"),
    ("fig6_efficiency", "Fig. 6 — test time"),
    ("fig7_sensitivity", "Fig. 7 — sensitivity"),
    ("table6_ablation", "Table VI — ablation"),
    ("fig8_sampling", "Fig. 8 — sampling strategies"),
    ("fig9_case_study", "Fig. 9 — case study"),
]

text = md.read_text()
marker = "## Measured results (appended by scripts/update_experiments_md.py)"
text = text[: text.index(marker)] if marker in text else text
out = [text.rstrip(), "", "## Measured results (appended by scripts/update_experiments_md.py)", ""]
out.append(f"Generated {datetime.date.today()} by `scripts/run_all_experiments.sh` "
           "(tiers noted per block; single CPU core).")
for name, title in order:
    f = results / f"{name}.txt"
    if not f.exists():
        out.append(f"\n### {title}\n\n*(not yet generated — run `cargo run -p hire-bench --release --bin {name}`)*")
        continue
    out.append(f"\n### {title}\n\n```text")
    out.append(f.read_text().rstrip())
    out.append("```")
md.write_text("\n".join(out) + "\n")
print("EXPERIMENTS.md updated")
