//! Shared typed errors for the HIRE workspace.
//!
//! Every externally-reachable failure path (dataset/context construction,
//! harness argument parsing, result serialization, training divergence)
//! surfaces as a [`HireError`] instead of a panic, so binaries can degrade
//! gracefully and callers can match on failure classes.

use std::fmt;

/// Convenience alias used across the workspace.
pub type HireResult<T> = Result<T, HireError>;

/// The workspace-wide error type.
#[derive(Debug)]
pub enum HireError {
    /// A command-line flag was unknown, malformed, or missing its value.
    InvalidArgument {
        /// The offending flag or token (e.g. `--tier`).
        flag: String,
        /// Human-readable explanation.
        message: String,
    },
    /// A dataset, split, or prediction context violated a structural
    /// invariant (empty query set, out-of-range ratio, shape mismatch, ...).
    InvalidData {
        /// Which structure was being built or validated.
        context: String,
        /// Human-readable explanation.
        message: String,
    },
    /// Training could not proceed or recover (e.g. divergence retries
    /// exhausted, empty training graph).
    Training {
        /// The step at which training gave up, if meaningful.
        step: Option<usize>,
        /// Human-readable explanation.
        message: String,
    },
    /// An I/O failure, annotated with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A value could not be serialized for a report.
    Serialization(String),
    /// A durable checkpoint file failed validation (bad magic, unsupported
    /// format version, truncation, or a CRC mismatch). The loader treats
    /// this as "skip this file and fall back to an older snapshot".
    CorruptCheckpoint {
        /// The snapshot file that failed validation.
        path: String,
        /// What the validator found.
        message: String,
    },
}

impl HireError {
    /// Shorthand for an [`HireError::InvalidArgument`].
    pub fn invalid_argument(flag: impl Into<String>, message: impl Into<String>) -> Self {
        HireError::InvalidArgument {
            flag: flag.into(),
            message: message.into(),
        }
    }

    /// Shorthand for an [`HireError::InvalidData`].
    pub fn invalid_data(context: impl Into<String>, message: impl Into<String>) -> Self {
        HireError::InvalidData {
            context: context.into(),
            message: message.into(),
        }
    }

    /// Shorthand for an [`HireError::Training`].
    pub fn training(step: Option<usize>, message: impl Into<String>) -> Self {
        HireError::Training {
            step,
            message: message.into(),
        }
    }

    /// Shorthand for an [`HireError::Io`].
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        HireError::Io {
            path: path.into(),
            source,
        }
    }

    /// Shorthand for an [`HireError::CorruptCheckpoint`].
    pub fn corrupt_checkpoint(path: impl Into<String>, message: impl Into<String>) -> Self {
        HireError::CorruptCheckpoint {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for HireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HireError::InvalidArgument { flag, message } => {
                write!(f, "invalid argument `{flag}`: {message}")
            }
            HireError::InvalidData { context, message } => {
                write!(f, "invalid data ({context}): {message}")
            }
            HireError::Training {
                step: Some(step),
                message,
            } => {
                write!(f, "training failed at step {step}: {message}")
            }
            HireError::Training {
                step: None,
                message,
            } => {
                write!(f, "training failed: {message}")
            }
            HireError::Io { path, source } => write!(f, "io error on `{path}`: {source}"),
            HireError::Serialization(message) => write!(f, "serialization error: {message}"),
            HireError::CorruptCheckpoint { path, message } => {
                write!(f, "corrupt checkpoint `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for HireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HireError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HireError::invalid_argument("--tier", "expected smoke|fast|full, got `warp`");
        assert_eq!(
            e.to_string(),
            "invalid argument `--tier`: expected smoke|fast|full, got `warp`"
        );
        let e = HireError::invalid_data("PredictionContext", "no target cells");
        assert!(e.to_string().contains("PredictionContext"));
        let e = HireError::training(Some(12), "divergence retries exhausted");
        assert!(e.to_string().contains("step 12"));
        let e = HireError::training(None, "empty training graph");
        assert!(!e.to_string().contains("step"));
    }

    #[test]
    fn corrupt_checkpoint_names_the_file() {
        let e = HireError::corrupt_checkpoint("/ckpt/ckpt-0000000040.hckpt", "CRC mismatch");
        assert!(e.to_string().contains("ckpt-0000000040"));
        assert!(e.to_string().contains("CRC mismatch"));
    }

    #[test]
    fn io_errors_carry_source() {
        use std::error::Error;
        let e = HireError::io(
            "/tmp/report.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.source().is_some());
        assert!(e.to_string().contains("/tmp/report.json"));
    }
}
