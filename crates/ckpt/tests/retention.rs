//! Retention under concurrent writers sharing one directory.
//!
//! The online-learning loop (see `hire-serve::online`) keeps three snapshot
//! lineages in one checkpoint directory: the background trainer's durable
//! snapshots (default `ckpt-*` tag), promoted candidates (`candidate-*`),
//! and rejected candidates (`rejected-*`). These tests pin the contract
//! that makes that safe:
//!
//! 1. lineages never evict each other past their own `keep_last`, even
//!    when saves interleave from concurrent threads;
//! 2. the newest-valid fallback of `load_latest` holds *per lineage* after
//!    interleaved corruption — a corrupt candidate snapshot neither hides a
//!    valid trainer snapshot nor vice versa.

use hire_ckpt::{CheckpointStore, GuardSnapshot, OptimizerSnapshot, TrainSnapshot};
use hire_tensor::NdArray;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

/// Self-cleaning temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hire_ckpt_retention_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn snap(step: u64) -> TrainSnapshot {
    TrainSnapshot {
        completed_steps: step,
        config_fingerprint: 7,
        params: vec![NdArray::from_vec(vec![2], vec![step as f32, -1.0])],
        rollback_step: step,
        rollback_params: vec![NdArray::from_vec(vec![2], vec![step as f32, -1.0])],
        optimizer: OptimizerSnapshot {
            lamb_m: vec![None],
            lamb_v: vec![None],
            lamb_t: 0,
            slow_weights: vec![NdArray::from_vec(vec![2], vec![0.0, 0.0])],
            lookahead_steps: 0,
        },
        guard: GuardSnapshot {
            ema: None,
            healthy_steps: 0,
            suspicious_streak: 0,
            lr_scale: 1.0,
            recoveries: 0,
        },
        rng_words: vec![step, step ^ 0xABCD],
    }
}

#[test]
fn concurrent_lineages_respect_their_own_keep_last() {
    let tmp = TempDir::new("concurrent");
    let lineages: &[(&str, usize, u64)] = &[
        ("ckpt", 3, 0),        // trainer snapshots, keep 3
        ("candidate", 2, 100), // promoted candidates, keep 2
        ("rejected", 1, 200),  // rejected candidates, keep 1
    ];
    let barrier = Arc::new(Barrier::new(lineages.len()));
    let handles: Vec<_> = lineages
        .iter()
        .map(|&(tag, keep, base)| {
            let dir = tmp.0.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let store = CheckpointStore::open_tagged(&dir, tag, keep).expect("open");
                barrier.wait();
                for step in 1..=20u64 {
                    store.save(&snap(base + step)).expect("save");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    for &(tag, keep, base) in lineages {
        let store = CheckpointStore::open_tagged(&tmp.0, tag, keep).unwrap();
        let files = store.list().unwrap();
        assert_eq!(
            files.len(),
            keep,
            "lineage `{tag}` must retain exactly its own keep_last"
        );
        let newest = store.load_latest().unwrap().expect("valid snapshot");
        assert_eq!(
            newest.snapshot.completed_steps,
            base + 20,
            "lineage `{tag}` must load its own newest snapshot"
        );
    }
}

#[test]
fn newest_valid_fallback_is_per_lineage_after_interleaved_corruption() {
    let tmp = TempDir::new("corrupt");
    let trainer = CheckpointStore::open_tagged(&tmp.0, "ckpt", 5).unwrap();
    let candidates = CheckpointStore::open_tagged(&tmp.0, "candidate", 5).unwrap();

    // Interleaved saves: t10, c11, t12, c13.
    trainer.save(&snap(10)).unwrap();
    candidates.save(&snap(11)).unwrap();
    trainer.save(&snap(12)).unwrap();
    let newest_candidate = candidates.save(&snap(13)).unwrap();

    // Corrupt the newest candidate and the newest trainer snapshot.
    let newest_trainer = trainer.list().unwrap().pop().unwrap();
    for path in [&newest_candidate, &newest_trainer] {
        let mut bytes = fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(path, &bytes).unwrap();
    }

    let t = trainer.load_latest().unwrap().expect("older trainer valid");
    assert_eq!(t.snapshot.completed_steps, 10, "trainer fell back to 10");
    assert_eq!(t.rejected.len(), 1, "only own-lineage rejects are reported");

    let c = candidates
        .load_latest()
        .unwrap()
        .expect("older candidate valid");
    assert_eq!(c.snapshot.completed_steps, 11, "candidate fell back to 11");
    assert_eq!(c.rejected.len(), 1);
}

#[test]
fn concurrent_saves_and_loads_share_one_lineage_safely() {
    // One lineage hammered by a writer while readers poll load_latest:
    // every successful load must be a fully valid snapshot (the crash-safe
    // tmp+rename write discipline means readers never observe a torn file).
    let tmp = TempDir::new("rw");
    let dir = tmp.0.clone();
    let writer = std::thread::spawn(move || {
        let store = CheckpointStore::open_tagged(&dir, "ckpt", 2).expect("open");
        for step in 1..=30u64 {
            store.save(&snap(step)).expect("save");
        }
    });
    let dir = tmp.0.clone();
    let reader = std::thread::spawn(move || {
        let store = CheckpointStore::open_tagged(&dir, "ckpt", 2).expect("open");
        let mut seen = 0u64;
        for _ in 0..60 {
            if let Ok(Some(outcome)) = store.load_latest() {
                let step = outcome.snapshot.completed_steps;
                assert!(step >= seen, "snapshots must be observed monotonically");
                assert_eq!(
                    outcome.snapshot.params[0].as_slice()[0],
                    step as f32,
                    "loaded snapshot must be internally consistent"
                );
                seen = step;
            }
        }
    });
    writer.join().expect("writer");
    reader.join().expect("reader");
}
