//! Property tests for the snapshot container: round-trip fidelity, and
//! detection of truncation and bit-flip corruption. The decoder must never
//! panic and must never silently return a snapshot different from the one
//! that was written.

use hire_ckpt::{fingerprint, GuardSnapshot, OptimizerSnapshot, TrainSnapshot};
use hire_tensor::NdArray;
use proptest::collection::vec;
use proptest::prelude::*;

/// Builds a snapshot from flat random draws. Parameter tensors get assorted
/// ranks so the shape codec is exercised, and the optimizer slots mix
/// `Some`/`None` moments.
fn build_snapshot(
    step: u64,
    values: Vec<f32>,
    rng_words: Vec<u64>,
    ema: f32,
    with_ema: bool,
) -> TrainSnapshot {
    let mut params = Vec::new();
    let mut rest = values.as_slice();
    let mut toggle = false;
    while !rest.is_empty() {
        let take = rest.len().min(if toggle { 4 } else { 3 });
        let (head, tail) = rest.split_at(take);
        params.push(if toggle && take == 4 {
            NdArray::from_vec(vec![2, 2], head.to_vec())
        } else {
            NdArray::from_vec(vec![take], head.to_vec())
        });
        rest = tail;
        toggle = !toggle;
    }
    let lamb_m: Vec<Option<NdArray>> = params
        .iter()
        .enumerate()
        .map(|(i, p)| (i % 2 == 0).then(|| p.clone()))
        .collect();
    let lamb_v: Vec<Option<NdArray>> = params
        .iter()
        .enumerate()
        .map(|(i, p)| (i % 3 != 0).then(|| p.clone()))
        .collect();
    TrainSnapshot {
        completed_steps: step,
        config_fingerprint: fingerprint([step, values.len() as u64]),
        params: params.clone(),
        rollback_step: step / 2,
        rollback_params: params.clone(),
        optimizer: OptimizerSnapshot {
            lamb_m,
            lamb_v,
            lamb_t: (step % 1000) as u32,
            slow_weights: params,
            lookahead_steps: (step % 7) as u32,
        },
        guard: GuardSnapshot {
            ema: with_ema.then_some(ema),
            healthy_steps: step.wrapping_mul(3),
            suspicious_streak: step % 5,
            lr_scale: 1.0 / (1.0 + step as f32 / 100.0),
            recoveries: (step % 4) as u32,
        },
        rng_words,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_round_trips(
        step in 0u64..1_000_000,
        values in vec(-1.0e6f32..1.0e6, 1..24),
        rng_words in vec(0u64..u64::MAX, 4..8),
        ema in 0.0f32..100.0,
        with_ema in 0u32..2,
    ) {
        let snap = build_snapshot(step, values, rng_words, ema, with_ema == 1);
        let decoded = TrainSnapshot::decode(&snap.encode(), "prop").expect("valid bytes decode");
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn any_truncation_is_detected(
        step in 0u64..100_000,
        values in vec(-10.0f32..10.0, 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = build_snapshot(step, values, vec![1, 2, 3, 4], 0.5, true);
        let bytes = snap.encode();
        // Any strict prefix must be rejected, not decoded or panicked on.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(TrainSnapshot::decode(&bytes[..cut], "prop").is_err());
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        step in 0u64..100_000,
        values in vec(-10.0f32..10.0, 1..12),
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let snap = build_snapshot(step, values, vec![9, 8, 7, 6], 2.5, false);
        let mut bytes = snap.encode();
        let pos = (((bytes.len() as f64) * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        // A flipped bit anywhere — magic, version, length, payload, or CRC —
        // must surface as a decode error, never as silently wrong state.
        prop_assert!(TrainSnapshot::decode(&bytes, "prop").is_err());
    }

    #[test]
    fn trailing_garbage_is_detected(
        step in 0u64..100_000,
        extra in vec(0u32..256, 1..16),
    ) {
        let snap = build_snapshot(step, vec![1.0, 2.0, 3.0], vec![5, 6, 7, 8], 1.0, true);
        let mut bytes = snap.encode();
        bytes.extend(extra.iter().map(|&b| b as u8));
        prop_assert!(TrainSnapshot::decode(&bytes, "prop").is_err());
    }
}
