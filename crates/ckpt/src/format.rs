//! The on-disk snapshot container and its primitive codec.
//!
//! A checkpoint file is:
//!
//! ```text
//! magic    8 bytes   b"HIRECKPT"
//! version  4 bytes   u32 LE (currently 1)
//! length   8 bytes   u64 LE, payload byte count
//! payload  N bytes   snapshot fields (see `snapshot`)
//! crc32    4 bytes   u32 LE, IEEE CRC-32 of the payload
//! ```
//!
//! Truncation is caught by the length field (and by the missing trailer),
//! bit flips anywhere in the payload by the CRC, and header damage by the
//! magic/version/length validation. [`decode_container`] never panics on
//! hostile bytes — every malformed input is a typed
//! [`HireError::CorruptCheckpoint`].

use hire_error::{HireError, HireResult};

/// File magic identifying a HIRE checkpoint.
pub const MAGIC: [u8; 8] = *b"HIRECKPT";

/// Current snapshot format version. Bump on any payload layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes before the payload: magic + version + length.
pub const HEADER_LEN: usize = 8 + 4 + 8;

/// Bytes after the payload: the CRC-32 trailer.
pub const TRAILER_LEN: usize = 4;

/// IEEE CRC-32 (the polynomial used by zip/PNG), bitwise-reflected,
/// computed with a lazily built 256-entry table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Wraps a payload in the versioned, checksummed container.
pub fn encode_container(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validates the container and returns the payload slice. `path` only
/// labels the error.
pub fn decode_container<'a>(bytes: &'a [u8], path: &str) -> HireResult<&'a [u8]> {
    let corrupt = |message: String| HireError::corrupt_checkpoint(path, message);
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(corrupt(format!(
            "file too short ({} bytes) to hold a snapshot header",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("bad magic — not a HIRE checkpoint".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (supported: {FORMAT_VERSION})"
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN as u64))
        .ok_or_else(|| corrupt(format!("absurd payload length {payload_len}")))?;
    if bytes.len() as u64 != expected_total {
        return Err(corrupt(format!(
            "length mismatch: header promises {payload_len} payload bytes, file holds {}",
            bytes.len()
        )));
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
    let stored_crc = u32::from_le_bytes(
        bytes[HEADER_LEN + payload_len as usize..]
            .try_into()
            .expect("4 bytes"),
    );
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(corrupt(format!(
            "CRC mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
        )));
    }
    Ok(payload)
}

/// Append-only encoder for snapshot payload fields.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, returning the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its raw bits (LE) — round-trips NaN payloads.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Cursor-based decoder mirroring [`PayloadWriter`]. Every read is
/// bounds-checked; running off the end is a typed corruption error, never a
/// panic.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload slice; `path` labels errors.
    pub fn new(buf: &'a [u8], path: &'a str) -> Self {
        PayloadReader { buf, pos: 0, path }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn short(&self, what: &str) -> HireError {
        HireError::corrupt_checkpoint(
            self.path,
            format!(
                "payload truncated reading {what} at byte {} of {}",
                self.pos,
                self.buf.len()
            ),
        )
    }

    fn take(&mut self, n: usize, what: &str) -> HireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.short(what))?;
        if end > self.buf.len() {
            return Err(self.short(what));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self, what: &str) -> HireResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn take_u32(&mut self, what: &str) -> HireResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64` (LE).
    pub fn take_u64(&mut self, what: &str) -> HireResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` and checks it fits a `usize` small enough to allocate.
    pub fn take_len(&mut self, what: &str) -> HireResult<usize> {
        let n = self.take_u64(what)?;
        // A length can never exceed the bytes left in the payload; this
        // keeps a bit-flipped length from driving a huge allocation.
        if n > self.buf.len() as u64 {
            return Err(HireError::corrupt_checkpoint(
                self.path,
                format!(
                    "implausible {what} length {n} (payload is {} bytes)",
                    self.buf.len()
                ),
            ));
        }
        Ok(n as usize)
    }

    /// Reads an `f32` from its raw bits.
    pub fn take_f32(&mut self, what: &str) -> HireResult<f32> {
        Ok(f32::from_bits(self.take_u32(what)?))
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn take_f32_vec(&mut self, what: &str) -> HireResult<Vec<f32>> {
        let n = self.take_len(what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f32(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn take_u64_vec(&mut self, what: &str) -> HireResult<Vec<u64>> {
        let n = self.take_len(what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_u64(what)?);
        }
        Ok(out)
    }

    /// The error for unconsumed trailing bytes — a layout mismatch.
    pub fn expect_exhausted(&self) -> HireResult<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(HireError::corrupt_checkpoint(
                self.path,
                format!(
                    "{} unread bytes after the last field — payload layout mismatch",
                    self.buf.len() - self.pos
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn container_round_trip() {
        let payload = b"snapshot payload bytes";
        let file = encode_container(payload);
        assert_eq!(decode_container(&file, "t").unwrap(), payload);
    }

    #[test]
    fn container_rejects_every_single_byte_corruption() {
        let file = encode_container(b"some payload");
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_container(&bad, "t").is_err(),
                "byte {i} corruption went undetected"
            );
        }
    }

    #[test]
    fn container_rejects_truncation_at_every_length() {
        let file = encode_container(b"some payload");
        for n in 0..file.len() {
            assert!(
                decode_container(&file[..n], "t").is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn container_rejects_wrong_version() {
        let mut file = encode_container(b"p");
        file[8] = 99;
        let err = decode_container(&file, "t").unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn payload_codec_round_trips() {
        let mut w = PayloadWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f32(-0.5);
        w.put_f32(f32::NAN);
        w.put_f32_slice(&[1.0, 2.0, 3.0]);
        w.put_u64_slice(&[4, 5]);
        let bytes = w.finish();
        let mut r = PayloadReader::new(&bytes, "t");
        assert_eq!(r.take_u8("a").unwrap(), 7);
        assert_eq!(r.take_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.take_f32("d").unwrap(), -0.5);
        assert!(r.take_f32("e").unwrap().is_nan());
        assert_eq!(r.take_f32_vec("f").unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.take_u64_vec("g").unwrap(), vec![4, 5]);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn reader_errors_on_overrun_instead_of_panicking() {
        let mut r = PayloadReader::new(&[1, 2], "t");
        assert!(r.take_u64("x").is_err());
        let mut r = PayloadReader::new(&[], "t");
        assert!(r.take_u8("x").is_err());
        // A length prefix larger than the payload is rejected before allocation.
        let mut w = PayloadWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.finish();
        let mut r = PayloadReader::new(&bytes, "t");
        let err = r.take_f32_vec("vals").unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }
}
