//! # hire-ckpt
//!
//! Durable checkpoint/restore for long training and benchmark jobs: a
//! versioned binary snapshot format (magic + format version + payload +
//! CRC-32), crash-safe writes (temp file → fsync → atomic rename → directory
//! fsync), a keep-last-N retention policy, and a loader that skips
//! truncated or bit-flipped files and falls back to the newest *valid*
//! snapshot.
//!
//! The snapshot captures everything `hire-core`'s guarded trainer needs for
//! bit-exact resume after a `kill -9`: model parameters, the in-memory
//! rollback checkpoint, LAMB moments, Lookahead slow weights, the
//! divergence guard's EMA/retry state, the learning-rate scale, and the RNG
//! stream state. See `DESIGN.md` §8 for the format layout and the
//! fsync/rename discipline.
//!
//! Layering: this crate knows nothing about models or optimizers — it moves
//! plain [`NdArray`](hire_tensor::NdArray) state in and out of files.
//! `hire-core::trainer` converts live training state to a
//! [`TrainSnapshot`] and back; `hire-bench` layers scenario-level resume on
//! top for benchmark sweeps.

pub mod format;
pub mod snapshot;
pub mod store;

pub use format::{
    crc32, decode_container, encode_container, PayloadReader, PayloadWriter, FORMAT_VERSION, MAGIC,
};
pub use snapshot::{fingerprint, GuardSnapshot, OptimizerSnapshot, TrainSnapshot};
pub use store::{sync_dir, CheckpointStore, LoadOutcome, DEFAULT_TAG, SNAPSHOT_EXT};
