//! The training snapshot: everything a killed run needs to resume
//! bit-exactly.
//!
//! A [`TrainSnapshot`] captures, at a completed-step boundary:
//! - the live model parameters and the in-memory rollback checkpoint the
//!   divergence guard would restore on a loss explosion,
//! - the LAMB first/second moments and step counter, and the Lookahead slow
//!   weights and inner-step counter,
//! - the numerical guard's EMA baseline and streak counters, the current
//!   learning-rate scale, and the recovery budget already spent,
//! - the RNG's internal state words (the mini-batch sampling stream), and
//! - a fingerprint of the training configuration, so a snapshot is never
//!   resumed under different hyper-parameters.
//!
//! The scheduler needs no extra state: it is a pure function of the
//! absolute step index, which `completed_steps` preserves.

use crate::format::{decode_container, encode_container, PayloadReader, PayloadWriter};
use hire_error::{HireError, HireResult};
use hire_tensor::NdArray;

/// Optimizer state mirrored as plain data (decoupled from the optimizer
/// types; `hire-core` converts both ways).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerSnapshot {
    /// LAMB first moments, one slot per parameter (`None` = never updated).
    pub lamb_m: Vec<Option<NdArray>>,
    /// LAMB second moments.
    pub lamb_v: Vec<Option<NdArray>>,
    /// LAMB step counter (drives bias correction).
    pub lamb_t: u32,
    /// Lookahead slow weights, one per parameter.
    pub slow_weights: Vec<NdArray>,
    /// Lookahead inner-step counter (drives the every-`k` sync).
    pub lookahead_steps: u32,
}

/// Divergence-guard and recovery-policy state.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardSnapshot {
    /// EMA loss baseline (`None` before the first healthy step).
    pub ema: Option<f32>,
    /// Healthy steps observed since the last reset.
    pub healthy_steps: u64,
    /// Consecutive suspicious (explosion-candidate) steps.
    pub suspicious_streak: u64,
    /// Learning-rate scale after the recoveries so far.
    pub lr_scale: f32,
    /// Recoveries already performed (counts against `max_recoveries`).
    pub recoveries: u32,
}

/// A complete, resumable picture of a training run at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSnapshot {
    /// Steps fully completed; resume starts at this step index.
    pub completed_steps: u64,
    /// Fingerprint of the training configuration (see
    /// [`fingerprint`]); resume refuses a mismatch.
    pub config_fingerprint: u64,
    /// Live model parameter values, in `model.parameters()` order.
    pub params: Vec<NdArray>,
    /// Step at which the in-memory rollback checkpoint was captured.
    pub rollback_step: u64,
    /// The rollback checkpoint's parameter values.
    pub rollback_params: Vec<NdArray>,
    /// LAMB + Lookahead state.
    pub optimizer: OptimizerSnapshot,
    /// Guard + recovery state.
    pub guard: GuardSnapshot,
    /// RNG internal state words (exact stream resume).
    pub rng_words: Vec<u64>,
}

/// FNV-1a over a word sequence — the configuration fingerprint embedded in
/// every snapshot.
pub fn fingerprint(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn put_array(w: &mut PayloadWriter, a: &NdArray) {
    let dims = a.dims();
    w.put_u32(dims.len() as u32);
    for &d in dims {
        w.put_u64(d as u64);
    }
    w.put_f32_slice(a.as_slice());
}

fn take_array(r: &mut PayloadReader, path: &str, what: &str) -> HireResult<NdArray> {
    let rank = r.take_u32(what)? as usize;
    if rank > 16 {
        return Err(HireError::corrupt_checkpoint(
            path,
            format!("implausible rank {rank} for {what}"),
        ));
    }
    let mut dims = Vec::with_capacity(rank);
    let mut numel: usize = 1;
    for _ in 0..rank {
        let d = r.take_u64(what)? as usize;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| HireError::corrupt_checkpoint(path, format!("{what} shape overflow")))?;
        dims.push(d);
    }
    let data = r.take_f32_vec(what)?;
    if data.len() != numel {
        return Err(HireError::corrupt_checkpoint(
            path,
            format!(
                "{what}: shape {dims:?} needs {numel} values, payload holds {}",
                data.len()
            ),
        ));
    }
    Ok(NdArray::from_vec(dims, data))
}

fn put_arrays(w: &mut PayloadWriter, arrays: &[NdArray]) {
    w.put_u64(arrays.len() as u64);
    for a in arrays {
        put_array(w, a);
    }
}

fn take_arrays(r: &mut PayloadReader, path: &str, what: &str) -> HireResult<Vec<NdArray>> {
    let n = r.take_len(what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(take_array(r, path, what)?);
    }
    Ok(out)
}

fn put_opt_arrays(w: &mut PayloadWriter, arrays: &[Option<NdArray>]) {
    w.put_u64(arrays.len() as u64);
    for a in arrays {
        match a {
            None => w.put_u8(0),
            Some(a) => {
                w.put_u8(1);
                put_array(w, a);
            }
        }
    }
}

fn take_opt_arrays(
    r: &mut PayloadReader,
    path: &str,
    what: &str,
) -> HireResult<Vec<Option<NdArray>>> {
    let n = r.take_len(what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match r.take_u8(what)? {
            0 => out.push(None),
            1 => out.push(Some(take_array(r, path, what)?)),
            other => {
                return Err(HireError::corrupt_checkpoint(
                    path,
                    format!("{what}: invalid option tag {other}"),
                ))
            }
        }
    }
    Ok(out)
}

impl TrainSnapshot {
    /// Serializes to the complete container file bytes (header + payload +
    /// CRC trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.put_u64(self.completed_steps);
        w.put_u64(self.config_fingerprint);
        put_arrays(&mut w, &self.params);
        w.put_u64(self.rollback_step);
        put_arrays(&mut w, &self.rollback_params);
        put_opt_arrays(&mut w, &self.optimizer.lamb_m);
        put_opt_arrays(&mut w, &self.optimizer.lamb_v);
        w.put_u32(self.optimizer.lamb_t);
        put_arrays(&mut w, &self.optimizer.slow_weights);
        w.put_u32(self.optimizer.lookahead_steps);
        match self.guard.ema {
            None => w.put_u8(0),
            Some(ema) => {
                w.put_u8(1);
                w.put_f32(ema);
            }
        }
        w.put_u64(self.guard.healthy_steps);
        w.put_u64(self.guard.suspicious_streak);
        w.put_f32(self.guard.lr_scale);
        w.put_u32(self.guard.recoveries);
        w.put_u64_slice(&self.rng_words);
        encode_container(&w.finish())
    }

    /// Parses and validates container file bytes. `path` labels errors.
    pub fn decode(bytes: &[u8], path: &str) -> HireResult<Self> {
        let payload = decode_container(bytes, path)?;
        let mut r = PayloadReader::new(payload, path);
        let completed_steps = r.take_u64("completed_steps")?;
        let config_fingerprint = r.take_u64("config_fingerprint")?;
        let params = take_arrays(&mut r, path, "params")?;
        let rollback_step = r.take_u64("rollback_step")?;
        let rollback_params = take_arrays(&mut r, path, "rollback_params")?;
        let lamb_m = take_opt_arrays(&mut r, path, "lamb_m")?;
        let lamb_v = take_opt_arrays(&mut r, path, "lamb_v")?;
        let lamb_t = r.take_u32("lamb_t")?;
        let slow_weights = take_arrays(&mut r, path, "slow_weights")?;
        let lookahead_steps = r.take_u32("lookahead_steps")?;
        let ema = match r.take_u8("ema tag")? {
            0 => None,
            1 => Some(r.take_f32("ema")?),
            other => {
                return Err(HireError::corrupt_checkpoint(
                    path,
                    format!("invalid ema tag {other}"),
                ))
            }
        };
        let healthy_steps = r.take_u64("healthy_steps")?;
        let suspicious_streak = r.take_u64("suspicious_streak")?;
        let lr_scale = r.take_f32("lr_scale")?;
        let recoveries = r.take_u32("recoveries")?;
        let rng_words = r.take_u64_vec("rng_words")?;
        r.expect_exhausted()?;
        Ok(TrainSnapshot {
            completed_steps,
            config_fingerprint,
            params,
            rollback_step,
            rollback_params,
            optimizer: OptimizerSnapshot {
                lamb_m,
                lamb_v,
                lamb_t,
                slow_weights,
                lookahead_steps,
            },
            guard: GuardSnapshot {
                ema,
                healthy_steps,
                suspicious_streak,
                lr_scale,
                recoveries,
            },
            rng_words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot(step: u64) -> TrainSnapshot {
        let p = |vals: &[f32]| NdArray::from_vec(vec![vals.len()], vals.to_vec());
        TrainSnapshot {
            completed_steps: step,
            config_fingerprint: fingerprint([1, 2, 3]),
            params: vec![p(&[1.0, -2.0]), p(&[0.5])],
            rollback_step: step.saturating_sub(3),
            rollback_params: vec![p(&[0.9, -1.9]), p(&[0.4])],
            optimizer: OptimizerSnapshot {
                lamb_m: vec![Some(p(&[0.1, 0.2])), None],
                lamb_v: vec![Some(p(&[0.01, 0.02])), None],
                lamb_t: step as u32,
                slow_weights: vec![p(&[1.0, -2.0]), p(&[0.5])],
                lookahead_steps: step as u32,
            },
            guard: GuardSnapshot {
                ema: Some(0.75),
                healthy_steps: step,
                suspicious_streak: 1,
                lr_scale: 0.5,
                recoveries: 2,
            },
            rng_words: vec![0xDEAD, 0xBEEF, 7, u64::MAX],
        }
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let snap = sample_snapshot(40);
        let bytes = snap.encode();
        let back = TrainSnapshot::decode(&bytes, "t").unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_with_empty_and_none_fields_round_trips() {
        let snap = TrainSnapshot {
            completed_steps: 0,
            config_fingerprint: 0,
            params: vec![],
            rollback_step: 0,
            rollback_params: vec![],
            optimizer: OptimizerSnapshot {
                lamb_m: vec![None],
                lamb_v: vec![None],
                lamb_t: 0,
                slow_weights: vec![],
                lookahead_steps: 0,
            },
            guard: GuardSnapshot {
                ema: None,
                healthy_steps: 0,
                suspicious_streak: 0,
                lr_scale: 1.0,
                recoveries: 0,
            },
            rng_words: vec![],
        };
        let back = TrainSnapshot::decode(&snap.encode(), "t").unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn fingerprint_discriminates() {
        assert_ne!(fingerprint([1, 2, 3]), fingerprint([1, 2, 4]));
        assert_ne!(fingerprint([1, 2]), fingerprint([2, 1]));
        assert_eq!(fingerprint([5, 6]), fingerprint([5, 6]));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let snap = sample_snapshot(1);
        let mut w = PayloadWriter::new();
        // Re-encode the valid payload and append junk, re-checksummed so
        // only the layout check can catch it.
        let valid = snap.encode();
        let payload = decode_container(&valid, "t").unwrap();
        for &b in payload {
            w.put_u8(b);
        }
        w.put_u8(0xAA);
        let bad = encode_container(&w.finish());
        let err = TrainSnapshot::decode(&bad, "t").unwrap_err();
        assert!(err.to_string().contains("unread bytes"), "{err}");
    }
}
