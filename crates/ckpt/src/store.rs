//! Directory-backed checkpoint store: crash-safe writes, retention, and a
//! loader that survives corrupt files.
//!
//! Write discipline: the snapshot is written to a `.tmp` sibling, fsynced,
//! atomically renamed to `ckpt-<steps>.hckpt`, and the directory is fsynced
//! so the rename itself is durable. A crash at any point leaves either the
//! previous file set or the new one — never a half-written snapshot under a
//! valid name.
//!
//! Read discipline: [`CheckpointStore::load_latest`] scans the directory
//! newest-first and returns the first snapshot that passes magic, version,
//! length, and CRC validation. Truncated or bit-flipped files are reported
//! in [`LoadOutcome::rejected`] (and logged to stderr) but never abort the
//! load — the run falls back to the newest *valid* state.

use crate::snapshot::TrainSnapshot;
use hire_error::{HireError, HireResult};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File extension for snapshot files.
pub const SNAPSHOT_EXT: &str = "hckpt";

/// Fsyncs a directory so a just-renamed entry inside it is durable.
/// Surfaces failures typed: until the directory entry is flushed, a
/// crash can roll the rename back, so the write is *not* durable yet.
pub fn sync_dir(dir: &Path) -> HireResult<()> {
    let handle = File::open(dir).map_err(|e| HireError::io(dir.display().to_string(), e))?;
    handle
        .sync_all()
        .map_err(|e| HireError::io(dir.display().to_string(), e))
}

/// Default lineage tag: plain training snapshots (`ckpt-*.hckpt`).
pub const DEFAULT_TAG: &str = "ckpt";

/// A snapshot store rooted at one directory.
///
/// Several stores may share one directory as long as they use distinct
/// lineage *tags* (see [`CheckpointStore::open_tagged`]): file naming,
/// listing, retention, and the newest-valid-fallback loader are all scoped
/// to the store's own tag, so a background trainer's snapshots and the
/// candidate/rejected model lineages of an online-learning loop can live
/// side by side without evicting each other.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    tag: String,
    keep_last: usize,
}

/// What a directory scan found.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The newest valid snapshot, if any file validated.
    pub snapshot: TrainSnapshot,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer files that failed validation, with the reason each was
    /// skipped.
    pub rejected: Vec<(PathBuf, HireError)>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store keeping the last `keep_last`
    /// snapshots under the default [`DEFAULT_TAG`] lineage. `keep_last` is
    /// clamped to at least 1.
    pub fn open(dir: impl Into<PathBuf>, keep_last: usize) -> HireResult<Self> {
        Self::open_tagged(dir, DEFAULT_TAG, keep_last)
    }

    /// Opens a store scoped to one lineage `tag` in (possibly shared)
    /// `dir`: files are named `<tag>-<steps>.hckpt` and only the store's
    /// own lineage is listed, pruned, or loaded. The tag must be non-empty
    /// and free of path separators / dots, so tags cannot collide with the
    /// extension or escape the directory.
    pub fn open_tagged(
        dir: impl Into<PathBuf>,
        tag: impl Into<String>,
        keep_last: usize,
    ) -> HireResult<Self> {
        let dir = dir.into();
        let tag = tag.into();
        if tag.is_empty()
            || !tag
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(HireError::invalid_argument(
                "CheckpointStore",
                format!("invalid lineage tag `{tag}` (alphanumeric, `_`, `-` only)"),
            ));
        }
        fs::create_dir_all(&dir).map_err(|e| HireError::io(dir.display().to_string(), e))?;
        Ok(CheckpointStore {
            dir,
            tag,
            keep_last: keep_last.max(1),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's lineage tag.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    fn file_name(&self, steps: u64) -> String {
        format!("{}-{steps:012}.{SNAPSHOT_EXT}", self.tag)
    }

    /// Parses the step count out of a snapshot file name belonging to this
    /// store's lineage. Files of other lineages (different tag) yield
    /// `None` — a tag that happens to be a prefix of another cannot match,
    /// because the remainder after `<tag>-` must be purely numeric.
    fn steps_of(&self, path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let stem = name
            .strip_prefix(&self.tag)?
            .strip_prefix('-')?
            .strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
        if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        stem.parse().ok()
    }

    /// Snapshot files in the store's lineage, sorted oldest → newest by
    /// step count.
    pub fn list(&self) -> HireResult<Vec<PathBuf>> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| HireError::io(self.dir.display().to_string(), e))?;
        let mut files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| HireError::io(self.dir.display().to_string(), e))?;
            let path = entry.path();
            if let Some(steps) = self.steps_of(&path) {
                files.push((steps, path));
            }
        }
        files.sort();
        Ok(files.into_iter().map(|(_, p)| p).collect())
    }

    /// Writes `snapshot` crash-safely and prunes old files down to the
    /// retention limit. Returns the snapshot's final path.
    pub fn save(&self, snapshot: &TrainSnapshot) -> HireResult<PathBuf> {
        self.save_bytes(snapshot.completed_steps, &snapshot.encode())
    }

    /// Writes an arbitrary payload into this lineage under `steps`,
    /// wrapped in the standard checksummed container (see
    /// [`crate::format::encode_container`]) — the raw counterpart of
    /// [`CheckpointStore::save`], used by callers whose state is not a
    /// [`TrainSnapshot`] (e.g. the serving-state snapshots that anchor
    /// WAL truncation barriers). Same write discipline, retention, and
    /// newest-valid-fallback loading as training snapshots.
    pub fn save_raw(&self, steps: u64, payload: &[u8]) -> HireResult<PathBuf> {
        self.save_bytes(steps, &crate::format::encode_container(payload))
    }

    fn save_bytes(&self, steps: u64, bytes: &[u8]) -> HireResult<PathBuf> {
        let final_path = self.dir.join(self.file_name(steps));
        let tmp_path = {
            let mut os = final_path.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        {
            let mut tmp = File::create(&tmp_path)
                .map_err(|e| HireError::io(tmp_path.display().to_string(), e))?;
            tmp.write_all(bytes)
                .map_err(|e| HireError::io(tmp_path.display().to_string(), e))?;
            // Flush file contents to stable storage before the rename makes
            // the snapshot visible under its real name.
            tmp.sync_all()
                .map_err(|e| HireError::io(tmp_path.display().to_string(), e))?;
        }
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| HireError::io(final_path.display().to_string(), e))?;
        // Persist the rename (the directory entry) as well; without this a
        // power loss can roll back to a state where neither name exists.
        // A failure here is a durability failure — the caller must not
        // treat the snapshot as saved — so it surfaces typed, not swallowed.
        sync_dir(&self.dir)?;
        self.prune()?;
        Ok(final_path)
    }

    /// Deletes all but the newest `keep_last` snapshots of this lineage.
    /// Leftover `.tmp` files from interrupted writes are removed too — but
    /// only the lineage's own: another tagged store writing into the same
    /// directory may have an in-flight `.tmp` that must not be swept away.
    fn prune(&self) -> HireResult<()> {
        let files = self.list()?;
        if files.len() > self.keep_last {
            for old in &files[..files.len() - self.keep_last] {
                let _ = fs::remove_file(old);
            }
        }
        let own_prefix = format!("{}-", self.tag);
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let own = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&own_prefix));
                if own && path.extension().is_some_and(|e| e == "tmp") {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        Ok(())
    }

    /// Scans for the newest snapshot that passes validation. Returns
    /// `Ok(None)` for an empty (or snapshot-free) store. Corrupt files are
    /// skipped with a stderr warning and reported in
    /// [`LoadOutcome::rejected`].
    pub fn load_latest(&self) -> HireResult<Option<LoadOutcome>> {
        if !self.dir.exists() {
            return Ok(None);
        }
        let mut files = self.list()?;
        files.reverse(); // newest first
        let mut rejected = Vec::new();
        for path in files {
            let label = path.display().to_string();
            let result = fs::read(&path)
                .map_err(|e| HireError::io(label.clone(), e))
                .and_then(|bytes| TrainSnapshot::decode(&bytes, &label));
            match result {
                Ok(snapshot) => {
                    return Ok(Some(LoadOutcome {
                        snapshot,
                        path,
                        rejected,
                    }));
                }
                Err(err) => {
                    eprintln!("checkpoint: skipping invalid snapshot: {err}");
                    rejected.push((path, err));
                }
            }
        }
        Ok(None)
    }

    /// [`CheckpointStore::load_latest`] for raw payloads written with
    /// [`CheckpointStore::save_raw`]: scans newest-first, returns the
    /// first payload whose container validates (with its step number),
    /// and skips corrupt files the same way the snapshot loader does.
    pub fn load_latest_raw(&self) -> HireResult<Option<(u64, Vec<u8>)>> {
        if !self.dir.exists() {
            return Ok(None);
        }
        let mut files = self.list()?;
        files.reverse(); // newest first
        for path in files {
            let steps = self.steps_of(&path).expect("listed files parse");
            let label = path.display().to_string();
            let result = fs::read(&path)
                .map_err(|e| HireError::io(label.clone(), e))
                .and_then(|bytes| {
                    crate::format::decode_container(&bytes, &label).map(<[u8]>::to_vec)
                });
            match result {
                Ok(payload) => return Ok(Some((steps, payload))),
                Err(err) => eprintln!("checkpoint: skipping invalid raw snapshot: {err}"),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{GuardSnapshot, OptimizerSnapshot};
    use hire_tensor::NdArray;

    /// Self-cleaning temp dir for checkpoint tests.
    pub struct TempDir(pub PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "hire_ckpt_{tag}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn snap(step: u64) -> TrainSnapshot {
        TrainSnapshot {
            completed_steps: step,
            config_fingerprint: 99,
            params: vec![NdArray::from_vec(vec![2], vec![step as f32, 1.0])],
            rollback_step: step,
            rollback_params: vec![NdArray::from_vec(vec![2], vec![step as f32, 1.0])],
            optimizer: OptimizerSnapshot {
                lamb_m: vec![None],
                lamb_v: vec![None],
                lamb_t: 0,
                slow_weights: vec![NdArray::from_vec(vec![2], vec![0.0, 0.0])],
                lookahead_steps: 0,
            },
            guard: GuardSnapshot {
                ema: None,
                healthy_steps: 0,
                suspicious_streak: 0,
                lr_scale: 1.0,
                recoveries: 0,
            },
            rng_words: vec![step, step],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let tmp = TempDir::new("round_trip");
        let store = CheckpointStore::open(&tmp.0, 3).unwrap();
        assert!(store.load_latest().unwrap().is_none(), "empty store");
        store.save(&snap(10)).unwrap();
        store.save(&snap(20)).unwrap();
        let loaded = store.load_latest().unwrap().expect("snapshot present");
        assert_eq!(loaded.snapshot.completed_steps, 20);
        assert!(loaded.rejected.is_empty());
        assert!(loaded.path.to_string_lossy().contains("ckpt-000000000020"));
    }

    #[test]
    fn retention_keeps_only_the_newest_n() {
        let tmp = TempDir::new("retention");
        let store = CheckpointStore::open(&tmp.0, 2).unwrap();
        for step in [1, 2, 3, 4, 5] {
            store.save(&snap(step)).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(store.steps_of(&files[0]), Some(4));
        assert_eq!(store.steps_of(&files[1]), Some(5));
    }

    #[test]
    fn tagged_lineages_in_one_dir_do_not_interfere() {
        let tmp = TempDir::new("tagged");
        let trainer = CheckpointStore::open(&tmp.0, 2).unwrap();
        let candidates = CheckpointStore::open_tagged(&tmp.0, "candidate", 1).unwrap();
        for step in [1, 2, 3] {
            trainer.save(&snap(step)).unwrap();
        }
        candidates.save(&snap(100)).unwrap();
        candidates.save(&snap(200)).unwrap();
        // Each lineage prunes and lists only itself.
        assert_eq!(trainer.list().unwrap().len(), 2);
        assert_eq!(candidates.list().unwrap().len(), 1);
        assert_eq!(
            trainer
                .load_latest()
                .unwrap()
                .unwrap()
                .snapshot
                .completed_steps,
            3
        );
        assert_eq!(
            candidates
                .load_latest()
                .unwrap()
                .unwrap()
                .snapshot
                .completed_steps,
            200
        );
    }

    #[test]
    fn prune_spares_other_lineages_tmp_files() {
        let tmp = TempDir::new("tagged_tmp");
        let trainer = CheckpointStore::open(&tmp.0, 1).unwrap();
        // Another store's in-flight write must survive this store's prune.
        fs::create_dir_all(&tmp.0).unwrap();
        let foreign = tmp.0.join("candidate-000000000007.hckpt.tmp");
        fs::write(&foreign, b"in flight").unwrap();
        trainer.save(&snap(1)).unwrap();
        assert!(foreign.exists(), "foreign lineage .tmp must not be swept");
        // Own leftovers still are.
        let own = tmp.0.join("ckpt-000000000099.hckpt.tmp");
        fs::write(&own, b"dead").unwrap();
        trainer.save(&snap(2)).unwrap();
        assert!(!own.exists(), "own lineage .tmp must be pruned");
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let tmp = TempDir::new("bad_tag");
        assert!(CheckpointStore::open_tagged(&tmp.0, "", 1).is_err());
        assert!(CheckpointStore::open_tagged(&tmp.0, "a.b", 1).is_err());
        assert!(CheckpointStore::open_tagged(&tmp.0, "a/b", 1).is_err());
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_valid() {
        let tmp = TempDir::new("fallback");
        let store = CheckpointStore::open(&tmp.0, 5).unwrap();
        store.save(&snap(10)).unwrap();
        let newest = store.save(&snap(20)).unwrap();
        // Flip a payload byte in the newest snapshot.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let loaded = store.load_latest().unwrap().expect("older snapshot valid");
        assert_eq!(loaded.snapshot.completed_steps, 10, "fell back to step 10");
        assert_eq!(loaded.rejected.len(), 1);
        assert!(loaded.rejected[0].0.ends_with("ckpt-000000000020.hckpt"));
    }

    #[test]
    fn truncated_snapshot_is_skipped() {
        let tmp = TempDir::new("truncated");
        let store = CheckpointStore::open(&tmp.0, 5).unwrap();
        store.save(&snap(5)).unwrap();
        let newest = store.save(&snap(9)).unwrap();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.snapshot.completed_steps, 5);
    }

    #[test]
    fn all_snapshots_corrupt_means_none() {
        let tmp = TempDir::new("all_corrupt");
        let store = CheckpointStore::open(&tmp.0, 5).unwrap();
        let p = store.save(&snap(3)).unwrap();
        fs::write(&p, b"not a checkpoint at all").unwrap();
        assert!(store.load_latest().unwrap().is_none());
    }

    #[test]
    fn tmp_leftovers_are_cleaned_and_ignored() {
        let tmp = TempDir::new("tmp_leftover");
        let store = CheckpointStore::open(&tmp.0, 5).unwrap();
        // Simulate a crash mid-write: a dangling .tmp from a dead process.
        fs::write(tmp.0.join("ckpt-000000000099.hckpt.tmp"), b"half-written").unwrap();
        store.save(&snap(1)).unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.snapshot.completed_steps, 1);
        let leftover: Vec<_> = fs::read_dir(&tmp.0)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftover.is_empty(), "tmp files must be pruned");
    }

    #[test]
    fn raw_payloads_round_trip_and_fall_back_past_corruption() {
        let tmp = TempDir::new("raw");
        let store = CheckpointStore::open_tagged(&tmp.0, "serving", 4).unwrap();
        assert!(store.load_latest_raw().unwrap().is_none());
        store.save_raw(3, b"state at three").unwrap();
        let newest = store.save_raw(9, b"state at nine").unwrap();
        assert_eq!(
            store.load_latest_raw().unwrap(),
            Some((9, b"state at nine".to_vec()))
        );
        // Corrupt the newest raw snapshot: the loader falls back.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(
            store.load_latest_raw().unwrap(),
            Some((3, b"state at three".to_vec()))
        );
        // Raw and TrainSnapshot lineages share listing/retention, so a raw
        // store never confuses the snapshot loader of another tag.
        let trainer = CheckpointStore::open(&tmp.0, 2).unwrap();
        assert!(trainer.load_latest().unwrap().is_none());
    }

    #[test]
    fn open_clamps_keep_last_to_one() {
        let tmp = TempDir::new("clamp");
        let store = CheckpointStore::open(&tmp.0, 0).unwrap();
        store.save(&snap(1)).unwrap();
        store.save(&snap(2)).unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
    }
}
