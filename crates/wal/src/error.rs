//! Typed error surface for the write-ahead log.
//!
//! Every failure mode a caller can hit — I/O, frame corruption, injected
//! chaos faults, a log poisoned by an earlier partial write, or an
//! inconsistency discovered while rebuilding state — gets its own variant so
//! serving code can distinguish "retry later" from "operator intervention".

use std::fmt;
use std::path::PathBuf;

use hire_error::HireError;

/// Result alias for WAL operations.
pub type WalResult<T> = Result<T, WalError>;

/// Errors raised by [`crate::Wal`] and the recovery path.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path (file or directory) the operation targeted.
        path: PathBuf,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A frame failed validation somewhere other than the reclaimable tail.
    ///
    /// Torn tails (a partial final frame in the *last* segment, with nothing
    /// valid after it) are repaired silently; everything else — a bad frame in
    /// a sealed segment, or a bad frame followed by valid data — is real
    /// corruption and surfaces here.
    Corrupt {
        /// Segment file containing the bad frame.
        segment: PathBuf,
        /// Byte offset of the frame that failed validation.
        offset: u64,
        /// Human-readable reason (bad magic, CRC mismatch, ...).
        reason: String,
    },
    /// A chaos-injected fault fired at a WAL site.
    Injected {
        /// The chaos site that fired (e.g. `wal.fsync`).
        site: &'static str,
    },
    /// The log refused the operation because an earlier append failed
    /// part-way; the in-memory tail no longer matches the file and the log
    /// must be reopened (which repairs the torn tail).
    Poisoned,
    /// Recovery found the on-disk state internally inconsistent (e.g. a
    /// sharded manifest whose shards diverge, or a model event referencing a
    /// checkpoint that cannot be loaded).
    Recovery {
        /// What was inconsistent.
        reason: String,
    },
}

impl WalError {
    /// Convenience constructor for [`WalError::Io`].
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        WalError::Io {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for [`WalError::Corrupt`].
    pub fn corrupt(segment: impl Into<PathBuf>, offset: u64, reason: impl Into<String>) -> Self {
        WalError::Corrupt {
            segment: segment.into(),
            offset,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`WalError::Recovery`].
    pub fn recovery(reason: impl Into<String>) -> Self {
        WalError::Recovery {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal i/o error at {}: {source}", path.display())
            }
            WalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal corruption in {} at offset {offset}: {reason}",
                segment.display()
            ),
            WalError::Injected { site } => write!(f, "injected fault at wal site {site}"),
            WalError::Poisoned => write!(
                f,
                "wal poisoned by an earlier partial append; reopen to repair the tail"
            ),
            WalError::Recovery { reason } => write!(f, "wal recovery failed: {reason}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<WalError> for HireError {
    fn from(err: WalError) -> Self {
        match err {
            WalError::Io { path, source } => HireError::io(path.display().to_string(), source),
            other => HireError::invalid_data("wal", other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_specifics() {
        let e = WalError::corrupt("/tmp/wal-000.hwal", 24, "crc mismatch");
        let s = e.to_string();
        assert!(s.contains("offset 24"), "{s}");
        assert!(s.contains("crc mismatch"), "{s}");

        let e = WalError::Injected { site: "wal.fsync" };
        assert!(e.to_string().contains("wal.fsync"));
    }

    #[test]
    fn converts_into_hire_error() {
        let e: HireError = WalError::recovery("shard count mismatch").into();
        assert!(e.to_string().contains("shard count mismatch"));
    }
}
