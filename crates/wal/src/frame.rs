//! Segment file layout: header, frame encoding, and the recovery scanner.
//!
//! A segment file `wal-{base_lsn:012}.hwal` is:
//!
//! ```text
//! [magic "HIREWAL\0" 8B][format version u32 LE][base_lsn u64 LE]   header, 20 bytes
//! [len u32 LE][crc32 u32 LE][payload len bytes]                    frame, repeated
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload (same polynomial/table as
//! `hire-ckpt`). `len` must be ≥ 1: a zero-length frame would make eight zero
//! bytes — a common disk-garbage pattern — a "valid" frame, so it is banned at
//! both encode and scan time.
//!
//! Scan rules (the recovery state machine, see DESIGN.md §15):
//! * A **sealed** segment (any segment except the newest) must validate
//!   end-to-end; any bad frame is [`WalError::Corrupt`].
//! * The **last** segment may have a torn tail from a crash mid-append. On the
//!   first invalid frame, scan forward byte-wise for any later decodable
//!   frame: if one exists the damage is mid-log (`Corrupt`); if none, the tail
//!   is torn and is truncated back to the last valid frame boundary.
//! * A last segment too short to hold its header was torn during creation and
//!   is deleted outright (its `base_lsn` equals the previous segment's end, so
//!   nothing is lost).

use std::path::Path;

use hire_ckpt::crc32;

use crate::error::{WalError, WalResult};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"HIREWAL\0";
/// On-disk format version for segment files.
pub const SEGMENT_VERSION: u32 = 1;
/// Size of the fixed segment header in bytes.
pub const SEGMENT_HEADER_LEN: usize = 8 + 4 + 8;
/// Size of the per-frame prefix (`len` + `crc32`) in bytes.
pub const FRAME_PREFIX_LEN: usize = 8;
/// File extension for segment files.
pub const SEGMENT_EXT: &str = "hwal";

/// Render the file name for a segment whose first record has LSN `base_lsn`.
pub fn segment_file_name(base_lsn: u64) -> String {
    format!("wal-{base_lsn:012}.{SEGMENT_EXT}")
}

/// Parse `base_lsn` back out of a segment file name; `None` if the name is
/// not a segment.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    let digits = stem.strip_prefix("wal-")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Encode the 20-byte segment header.
pub fn encode_header(base_lsn: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&base_lsn.to_le_bytes());
    out
}

/// Encode one frame around `payload`. Panics if the payload is empty (records
/// always carry at least a tag byte; an empty frame would be ambiguous with
/// zeroed garbage).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        !payload.is_empty(),
        "wal frames must carry a non-empty payload"
    );
    let mut out = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of scanning one segment's bytes.
#[derive(Debug)]
pub struct SegmentScan {
    /// The segment's declared base LSN (from the header).
    pub base_lsn: u64,
    /// Decoded frame payloads, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (header + all valid frames). Anything
    /// past this in the last segment is a torn tail to truncate.
    pub valid_len: u64,
    /// Bytes past `valid_len` that were present in the file (0 when clean).
    pub torn_bytes: u64,
}

/// Validate a single frame starting at `offset`; returns the payload slice
/// and the offset just past the frame, or a reason string.
fn try_frame(bytes: &[u8], offset: usize) -> Result<(&[u8], usize), String> {
    let remaining = &bytes[offset..];
    if remaining.len() < FRAME_PREFIX_LEN {
        return Err(format!(
            "frame prefix truncated ({} of {FRAME_PREFIX_LEN} bytes)",
            remaining.len()
        ));
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap()) as usize;
    if len == 0 {
        return Err("zero-length frame".to_string());
    }
    // Records are small (tens of bytes); a huge length is garbage, not a
    // frame. The cap also keeps the forward scan from quadratic blowup.
    const MAX_FRAME_PAYLOAD: usize = 1 << 20;
    if len > MAX_FRAME_PAYLOAD {
        return Err(format!("implausible frame length {len}"));
    }
    let stored_crc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
    if remaining.len() < FRAME_PREFIX_LEN + len {
        return Err(format!(
            "frame payload truncated (need {len}, have {})",
            remaining.len() - FRAME_PREFIX_LEN
        ));
    }
    let payload = &remaining[FRAME_PREFIX_LEN..FRAME_PREFIX_LEN + len];
    let actual = crc32(payload);
    if actual != stored_crc {
        return Err(format!(
            "crc mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
        ));
    }
    Ok((payload, offset + FRAME_PREFIX_LEN + len))
}

/// Scan a segment's full byte contents.
///
/// `is_last` selects the torn-tail-tolerant rules described in the module
/// docs. Returns `Ok(None)` only when `is_last` and the file is too short to
/// hold a header (torn during creation → caller deletes it).
pub fn scan_segment(path: &Path, bytes: &[u8], is_last: bool) -> WalResult<Option<SegmentScan>> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        if is_last {
            return Ok(None);
        }
        return Err(WalError::corrupt(
            path,
            0,
            format!("sealed segment shorter than header ({} bytes)", bytes.len()),
        ));
    }
    if &bytes[0..8] != SEGMENT_MAGIC {
        return Err(WalError::corrupt(path, 0, "bad segment magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(WalError::corrupt(
            path,
            8,
            format!("unsupported segment version {version}"),
        ));
    }
    let base_lsn = u64::from_le_bytes(bytes[12..20].try_into().unwrap());

    let mut payloads = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN;
    while offset < bytes.len() {
        match try_frame(bytes, offset) {
            Ok((payload, next)) => {
                payloads.push(payload.to_vec());
                offset = next;
            }
            Err(reason) => {
                if !is_last {
                    return Err(WalError::corrupt(path, offset as u64, reason));
                }
                // Torn tail vs mid-log corruption: if ANY byte position past
                // here starts a valid frame, real data follows the damage.
                for probe in offset + 1..bytes.len() {
                    if try_frame(bytes, probe).is_ok() {
                        return Err(WalError::corrupt(
                            path,
                            offset as u64,
                            format!("{reason}; valid frame found later at offset {probe} (mid-log corruption, not a torn tail)"),
                        ));
                    }
                }
                return Ok(Some(SegmentScan {
                    base_lsn,
                    payloads,
                    valid_len: offset as u64,
                    torn_bytes: (bytes.len() - offset) as u64,
                }));
            }
        }
    }
    Ok(Some(SegmentScan {
        base_lsn,
        payloads,
        valid_len: offset as u64,
        torn_bytes: 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn seg(base: u64, payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = encode_header(base);
        for p in payloads {
            out.extend_from_slice(&encode_frame(p));
        }
        out
    }

    #[test]
    fn names_round_trip() {
        let name = segment_file_name(42);
        assert_eq!(name, "wal-000000000042.hwal");
        assert_eq!(parse_segment_name(&name), Some(42));
        assert_eq!(parse_segment_name("wal-abc.hwal"), None);
        assert_eq!(parse_segment_name("other-000000000001.hwal"), None);
        assert_eq!(parse_segment_name("wal-000000000001.tmp"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = seg(5, &[b"one", b"two", b"three"]);
        let scan = scan_segment(&PathBuf::from("s"), &bytes, false)
            .unwrap()
            .unwrap();
        assert_eq!(scan.base_lsn, 5);
        assert_eq!(
            scan.payloads,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_on_last_segment_only() {
        let full = seg(0, &[b"alpha", b"beta"]);
        let keep = full.len() - 3; // cut into beta's payload
        let torn = &full[..keep];

        let scan = scan_segment(&PathBuf::from("s"), torn, true)
            .unwrap()
            .unwrap();
        assert_eq!(scan.payloads, vec![b"alpha".to_vec()]);
        let alpha_end = (SEGMENT_HEADER_LEN + FRAME_PREFIX_LEN + 5) as u64;
        assert_eq!(scan.valid_len, alpha_end);
        assert_eq!(scan.torn_bytes, keep as u64 - alpha_end);

        let err = scan_segment(&PathBuf::from("s"), torn, false).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn garbage_tail_without_later_frames_is_torn() {
        let mut bytes = seg(0, &[b"alpha"]);
        bytes.extend_from_slice(&[0u8; 13]); // zeroed garbage: not a valid frame (len 0)
        let scan = scan_segment(&PathBuf::from("s"), &bytes, true)
            .unwrap()
            .unwrap();
        assert_eq!(scan.payloads, vec![b"alpha".to_vec()]);
        assert_eq!(scan.torn_bytes, 13);
    }

    #[test]
    fn damage_followed_by_valid_frame_is_mid_log_corruption() {
        let mut bytes = seg(0, &[b"alpha", b"beta"]);
        // Flip a bit inside alpha's payload; beta remains valid after it.
        let flip = SEGMENT_HEADER_LEN + FRAME_PREFIX_LEN + 1;
        bytes[flip] ^= 0x01;
        let err = scan_segment(&PathBuf::from("s"), &bytes, true).unwrap_err();
        match err {
            WalError::Corrupt { reason, .. } => {
                assert!(reason.contains("mid-log corruption"), "{reason}");
            }
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn header_torn_last_segment_is_deleted_sealed_is_corrupt() {
        let bytes = &encode_header(3)[..10];
        assert!(scan_segment(&PathBuf::from("s"), bytes, true)
            .unwrap()
            .is_none());
        assert!(scan_segment(&PathBuf::from("s"), bytes, false).is_err());
        let mut bad_magic = encode_header(3);
        bad_magic[0] ^= 0xFF;
        assert!(scan_segment(&PathBuf::from("s"), &bad_magic, true).is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty payload")]
    fn empty_frames_are_rejected_at_encode_time() {
        encode_frame(&[]);
    }
}
