//! Sharded-log manifest: one root directory, one `MANIFEST` file naming the
//! shard count, and one `shard-NNN/` WAL directory per shard.
//!
//! The manifest is the recovery root for [`ShardedEngine`]: recovery reads
//! it, opens every shard's log, and rebuilds the shards in lockstep —
//! refusing to serve if the shard count on disk disagrees with the serving
//! configuration.

use std::fs;
use std::path::{Path, PathBuf};

use hire_ckpt::{decode_container, encode_container, sync_dir, PayloadReader, PayloadWriter};

use crate::error::{WalError, WalResult};

/// File name of the manifest inside the sharded-WAL root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The sharded-log layout descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of shard logs under the root.
    pub shards: u32,
}

/// Directory holding shard `idx`'s WAL under `root`.
pub fn shard_dir(root: &Path, idx: usize) -> PathBuf {
    root.join(format!("shard-{idx:03}"))
}

impl ShardManifest {
    /// Write the manifest atomically (temp → fsync → rename → dir fsync),
    /// using the same container framing as checkpoints so a torn or
    /// bit-flipped manifest is detected, not silently honored.
    pub fn write(&self, root: &Path) -> WalResult<()> {
        fs::create_dir_all(root).map_err(|e| WalError::io(root, e))?;
        let mut w = PayloadWriter::new();
        w.put_u32(self.shards);
        let bytes = encode_container(&w.finish());
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        let path = root.join(MANIFEST_FILE);
        {
            use std::io::Write;
            let mut file = fs::File::create(&tmp).map_err(|e| WalError::io(&tmp, e))?;
            file.write_all(&bytes).map_err(|e| WalError::io(&tmp, e))?;
            file.sync_all().map_err(|e| WalError::io(&tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| WalError::io(&path, e))?;
        sync_dir(root).map_err(|e| WalError::recovery(format!("dir fsync failed: {e}")))?;
        Ok(())
    }

    /// Read and validate the manifest. `Ok(None)` when no manifest exists
    /// (a fresh root); corruption is a typed error.
    pub fn read(root: &Path) -> WalResult<Option<Self>> {
        let path = root.join(MANIFEST_FILE);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(WalError::io(&path, e)),
        };
        let path_str = path.display().to_string();
        let payload = decode_container(&bytes, &path_str)
            .map_err(|e| WalError::corrupt(&path, 0, format!("bad manifest container: {e}")))?;
        let mut r = PayloadReader::new(payload, &path_str);
        let shards = r
            .take_u32("shard count")
            .and_then(|s| r.expect_exhausted().map(|_| s))
            .map_err(|e| WalError::corrupt(&path, 0, format!("bad manifest payload: {e}")))?;
        Ok(Some(ShardManifest { shards }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_and_detects_corruption() {
        let root = std::env::temp_dir().join(format!("hire-wal-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);

        assert!(ShardManifest::read(&root).expect("missing root").is_none());
        fs::create_dir_all(&root).expect("mkdir");
        assert!(ShardManifest::read(&root).expect("fresh root").is_none());

        let m = ShardManifest { shards: 4 };
        m.write(&root).expect("write");
        assert_eq!(ShardManifest::read(&root).expect("read"), Some(m));
        assert!(!root.join(format!("{MANIFEST_FILE}.tmp")).exists());

        // Flip one byte: typed corruption, not a silent bad shard count.
        let path = root.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).expect("read bytes");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let err = ShardManifest::read(&root).expect_err("corrupt manifest");
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");

        assert_eq!(shard_dir(&root, 7), root.join("shard-007"));
        let _ = fs::remove_dir_all(&root);
    }
}
