//! The write-ahead log proper: segmented append, group commit, rotation,
//! truncation, and open-time recovery.
//!
//! ## Concurrency model
//!
//! Two locks, never held together in the dangerous order:
//!
//! * `writer` guards the open segment file, the byte cursor, and `next_lsn`.
//!   An append holds it just long enough to (maybe) rotate, write one frame,
//!   and take an LSN.
//! * `sync` + a condvar implement the group-commit batcher. At most one
//!   thread is the **leader** (holds `syncing = true`); it sleeps out the
//!   batching window, clones the file handle (touching `writer` only for the
//!   clone + an LSN snapshot), fsyncs *outside* both locks, publishes the new
//!   `durable_upto`, and wakes everyone. Other committers are **followers**:
//!   they wait on the condvar and re-check; if the leader failed they retry
//!   as leaders, so an injected fsync error surfaces to every waiter that
//!   still needs durability.
//!
//! Durability invariant: `durable_upto` counts records whose bytes are known
//! to have been fsynced — via a commit fsync or a rotation (rotation fsyncs
//! the outgoing segment before sealing it).

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use hire_chaos::{sites, FaultKind, FaultPlan};
use hire_ckpt::sync_dir;

use crate::error::{WalError, WalResult};
use crate::frame::{
    encode_frame, encode_header, parse_segment_name, scan_segment, segment_file_name,
    FRAME_PREFIX_LEN, SEGMENT_HEADER_LEN,
};
use crate::record::WalRecord;

/// How long an `append` caller waits for its record to reach disk before the
/// write is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Ack as soon as the frame is buffered in the segment file. Fastest;
    /// a crash loses any records the OS had not yet written back.
    None,
    /// Ack after an fsync that may batch many concurrent writers: the first
    /// committer becomes leader, sleeps a bounded window so followers can
    /// pile on, then one fsync covers the whole batch.
    Group,
    /// Ack only after an immediate fsync (no batching window). Slowest,
    /// strongest.
    Strict,
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Durability level applied by [`Wal::commit`].
    pub durability: Durability,
    /// Rotate to a new segment once the current one exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Group-commit batching window: how long the fsync leader waits for
    /// followers before syncing. Bounds the worst-case ack latency added by
    /// batching.
    pub group_window: Duration,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            durability: Durability::Group,
            segment_max_bytes: 4 << 20,
            group_window: Duration::from_millis(2),
        }
    }
}

/// What [`Wal::open`] found and repaired on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Surviving records as `(lsn, record)`, in LSN order. The first LSN is
    /// the base of the oldest surviving segment — earlier records were
    /// truncated after a snapshot barrier covered them.
    pub records: Vec<(u64, WalRecord)>,
    /// Torn-tail bytes removed from the newest segment (0 on a clean open).
    pub truncated_bytes: u64,
    /// Whether a newest segment too short to hold its header was deleted.
    pub deleted_torn_segment: bool,
}

/// Mutable writer state behind the `writer` lock.
struct Writer {
    file: File,
    path: PathBuf,
    /// Bytes written to the current segment (header included).
    seg_len: u64,
    /// LSN the next append will receive.
    next_lsn: u64,
    /// Set when an append failed part-way: the in-memory cursor no longer
    /// matches the file, so every further operation is refused until the log
    /// is reopened (which repairs the torn tail).
    poisoned: bool,
}

/// Group-commit state behind the `sync` lock.
struct SyncState {
    /// Count of records known durable (records with `lsn < durable_upto`).
    durable_upto: u64,
    /// Whether a leader currently owns the fsync.
    syncing: bool,
}

/// Observability counters for one log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appended: u64,
    /// fsync calls issued (commit + rotation + open repair).
    pub fsyncs: u64,
    /// Segment rotations completed.
    pub rotations: u64,
    /// Records known durable.
    pub durable_upto: u64,
    /// LSN the next append will receive.
    pub next_lsn: u64,
}

/// A segmented, CRC-framed, crash-recoverable append-only log.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    writer: Mutex<Writer>,
    sync: Mutex<SyncState>,
    sync_cv: Condvar,
    appended: AtomicU64,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
    faults: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

fn io_err(path: &Path, e: std::io::Error) -> WalError {
    WalError::io(path, e)
}

/// Sorted `(base_lsn, path)` list of segment files in `dir`.
fn list_segments(dir: &Path) -> WalResult<Vec<(u64, PathBuf)>> {
    let mut segments = BTreeMap::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(base) = parse_segment_name(name) {
            segments.insert(base, entry.path());
        }
    }
    Ok(segments.into_iter().collect())
}

/// Create a fresh segment file with a fsynced header and a fsynced dir entry.
fn create_segment(dir: &Path, base_lsn: u64) -> WalResult<(File, PathBuf)> {
    let path = dir.join(segment_file_name(base_lsn));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&path)
        .map_err(|e| io_err(&path, e))?;
    file.write_all(&encode_header(base_lsn))
        .map_err(|e| io_err(&path, e))?;
    file.sync_all().map_err(|e| io_err(&path, e))?;
    sync_dir(dir).map_err(|e| WalError::recovery(format!("dir fsync failed: {e}")))?;
    Ok((file, path))
}

impl Wal {
    /// Open (or create) the log in `dir`, repairing any torn tail, and return
    /// the surviving records for replay.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> WalResult<(Self, WalRecovery)> {
        Self::open_with_faults(dir, opts, None)
    }

    /// [`Wal::open`] with a chaos fault plan attached to the WAL sites.
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        opts: WalOptions,
        faults: Option<Arc<FaultPlan>>,
    ) -> WalResult<(Self, WalRecovery)> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let segments = list_segments(&dir)?;

        let mut recovery = WalRecovery {
            records: Vec::new(),
            truncated_bytes: 0,
            deleted_torn_segment: false,
        };

        let (file, path, seg_len, next_lsn) = if segments.is_empty() {
            let (file, path) = create_segment(&dir, 0)?;
            (file, path, SEGMENT_HEADER_LEN as u64, 0)
        } else {
            // Scan every segment; sealed ones must be pristine, the last may
            // have a torn tail.
            let mut expected_base: Option<u64> = None;
            let mut tail: Option<(PathBuf, u64)> = None; // (path, valid_len)
            let last_idx = segments.len() - 1;
            for (idx, (name_base, path)) in segments.iter().enumerate() {
                let is_last = idx == last_idx;
                let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
                let Some(scan) = scan_segment(path, &bytes, is_last)? else {
                    // Header itself was torn: the segment was created at
                    // rotation but the crash hit before any record landed.
                    fs::remove_file(path).map_err(|e| io_err(path, e))?;
                    sync_dir(&dir)
                        .map_err(|e| WalError::recovery(format!("dir fsync failed: {e}")))?;
                    recovery.deleted_torn_segment = true;
                    continue;
                };
                if scan.base_lsn != *name_base {
                    return Err(WalError::corrupt(
                        path,
                        12,
                        format!(
                            "header base lsn {} disagrees with file name base {name_base}",
                            scan.base_lsn
                        ),
                    ));
                }
                if let Some(expected) = expected_base {
                    if scan.base_lsn != expected {
                        return Err(WalError::recovery(format!(
                            "segment {} starts at lsn {} but the previous segment ends at {expected}",
                            path.display(),
                            scan.base_lsn
                        )));
                    }
                }
                let mut offset = SEGMENT_HEADER_LEN as u64;
                for (i, payload) in scan.payloads.iter().enumerate() {
                    let record = WalRecord::decode(payload, path, offset)?;
                    recovery.records.push((scan.base_lsn + i as u64, record));
                    offset += (FRAME_PREFIX_LEN + payload.len()) as u64;
                }
                expected_base = Some(scan.base_lsn + scan.payloads.len() as u64);
                if is_last {
                    recovery.truncated_bytes = scan.torn_bytes;
                    tail = Some((path.clone(), scan.valid_len));
                }
            }
            let next_lsn = expected_base.unwrap_or(0);
            match tail {
                Some((path, valid_len)) => {
                    // Repair the torn tail in place, then reopen for append.
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| io_err(&path, e))?;
                    file.set_len(valid_len).map_err(|e| io_err(&path, e))?;
                    file.sync_all().map_err(|e| io_err(&path, e))?;
                    drop(file);
                    let file = OpenOptions::new()
                        .append(true)
                        .open(&path)
                        .map_err(|e| io_err(&path, e))?;
                    (file, path, valid_len, next_lsn)
                }
                None => {
                    // The only segment(s) past the sealed ones were torn at
                    // creation and deleted; start a fresh one where they left
                    // off. (Also covers a dir whose sole segment was torn.)
                    let (file, path) = create_segment(&dir, next_lsn)?;
                    (file, path, SEGMENT_HEADER_LEN as u64, next_lsn)
                }
            }
        };

        let wal = Wal {
            dir,
            opts,
            writer: Mutex::new(Writer {
                file,
                path,
                seg_len,
                next_lsn,
                poisoned: false,
            }),
            sync: Mutex::new(SyncState {
                // Everything read back at open is on disk and was fsynced
                // either before the crash or by the repair above.
                durable_upto: next_lsn,
                syncing: false,
            }),
            sync_cv: Condvar::new(),
            appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            faults,
        };
        Ok((wal, recovery))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured options.
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// LSN the next append will receive (= count of records ever logged,
    /// including truncated ones).
    pub fn next_lsn(&self) -> u64 {
        self.lock_writer_unchecked().next_lsn
    }

    /// Count of records known durable.
    pub fn durable_upto(&self) -> u64 {
        self.lock_sync().durable_upto
    }

    /// Observability counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appended: self.appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            durable_upto: self.lock_sync().durable_upto,
            next_lsn: self.lock_writer_unchecked().next_lsn,
        }
    }

    fn lock_writer_unchecked(&self) -> MutexGuard<'_, Writer> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_sync(&self) -> MutexGuard<'_, SyncState> {
        self.sync.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Append one record (buffered — not yet durable) and return its LSN.
    /// Call [`Wal::commit`] with the LSN before acknowledging the write.
    pub fn append(&self, record: &WalRecord) -> WalResult<u64> {
        let payload = record.encode();
        let frame = encode_frame(&payload);

        let mut writer = self.lock_writer_unchecked();
        if writer.poisoned {
            return Err(WalError::Poisoned);
        }

        // Chaos hook: one decision per arrival, applied in-place.
        let mut torn: Option<Vec<u8>> = None;
        if let Some(plan) = &self.faults {
            match plan.fire(sites::WAL_APPEND) {
                Err(fault) => return Err(WalError::Injected { site: fault.site }),
                Ok(Some(FaultKind::TornWrite)) => {
                    torn = Some(plan.torn_image(sites::WAL_APPEND, &frame));
                }
                Ok(_) => {}
            }
        }

        if let Some(torn_bytes) = torn {
            // Simulate a crash mid-write(2): a short prefix plus garbage
            // reaches the file, and this process would be dead — poison the
            // log so nothing else appends after the tear.
            let _ = writer.file.write_all(&torn_bytes);
            let _ = writer.file.sync_all();
            writer.poisoned = true;
            return Err(WalError::Injected {
                site: sites::WAL_APPEND,
            });
        }

        // Rotate if the current segment is full. A failed rotation (injected
        // or real) is abandoned: the segment keeps growing, which is safe.
        if writer.seg_len >= self.opts.segment_max_bytes {
            if let Err(err) = self.rotate_locked(&mut writer) {
                if !matches!(err, WalError::Injected { .. }) {
                    return Err(err);
                }
            }
        }

        if let Err(e) = writer.file.write_all(&frame) {
            // The frame may be partially on disk; the in-memory cursor is no
            // longer trustworthy. Poison until reopen repairs the tail.
            writer.poisoned = true;
            return Err(io_err(&writer.path, e));
        }
        writer.seg_len += frame.len() as u64;
        let lsn = writer.next_lsn;
        writer.next_lsn += 1;
        drop(writer);

        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Seal the current segment (fsync it) and start a new one at the
    /// current LSN. Caller holds the writer lock.
    fn rotate_locked(&self, writer: &mut Writer) -> WalResult<()> {
        if let Some(plan) = &self.faults {
            if let Err(fault) = plan.fire(sites::WAL_ROTATE) {
                return Err(WalError::Injected { site: fault.site });
            }
        }
        writer
            .file
            .sync_all()
            .map_err(|e| io_err(&writer.path, e))?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let sealed_upto = writer.next_lsn;
        let (file, path) = create_segment(&self.dir, writer.next_lsn)?;
        writer.file = file;
        writer.path = path;
        writer.seg_len = SEGMENT_HEADER_LEN as u64;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        // The sealed segment's records are now durable.
        let mut sync = self.lock_sync();
        if sealed_upto > sync.durable_upto {
            sync.durable_upto = sealed_upto;
            self.sync_cv.notify_all();
        }
        Ok(())
    }

    /// Wait until the record at `lsn` is durable, per the configured
    /// [`Durability`] level.
    pub fn commit(&self, lsn: u64) -> WalResult<()> {
        match self.opts.durability {
            Durability::None => Ok(()),
            Durability::Group => self.sync_to(lsn, true),
            Durability::Strict => self.sync_to(lsn, false),
        }
    }

    /// Append and immediately make durable (always an fsync, regardless of
    /// the configured level) — for control records like barriers and model
    /// events whose loss would be worse than one fsync.
    pub fn append_durable(&self, record: &WalRecord) -> WalResult<u64> {
        let lsn = self.append(record)?;
        self.sync_to(lsn, false)?;
        Ok(lsn)
    }

    /// Make everything appended so far durable.
    pub fn sync_all(&self) -> WalResult<()> {
        let next = self.lock_writer_unchecked().next_lsn;
        if next == 0 {
            return Ok(());
        }
        self.sync_to(next - 1, false)
    }

    /// Group-commit core: become leader or wait as a follower until
    /// `durable_upto > lsn`.
    fn sync_to(&self, lsn: u64, use_window: bool) -> WalResult<()> {
        loop {
            let mut sync = self.lock_sync();
            if sync.durable_upto > lsn {
                return Ok(());
            }
            if sync.syncing {
                // Follower: wait for the leader's verdict, then re-check.
                // The timeout is a lost-wakeup backstop, not a pacing knob.
                let (guard, _) = self
                    .sync_cv
                    .wait_timeout(sync, Duration::from_millis(50))
                    .unwrap_or_else(|p| p.into_inner());
                drop(guard);
                continue;
            }
            sync.syncing = true;
            drop(sync);

            // Leader path. Sleep out the batching window so concurrent
            // appends can pile into this fsync.
            if use_window && !self.opts.group_window.is_zero() {
                std::thread::sleep(self.opts.group_window);
            }
            let result = self.fsync_once();
            let mut sync = self.lock_sync();
            sync.syncing = false;
            match result {
                Ok(covered) => {
                    if covered > sync.durable_upto {
                        sync.durable_upto = covered;
                    }
                    let done = sync.durable_upto > lsn;
                    drop(sync);
                    self.sync_cv.notify_all();
                    if done {
                        return Ok(());
                    }
                    // Another thread rotated/raced; go around again.
                }
                Err(err) => {
                    drop(sync);
                    // Wake followers so each retries as leader and sees the
                    // failure (or succeeds if it was transient).
                    self.sync_cv.notify_all();
                    return Err(err);
                }
            }
        }
    }

    /// One fsync of the current segment; returns the LSN count it covers.
    fn fsync_once(&self) -> WalResult<u64> {
        // Touch the writer lock only to clone the handle and snapshot the
        // cursor — the fsync itself runs with no lock held.
        let (handle, covered, path) = {
            let writer = self.lock_writer_unchecked();
            if writer.poisoned {
                return Err(WalError::Poisoned);
            }
            let handle = writer
                .file
                .try_clone()
                .map_err(|e| io_err(&writer.path, e))?;
            (handle, writer.next_lsn, writer.path.clone())
        };
        if let Some(plan) = &self.faults {
            if let Err(fault) = plan.fire(sites::WAL_FSYNC) {
                return Err(WalError::Injected { site: fault.site });
            }
        }
        handle.sync_all().map_err(|e| io_err(&path, e))?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(covered)
    }

    /// Drop every sealed segment whose records are all below `covered` (a
    /// snapshot-barrier LSN). The active segment is never removed. Returns
    /// the number of segments deleted.
    pub fn truncate_covered(&self, covered: u64) -> WalResult<usize> {
        // Hold the writer lock so rotation cannot race the directory walk.
        let writer = self.lock_writer_unchecked();
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_base, _) = window[1];
            if next_base <= covered && *path != writer.path {
                fs::remove_file(path).map_err(|e| io_err(path, e))?;
                removed += 1;
            }
        }
        drop(writer);
        if removed > 0 {
            sync_dir(&self.dir)
                .map_err(|e| WalError::recovery(format!("dir fsync failed: {e}")))?;
        }
        Ok(removed)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> WalResult<usize> {
        Ok(list_segments(&self.dir)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(label: &str) -> Self {
            static N: AtomicUsize = AtomicUsize::new(0);
            let n = N.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("hire-wal-{label}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn rating(k: u64) -> WalRecord {
        WalRecord::Rating {
            user: k,
            item: k * 3,
            value: (k % 5) as f32,
        }
    }

    fn tiny_opts() -> WalOptions {
        WalOptions {
            durability: Durability::Strict,
            segment_max_bytes: 128, // force frequent rotation
            group_window: Duration::from_millis(0),
        }
    }

    #[test]
    fn appends_replay_across_reopen() {
        let tmp = TempDir::new("reopen");
        let records: Vec<WalRecord> = (0..40).map(rating).collect();
        {
            let (wal, rec) = Wal::open(tmp.path(), tiny_opts()).expect("open");
            assert!(rec.records.is_empty());
            for r in &records {
                let lsn = wal.append(r).expect("append");
                wal.commit(lsn).expect("commit");
            }
            assert_eq!(wal.next_lsn(), 40);
            assert_eq!(wal.durable_upto(), 40);
            assert!(wal.stats().rotations > 0, "tiny segments must rotate");
        }
        let (wal, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen");
        assert_eq!(rec.truncated_bytes, 0);
        let replayed: Vec<WalRecord> = rec.records.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(replayed, records);
        let lsns: Vec<u64> = rec.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (0..40).collect::<Vec<_>>());
        assert_eq!(wal.next_lsn(), 40);
    }

    #[test]
    fn durability_none_acks_without_fsync() {
        let tmp = TempDir::new("none");
        let opts = WalOptions {
            durability: Durability::None,
            ..tiny_opts()
        };
        let (wal, _) = Wal::open(tmp.path(), opts).expect("open");
        let lsn = wal.append(&rating(1)).expect("append");
        wal.commit(lsn).expect("commit");
        assert_eq!(wal.stats().fsyncs, 0);
        wal.sync_all().expect("sync_all");
        assert_eq!(wal.durable_upto(), 1);
    }

    #[test]
    fn group_commit_batches_concurrent_writers() {
        let tmp = TempDir::new("group");
        let opts = WalOptions {
            durability: Durability::Group,
            segment_max_bytes: 1 << 20,
            group_window: Duration::from_millis(5),
        };
        let (wal, _) = Wal::open(tmp.path(), opts).expect("open");
        let wal = Arc::new(wal);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for k in 0..25u64 {
                    let lsn = wal.append(&rating(t * 100 + k)).expect("append");
                    wal.commit(lsn).expect("commit");
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        let stats = wal.stats();
        assert_eq!(stats.appended, 200);
        assert_eq!(stats.durable_upto, 200);
        assert!(
            stats.fsyncs < 200,
            "group commit must batch: {} fsyncs for 200 strict-acked writes",
            stats.fsyncs
        );
    }

    #[test]
    fn truncate_drops_only_fully_covered_sealed_segments() {
        let tmp = TempDir::new("trunc");
        let (wal, _) = Wal::open(tmp.path(), tiny_opts()).expect("open");
        for k in 0..60 {
            let lsn = wal.append(&rating(k)).expect("append");
            wal.commit(lsn).expect("commit");
        }
        let before = wal.segment_count().expect("count");
        assert!(before > 2, "need several segments, got {before}");

        // Covering nothing removes nothing.
        assert_eq!(wal.truncate_covered(0).expect("truncate"), 0);
        // Cover half the log.
        let removed = wal.truncate_covered(30).expect("truncate");
        assert!(removed > 0);
        let (wal2, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen");
        assert_eq!(wal2.next_lsn(), 60);
        let first_lsn = rec.records.first().expect("records survive").0;
        assert!(
            first_lsn <= 30,
            "the segment straddling lsn 30 must survive"
        );
        // Every record ≥ 30 must still be present and contiguous.
        let lsns: Vec<u64> = rec.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (first_lsn..60).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_repaired_and_log_reusable() {
        let tmp = TempDir::new("torn");
        let (wal, _) = Wal::open(tmp.path(), tiny_opts()).expect("open");
        for k in 0..5 {
            wal.append(&rating(k)).expect("append");
        }
        wal.sync_all().expect("sync");
        // Simulate a crash mid-append: write half a frame by hand.
        let seg = {
            let segs = list_segments(tmp.path()).expect("list");
            segs.last().expect("segment").1.clone()
        };
        drop(wal);
        let mut f = OpenOptions::new()
            .append(true)
            .open(&seg)
            .expect("open seg");
        f.write_all(&[9, 0, 0, 0, 0xAA, 0xBB]).expect("torn bytes");
        f.sync_all().expect("sync");
        drop(f);

        let (wal, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen repairs");
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.truncated_bytes, 6);
        // The repaired log keeps working.
        let lsn = wal.append(&rating(99)).expect("append after repair");
        assert_eq!(lsn, 5);
        wal.commit(lsn).expect("commit");
        drop(wal);
        let (_, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen again");
        assert_eq!(rec.records.len(), 6);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn injected_append_error_means_nothing_landed() {
        let tmp = TempDir::new("inj-append");
        let plan =
            Arc::new(FaultPlan::new(11).with_fault(sites::WAL_APPEND, FaultKind::Error, 1.0));
        let (wal, _) = Wal::open_with_faults(tmp.path(), tiny_opts(), Some(plan)).expect("open");
        let err = wal.append(&rating(1)).expect_err("must inject");
        assert!(matches!(err, WalError::Injected { site } if site == sites::WAL_APPEND));
        assert_eq!(wal.next_lsn(), 0);
        drop(wal);
        let (_, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen");
        assert!(rec.records.is_empty(), "refused write must not leave bytes");
    }

    #[test]
    fn torn_write_poisons_until_reopen() {
        let tmp = TempDir::new("inj-tear");
        let plan =
            Arc::new(FaultPlan::new(7).with_fault(sites::WAL_APPEND, FaultKind::TornWrite, 0.5));
        let (wal, _) = Wal::open_with_faults(tmp.path(), tiny_opts(), Some(plan)).expect("open");
        let mut acked = Vec::new();
        let mut poisoned = false;
        for k in 0..50u64 {
            match wal.append(&rating(k)) {
                Ok(lsn) => {
                    wal.commit(lsn).expect("commit");
                    acked.push(k);
                }
                Err(WalError::Injected { .. }) => {
                    poisoned = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(poisoned, "a 50% tear rate must fire within 50 appends");
        assert!(matches!(
            wal.append(&rating(1000)).expect_err("poisoned"),
            WalError::Poisoned
        ));
        // Already-durable records stay committed (sync_to short-circuits on
        // durable_upto without touching the poisoned writer).
        wal.sync_all().expect("acked prefix stays durable");
        drop(wal);
        // Reopen repairs the torn frame; every acked record survives.
        let (_, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen");
        let users: Vec<u64> = rec
            .records
            .iter()
            .map(|(_, r)| match r {
                WalRecord::Rating { user, .. } => *user,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(users, acked, "acked writes survive, torn write does not");
        assert!(rec.truncated_bytes > 0, "the tear left bytes to repair");
    }

    #[test]
    fn injected_fsync_error_fails_commit_but_retry_succeeds() {
        let tmp = TempDir::new("inj-fsync");
        // Fire once, then heal: rate 1.0 on the first arrival only is not
        // expressible, so use a plan that fails ~always and check the error,
        // then a clean plan for the retry.
        let plan = Arc::new(FaultPlan::new(3).with_fault(sites::WAL_FSYNC, FaultKind::Error, 1.0));
        let opts = WalOptions {
            durability: Durability::Strict,
            ..tiny_opts()
        };
        let (wal, _) = Wal::open_with_faults(tmp.path(), opts.clone(), Some(plan)).expect("open");
        let lsn = wal.append(&rating(4)).expect("append buffers fine");
        let err = wal.commit(lsn).expect_err("fsync must fail");
        assert!(matches!(err, WalError::Injected { site } if site == sites::WAL_FSYNC));
        assert_eq!(wal.durable_upto(), 0, "no durability was promised");
        drop(wal);
        // The buffered frame reached the file (only the fsync was refused) —
        // after reopen it replays, and commits work again.
        let (wal, rec) = Wal::open(tmp.path(), opts).expect("reopen");
        assert_eq!(rec.records.len(), 1);
        let lsn = wal.append(&rating(5)).expect("append");
        wal.commit(lsn).expect("commit heals");
    }

    #[test]
    fn injected_rotation_error_is_abandoned_not_fatal() {
        let tmp = TempDir::new("inj-rotate");
        let plan = Arc::new(FaultPlan::new(5).with_fault(sites::WAL_ROTATE, FaultKind::Error, 1.0));
        let (wal, _) = Wal::open_with_faults(tmp.path(), tiny_opts(), Some(plan)).expect("open");
        for k in 0..40 {
            let lsn = wal
                .append(&rating(k))
                .expect("append despite failed rotations");
            wal.commit(lsn).expect("commit");
        }
        assert_eq!(wal.stats().rotations, 0, "every rotation was injected away");
        assert_eq!(wal.segment_count().expect("count"), 1);
        drop(wal);
        let (_, rec) = Wal::open(tmp.path(), tiny_opts()).expect("reopen");
        assert_eq!(rec.records.len(), 40);
    }

    #[test]
    fn append_durable_fsyncs_even_at_durability_none() {
        let tmp = TempDir::new("durable-append");
        let opts = WalOptions {
            durability: Durability::None,
            ..tiny_opts()
        };
        let (wal, _) = Wal::open(tmp.path(), opts).expect("open");
        let lsn = wal
            .append_durable(&WalRecord::HoldoutMark { index: 3 })
            .expect("append durable");
        assert_eq!(wal.durable_upto(), lsn + 1);
        assert!(wal.stats().fsyncs >= 1);
    }
}
