//! Logical WAL record types and their binary codec.
//!
//! Records are encoded with `hire-ckpt`'s [`PayloadWriter`]/[`PayloadReader`]
//! primitives: one type-tag byte followed by the record's fields. The framing
//! layer (`frame.rs`) wraps each encoded record in a `[len][crc32]` frame; this
//! module only cares about the payload bytes.

use hire_ckpt::{PayloadReader, PayloadWriter};
use hire_error::HireResult;

use crate::error::{WalError, WalResult};

/// Record type tags (first payload byte).
const TAG_RATING: u8 = 1;
const TAG_HOLDOUT_MARK: u8 = 2;
const TAG_MODEL_PROMOTED: u8 = 3;
const TAG_DEMOTED: u8 = 4;
const TAG_SNAPSHOT_BARRIER: u8 = 5;

/// A logical event in the serving timeline.
///
/// The replay contract: applying every record in LSN order against the base
/// graph + base model reproduces the exact live state — same CSR adjacency,
/// same online-loop cursor/holdout, same installed model version.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A serve-time rating accepted by `insert_rating`. Logged *before* the
    /// graph commit so recovery can replay edges in identical order.
    Rating {
        /// User index.
        user: u64,
        /// Item index.
        item: u64,
        /// Rating value.
        value: f32,
    },
    /// The online loop diverted the `index`-th serve-time rating (0-based,
    /// in arrival order) into its never-trained holdout slice.
    HoldoutMark {
        /// Arrival index of the diverted rating.
        index: u64,
    },
    /// A fine-tuned candidate passed shadow eval and was installed.
    ModelPromoted {
        /// Engine version assigned to the new incumbent.
        version: u64,
        /// Checkpoint lineage tag holding the promoted weights.
        tag: String,
        /// Steps key of the checkpoint within that lineage.
        steps: u64,
    },
    /// The incumbent was demoted (rolled back to the previous slot);
    /// `new_version` is the version assigned to the reinstalled model.
    Demoted {
        /// Version of the slot that is serving after the demotion.
        new_version: u64,
    },
    /// Progress marker. With `covered = Some(c)`, a durable serving snapshot
    /// captures every record with LSN < `c` and segments wholly below `c` may
    /// be truncated. With `covered = None` this is a lightweight online-loop
    /// round marker that persists the cursor without a snapshot.
    SnapshotBarrier {
        /// LSN prefix covered by a serving snapshot, if one was written.
        covered: Option<u64>,
        /// Online-loop cursor (count of serve-time ratings consumed).
        cursor: u64,
        /// Online-loop round counter.
        round: u64,
    },
}

impl WalRecord {
    /// Encode this record into payload bytes (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            WalRecord::Rating { user, item, value } => {
                w.put_u8(TAG_RATING);
                w.put_u64(*user);
                w.put_u64(*item);
                w.put_f32(*value);
            }
            WalRecord::HoldoutMark { index } => {
                w.put_u8(TAG_HOLDOUT_MARK);
                w.put_u64(*index);
            }
            WalRecord::ModelPromoted {
                version,
                tag,
                steps,
            } => {
                w.put_u8(TAG_MODEL_PROMOTED);
                w.put_u64(*version);
                w.put_u64(*steps);
                let bytes = tag.as_bytes();
                w.put_u32(bytes.len() as u32);
                for b in bytes {
                    w.put_u8(*b);
                }
            }
            WalRecord::Demoted { new_version } => {
                w.put_u8(TAG_DEMOTED);
                w.put_u64(*new_version);
            }
            WalRecord::SnapshotBarrier {
                covered,
                cursor,
                round,
            } => {
                w.put_u8(TAG_SNAPSHOT_BARRIER);
                w.put_u8(u8::from(covered.is_some()));
                w.put_u64(covered.unwrap_or(0));
                w.put_u64(*cursor);
                w.put_u64(*round);
            }
        }
        w.finish()
    }

    /// Decode a record from payload bytes produced by [`WalRecord::encode`].
    ///
    /// `segment`/`offset` locate the frame for error reporting only.
    pub fn decode(payload: &[u8], segment: &std::path::Path, offset: u64) -> WalResult<Self> {
        let as_corrupt = |err: hire_error::HireError| {
            WalError::corrupt(segment, offset, format!("bad record payload: {err}"))
        };
        let path = segment.display().to_string();
        let mut r = PayloadReader::new(payload, &path);
        let record = Self::decode_inner(&mut r).map_err(as_corrupt)?;
        r.expect_exhausted().map_err(as_corrupt)?;
        Ok(record)
    }

    fn decode_inner(r: &mut PayloadReader<'_>) -> HireResult<Self> {
        let tag = r.take_u8("record tag")?;
        match tag {
            TAG_RATING => Ok(WalRecord::Rating {
                user: r.take_u64("rating user")?,
                item: r.take_u64("rating item")?,
                value: r.take_f32("rating value")?,
            }),
            TAG_HOLDOUT_MARK => Ok(WalRecord::HoldoutMark {
                index: r.take_u64("holdout index")?,
            }),
            TAG_MODEL_PROMOTED => {
                let version = r.take_u64("promoted version")?;
                let steps = r.take_u64("promoted steps")?;
                let len = r.take_u32("promoted tag length")? as usize;
                let mut bytes = Vec::with_capacity(len.min(256));
                for _ in 0..len {
                    bytes.push(r.take_u8("promoted tag byte")?);
                }
                let tag = String::from_utf8(bytes).map_err(|_| {
                    hire_error::HireError::invalid_data("wal record", "promoted tag is not utf-8")
                })?;
                Ok(WalRecord::ModelPromoted {
                    version,
                    tag,
                    steps,
                })
            }
            TAG_DEMOTED => Ok(WalRecord::Demoted {
                new_version: r.take_u64("demoted version")?,
            }),
            TAG_SNAPSHOT_BARRIER => {
                let has = r.take_u8("barrier flag")?;
                let covered_raw = r.take_u64("barrier covered lsn")?;
                let covered = match has {
                    0 => None,
                    1 => Some(covered_raw),
                    other => {
                        return Err(hire_error::HireError::invalid_data(
                            "wal record",
                            format!("bad barrier flag byte {other}"),
                        ))
                    }
                };
                Ok(WalRecord::SnapshotBarrier {
                    covered,
                    cursor: r.take_u64("barrier cursor")?,
                    round: r.take_u64("barrier round")?,
                })
            }
            other => Err(hire_error::HireError::invalid_data(
                "wal record",
                format!("unknown wal record tag {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn roundtrip(record: WalRecord) {
        let bytes = record.encode();
        let back = WalRecord::decode(&bytes, Path::new("t"), 0).expect("decode");
        assert_eq!(record, back);
    }

    #[test]
    fn all_record_types_round_trip() {
        roundtrip(WalRecord::Rating {
            user: 7,
            item: 12_345,
            value: 4.5,
        });
        roundtrip(WalRecord::Rating {
            user: 0,
            item: 0,
            value: -0.0,
        });
        roundtrip(WalRecord::HoldoutMark { index: u64::MAX });
        roundtrip(WalRecord::ModelPromoted {
            version: 3,
            tag: "candidate".to_string(),
            steps: 9,
        });
        roundtrip(WalRecord::ModelPromoted {
            version: 1,
            tag: String::new(),
            steps: 0,
        });
        roundtrip(WalRecord::Demoted { new_version: 4 });
        roundtrip(WalRecord::SnapshotBarrier {
            covered: Some(17),
            cursor: 11,
            round: 2,
        });
        roundtrip(WalRecord::SnapshotBarrier {
            covered: None,
            cursor: 0,
            round: 0,
        });
    }

    #[test]
    fn nan_rating_round_trips_bitwise() {
        let record = WalRecord::Rating {
            user: 1,
            item: 2,
            value: f32::NAN,
        };
        let bytes = record.encode();
        let back = WalRecord::decode(&bytes, Path::new("t"), 0).expect("decode");
        match back {
            WalRecord::Rating { value, .. } => {
                assert_eq!(value.to_bits(), f32::NAN.to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn truncated_or_oversized_payloads_are_corrupt() {
        let bytes = WalRecord::HoldoutMark { index: 9 }.encode();
        let err = WalRecord::decode(&bytes[..bytes.len() - 1], Path::new("t"), 4).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { offset: 4, .. }), "{err}");

        let mut padded = bytes.clone();
        padded.push(0);
        let err = WalRecord::decode(&padded, Path::new("t"), 0).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");

        let err = WalRecord::decode(&[42], Path::new("t"), 0).unwrap_err();
        assert!(err.to_string().contains("unknown wal record tag"), "{err}");
    }
}
