//! # hire-wal
//!
//! A segmented, CRC32-framed, append-only write-ahead log that makes the
//! serving stack's in-memory state — serve-time ratings, the online loop's
//! holdout routing, and the installed model version — survive `kill -9`.
//!
//! Pieces:
//!
//! * [`WalRecord`] — the logical events of the serving timeline (`Rating`,
//!   `HoldoutMark`, `ModelPromoted`, `Demoted`, `SnapshotBarrier`), encoded
//!   with `hire-ckpt`'s payload primitives.
//! * [`Wal`] — the log itself: segment files with fsynced headers, per-frame
//!   CRC32, group commit (a bounded-latency fsync batcher behind
//!   [`Durability::Group`]), size-triggered rotation, keep-after-barrier
//!   truncation, and open-time torn-tail repair with a typed
//!   [`WalError::Corrupt`] on real mid-log damage.
//! * [`ShardManifest`] — the recovery root for sharded serving: one manifest,
//!   one `shard-NNN/` log per shard, rebuilt in lockstep.
//!
//! Chaos integration: the log fires `hire-chaos` sites `wal.append`,
//! `wal.fsync`, and `wal.rotate`, including [`hire_chaos::FaultKind::TornWrite`]
//! — a simulated crash mid-`write(2)` that leaves a short garbage-tailed
//! prefix on disk and poisons the log like a dead process.
//!
//! See DESIGN.md §15 for the frame layout, the group-commit protocol, the
//! recovery state machine, and the truncation rules.

pub mod error;
pub mod frame;
pub mod log;
pub mod manifest;
pub mod record;

pub use error::{WalError, WalResult};
pub use frame::{
    parse_segment_name, segment_file_name, SEGMENT_EXT, SEGMENT_HEADER_LEN, SEGMENT_MAGIC,
    SEGMENT_VERSION,
};
pub use log::{Durability, Wal, WalOptions, WalRecovery, WalStats};
pub use manifest::{shard_dir, ShardManifest, MANIFEST_FILE};
pub use record::WalRecord;
