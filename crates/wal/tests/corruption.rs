//! Property tests for WAL durability: arbitrary truncation, bit flips, and
//! garbage tails against a real on-disk log, mirroring
//! `crates/ckpt/tests/corruption.rs`.
//!
//! The properties under test are the recovery state machine's contract:
//! * Truncating the newest segment at ANY byte loses only a suffix of
//!   records — never corrupts, never reorders, never invents.
//! * A bit flip inside a *sealed* segment is always a typed
//!   [`WalError::Corrupt`], never silent data loss.
//! * Garbage appended to the tail is repaired away; every record written
//!   before the garbage survives.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use hire_wal::{Durability, Wal, WalError, WalOptions, WalRecord};
use proptest::collection::vec;
use proptest::prelude::*;

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("hire-wal-prop-{label}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn opts(segment_max_bytes: u64) -> WalOptions {
    WalOptions {
        durability: Durability::Strict,
        segment_max_bytes,
        group_window: std::time::Duration::ZERO,
    }
}

/// Write `values` as Rating records (one commit at the end) and return the
/// sorted segment paths.
fn write_log(dir: &Path, values: &[f32], segment_max_bytes: u64) -> Vec<PathBuf> {
    let (wal, _) = Wal::open(dir, opts(segment_max_bytes)).expect("open");
    for (k, v) in values.iter().enumerate() {
        wal.append(&WalRecord::Rating {
            user: k as u64,
            item: (k as u64) * 7,
            value: *v,
        })
        .expect("append");
    }
    wal.sync_all().expect("sync");
    drop(wal);
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "hwal"))
        .collect();
    segs.sort();
    segs
}

fn replayed_values(dir: &Path, segment_max_bytes: u64) -> Result<Vec<f32>, WalError> {
    let (_, rec) = Wal::open(dir, opts(segment_max_bytes))?;
    Ok(rec
        .records
        .iter()
        .map(|(_, r)| match r {
            WalRecord::Rating { value, .. } => *value,
            other => panic!("unexpected record {other:?}"),
        })
        .collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever we log, reopen replays bitwise — across rotation boundaries.
    #[test]
    fn round_trip_replays_bitwise(
        values in vec(-1000.0f32..1000.0, 1..80),
        seg_bytes in 96u64..4096,
    ) {
        let tmp = TempDir::new("roundtrip");
        write_log(tmp.path(), &values, seg_bytes);
        let back = replayed_values(tmp.path(), seg_bytes).expect("clean replay");
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Truncating the newest segment at any byte keeps a clean prefix of the
    /// records; nothing is corrupted or invented.
    #[test]
    fn tail_truncation_loses_only_a_suffix(
        values in vec(-100.0f32..100.0, 4..60),
        cut_frac in 0.0f64..1.0,
    ) {
        let tmp = TempDir::new("cut");
        // One big segment so the cut always hits the *last* (tolerant) one.
        let segs = write_log(tmp.path(), &values, u64::MAX);
        prop_assert_eq!(segs.len(), 1);
        let bytes = fs::read(&segs[0]).expect("read");
        let keep = ((bytes.len() as f64) * cut_frac) as usize;
        fs::write(&segs[0], &bytes[..keep]).expect("truncate");

        let back = replayed_values(tmp.path(), u64::MAX).expect("repairable");
        prop_assert!(back.len() <= values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A single bit flip in a sealed (non-last) segment is always detected
    /// as typed corruption.
    #[test]
    fn sealed_segment_bit_flip_is_detected(
        values in vec(-100.0f32..100.0, 20..60),
        pos_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        let tmp = TempDir::new("flip");
        // ~29 bytes per rating frame against a 128-byte rotation target and
        // ≥ 20 records guarantees several sealed segments.
        let segs = write_log(tmp.path(), &values, 128);
        prop_assert!(segs.len() >= 2, "expected rotation, got {} segment(s)", segs.len());
        let target = &segs[0];
        let mut bytes = fs::read(target).expect("read");
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        fs::write(target, &bytes).expect("rewrite");

        match replayed_values(tmp.path(), 128) {
            Err(WalError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            Ok(back) => {
                // The flip can only go undetected nowhere: any change to a
                // sealed segment must surface. Equal replay means the flip
                // hit a byte whose change is impossible — fail loudly.
                prop_assert!(false, "flip at {pos} bit {bit} went undetected ({} records)", back.len());
            }
        }
    }

    /// Garbage appended past the real frames is repaired; every real record
    /// survives.
    #[test]
    fn garbage_tail_is_repaired(
        values in vec(-100.0f32..100.0, 1..40),
        garbage in vec(0u32..256, 1..64),
    ) {
        let garbage: Vec<u8> = garbage.iter().map(|b| *b as u8).collect();
        let tmp = TempDir::new("garbage");
        let segs = write_log(tmp.path(), &values, u64::MAX);
        let mut f = OpenOptions::new().append(true).open(&segs[0]).expect("open");
        f.write_all(&garbage).expect("garbage");
        drop(f);

        match replayed_values(tmp.path(), u64::MAX) {
            Ok(back) => {
                prop_assert_eq!(back.len(), values.len(), "no real record may be lost");
                for (a, b) in values.iter().zip(&back) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            // Random garbage can (rarely) form a valid frame after the torn
            // point — the scanner then rightly refuses as mid-log damage
            // rather than silently swallowing a fabricated record.
            Err(WalError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
        }
    }
}

/// Deterministic regression: damage in the middle of the last segment with
/// valid frames after it must be refused, not "repaired" by dropping data.
#[test]
fn mid_log_damage_with_valid_frames_after_is_refused() {
    let tmp = TempDir::new("midlog");
    let values: Vec<f32> = (0..10).map(|k| k as f32).collect();
    let segs = write_log(tmp.path(), &values, u64::MAX);
    let mut bytes = fs::read(&segs[0]).expect("read");
    // Flip a bit in the FIRST frame's payload; nine valid frames follow.
    let flip = hire_wal::SEGMENT_HEADER_LEN + 8 + 2;
    bytes[flip] ^= 0x10;
    fs::write(&segs[0], &bytes).expect("rewrite");
    let err = replayed_values(tmp.path(), u64::MAX).expect_err("must refuse");
    match err {
        WalError::Corrupt { reason, .. } => {
            assert!(reason.contains("mid-log"), "{reason}");
        }
        other => panic!("wrong error {other}"),
    }
}
