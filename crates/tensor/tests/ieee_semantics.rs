//! Pins the matmul kernels' IEEE-754 semantics for non-finite inputs:
//! `0 * Inf = NaN` propagates — neither dispatch path skips zero
//! products (see the NUMERIC NOTE in `DESIGN.md` §11 and the
//! `matmul_reference` doc in `src/linalg.rs`).
//!
//! The pre-blocking kernel special-cased `a_ik == 0.0` and skipped the
//! product, which silently dropped `0 * Inf` / `0 * NaN` terms. The
//! blocked kernel cannot reproduce that skip bit-exactly, so the skip
//! was removed from both paths; these tests are the regression guard
//! that keeps it removed.

use hire_tensor::linalg;
use hire_tensor::NdArray;

/// `matmul2d` dispatches on problem size: at most `16 * 1024`
/// multiply-adds runs the reference loop, anything larger the blocked
/// kernel. 32x32x32 = 32768 forces the blocked path.
const BLOCKED_DIM: usize = 32;

/// Builds the poisoned inputs: `a` holds an explicit `0.0` column,
/// `b`'s matching row is all `Inf`, every other entry is finite. Each
/// output element's chain then contains exactly one `0 * Inf` term.
fn poisoned_inputs(n: usize, k: usize, m: usize) -> (NdArray, NdArray) {
    let mut a = vec![1.0f32; n * k];
    for row in 0..n {
        a[row * k] = 0.0; // column 0 of `a` is zero...
    }
    let mut b = vec![0.5f32; k * m];
    for col in 0..m {
        b[col] = f32::INFINITY; // ...and row 0 of `b` is Inf.
    }
    (NdArray::from_vec([n, k], a), NdArray::from_vec([k, m], b))
}

#[test]
fn zero_times_inf_is_nan_on_the_reference_path() {
    // 2x2x2 = 8 multiply-adds: far below the blocking threshold, so
    // matmul2d runs the reference loop.
    let (a, b) = poisoned_inputs(2, 2, 2);
    let out = linalg::matmul2d(&a, &b);
    for (i, &v) in out.as_slice().iter().enumerate() {
        assert!(
            v.is_nan(),
            "reference path element {i} = {v}: the 0 * Inf term was dropped"
        );
    }
}

#[test]
fn zero_times_inf_is_nan_on_the_blocked_path() {
    let (a, b) = poisoned_inputs(BLOCKED_DIM, BLOCKED_DIM, BLOCKED_DIM);
    assert!(
        BLOCKED_DIM * BLOCKED_DIM * BLOCKED_DIM > 16 * 1024,
        "shape too small to reach the blocked kernel"
    );
    let out = linalg::matmul2d(&a, &b);
    for (i, &v) in out.as_slice().iter().enumerate() {
        assert!(
            v.is_nan(),
            "blocked path element {i} = {v}: the 0 * Inf term was dropped"
        );
    }
}

#[test]
fn both_paths_agree_bitwise_on_non_finite_inputs() {
    // The bit-exactness contract (DESIGN.md §11, rule 2) holds even
    // when the accumulator chains pass through Inf and NaN: on every
    // available ISA the blocked kernel walks a chain whose invalid
    // operations produce the same canonical quiet-NaN patterns as the
    // reference loop (FMA follows the identical IEEE-754 invalid-operation
    // rules as mul-then-add), so the produced bits match exactly.
    let n = BLOCKED_DIM;
    let (a, b) = poisoned_inputs(n, n, n);
    let mut reference = vec![0.0f32; n * n];
    linalg::matmul_reference(a.as_slice(), b.as_slice(), &mut reference, n, n, n);
    for isa in hire_tensor::simd::Isa::available() {
        let blocked = linalg::matmul2d_with_isa(&a, &b, isa);
        for (i, (&got, &want)) in blocked.as_slice().iter().zip(&reference).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{}: element {i}: blocked {got} vs reference {want}",
                isa.label()
            );
        }
    }
}
