//! Gradient checks and behavioural tests for the autograd engine.

use hire_tensor::gradcheck::gradcheck;
use hire_tensor::{NdArray, Tensor};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn randn(shape: &[usize], seed: u64) -> NdArray {
    NdArray::randn(shape.to_vec(), 0.0, 1.0, &mut rng(seed))
}

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

#[test]
fn grad_add_broadcast() {
    let a = randn(&[3, 4], 1);
    let b = randn(&[4], 2);
    let r = gradcheck(
        |p| p[0].add(&p[1]).square().sum(),
        &[a.clone(), b.clone()],
        0,
        EPS,
    );
    assert!(r.ok(TOL), "lhs: {r:?}");
    let r = gradcheck(|p| p[0].add(&p[1]).square().sum(), &[a, b], 1, EPS);
    assert!(r.ok(TOL), "rhs: {r:?}");
}

#[test]
fn grad_sub_mul_div() {
    let a = randn(&[2, 3], 3);
    let b = randn(&[2, 3], 4).map(|x| x + 3.0); // keep divisor away from 0
    for target in 0..2 {
        let r = gradcheck(
            |p| p[0].sub(&p[1]).square().sum(),
            &[a.clone(), b.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "sub[{target}]: {r:?}");
        let r = gradcheck(
            |p| p[0].mul(&p[1]).sum(),
            &[a.clone(), b.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "mul[{target}]: {r:?}");
        let r = gradcheck(
            |p| p[0].div(&p[1]).sum(),
            &[a.clone(), b.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "div[{target}]: {r:?}");
    }
}

#[test]
fn grad_matmul_2d() {
    let a = randn(&[3, 4], 5);
    let b = randn(&[4, 2], 6);
    for target in 0..2 {
        let r = gradcheck(
            |p| p[0].matmul(&p[1]).square().sum(),
            &[a.clone(), b.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "matmul[{target}]: {r:?}");
    }
}

#[test]
fn grad_bmm_batched() {
    let a = randn(&[2, 3, 4], 7);
    let b = randn(&[2, 4, 2], 8);
    for target in 0..2 {
        let r = gradcheck(
            |p| p[0].matmul(&p[1]).square().sum(),
            &[a.clone(), b.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "bmm[{target}]: {r:?}");
    }
}

#[test]
fn grad_linear_shared_weight() {
    let x = randn(&[2, 3, 4], 9);
    let w = randn(&[4, 5], 10);
    for target in 0..2 {
        let r = gradcheck(
            |p| p[0].linear(&p[1]).square().sum(),
            &[x.clone(), w.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "linear[{target}]: {r:?}");
    }
}

#[test]
fn grad_activations() {
    let x = randn(&[2, 5], 11);
    for (name, f) in [
        (
            "sigmoid",
            (|p: &[Tensor]| p[0].sigmoid().sum()) as fn(&[Tensor]) -> Tensor,
        ),
        ("tanh", |p| p[0].tanh().sum()),
        ("gelu", |p| p[0].gelu().sum()),
        ("exp", |p| p[0].exp().sum()),
        ("square", |p| p[0].square().sum()),
    ] {
        let r = gradcheck(f, &[x.clone()], 0, EPS);
        assert!(r.ok(TOL), "{name}: {r:?}");
    }
}

#[test]
fn grad_relu_away_from_kink() {
    // shift inputs away from 0 where ReLU is non-differentiable
    let x = randn(&[2, 5], 12).map(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
    let r = gradcheck(|p| p[0].relu().sum(), &[x.clone()], 0, EPS);
    assert!(r.ok(TOL), "relu: {r:?}");
    let r = gradcheck(|p| p[0].leaky_relu(0.1).sum(), &[x], 0, EPS);
    assert!(r.ok(TOL), "leaky_relu: {r:?}");
}

#[test]
fn grad_ln_abs_eps() {
    let x = randn(&[6], 13).map(|v| if v.abs() < 0.3 { v + 0.8 } else { v });
    let r = gradcheck(|p| p[0].ln_abs_eps(1e-4).sum(), &[x], 0, EPS);
    assert!(r.ok(5e-2), "ln_abs_eps: {r:?}");
}

#[test]
fn grad_softmax() {
    let x = randn(&[3, 4], 14);
    let w = randn(&[3, 4], 15);
    let r = gradcheck(
        |p| p[0].softmax_last().mul(&Tensor::constant(w.clone())).sum(),
        &[x],
        0,
        EPS,
    );
    assert!(r.ok(TOL), "softmax: {r:?}");
}

#[test]
fn grad_layer_norm() {
    let x = randn(&[2, 6], 16);
    let gamma = NdArray::ones([6]);
    let beta = NdArray::zeros([6]);
    let w = randn(&[2, 6], 17);
    for target in 0..3 {
        let r = gradcheck(
            |p| {
                p[0].layer_norm_last(&p[1], &p[2], 1e-5)
                    .mul(&Tensor::constant(w.clone()))
                    .sum()
            },
            &[x.clone(), gamma.clone(), beta.clone()],
            target,
            EPS,
        );
        assert!(r.ok(5e-2), "layer_norm[{target}]: {r:?}");
    }
}

#[test]
fn grad_reshape_permute_concat_slice() {
    let x = randn(&[2, 3, 4], 18);
    let r = gradcheck(
        |p| p[0].reshape([6, 4]).square().sum(),
        &[x.clone()],
        0,
        EPS,
    );
    assert!(r.ok(TOL), "reshape: {r:?}");
    let r = gradcheck(
        |p| p[0].permute(&[2, 0, 1]).square().sum(),
        &[x.clone()],
        0,
        EPS,
    );
    assert!(r.ok(TOL), "permute: {r:?}");
    let r = gradcheck(
        |p| p[0].slice_last(1, 2).square().sum(),
        &[x.clone()],
        0,
        EPS,
    );
    assert!(r.ok(TOL), "slice: {r:?}");

    let y = randn(&[2, 3, 2], 19);
    for target in 0..2 {
        let r = gradcheck(
            |p| {
                Tensor::concat_last(&[p[0].clone(), p[1].clone()])
                    .square()
                    .sum()
            },
            &[x.clone(), y.clone()],
            target,
            EPS,
        );
        assert!(r.ok(TOL), "concat[{target}]: {r:?}");
    }
}

#[test]
fn grad_reductions() {
    let x = randn(&[3, 4], 20);
    let r = gradcheck(|p| p[0].mean(), &[x.clone()], 0, EPS);
    assert!(r.ok(TOL), "mean: {r:?}");
    let r = gradcheck(|p| p[0].sum_last().square().sum(), &[x.clone()], 0, EPS);
    assert!(r.ok(TOL), "sum_last: {r:?}");
    let r = gradcheck(|p| p[0].mean_last().square().sum(), &[x], 0, EPS);
    assert!(r.ok(TOL), "mean_last: {r:?}");
}

#[test]
fn grad_gather_rows() {
    let table = randn(&[5, 3], 21);
    let r = gradcheck(
        |p| p[0].gather_rows(&[0, 2, 2, 4]).square().sum(),
        &[table],
        0,
        EPS,
    );
    assert!(r.ok(TOL), "gather: {r:?}");
}

#[test]
fn grad_mse_masked() {
    let x = randn(&[3, 3], 22);
    let target = randn(&[3, 3], 23);
    let mut mask = NdArray::zeros([3, 3]);
    mask.as_mut_slice()[0] = 1.0;
    mask.as_mut_slice()[4] = 1.0;
    mask.as_mut_slice()[7] = 1.0;
    let r = gradcheck(|p| p[0].mse_masked(&target, &mask), &[x], 0, EPS);
    assert!(r.ok(TOL), "mse_masked: {r:?}");
}

#[test]
fn grad_accumulates_over_shared_use() {
    // y = x*x + x  => dy/dx = 2x + 1, exercised through two graph paths
    let x = Tensor::parameter(NdArray::from_vec([2], vec![3.0, -1.0]));
    let y = x.mul(&x).add(&x).sum();
    y.backward();
    let g = x.grad().unwrap();
    assert!(g.allclose(&NdArray::from_vec([2], vec![7.0, -1.0]), 1e-5));
}

#[test]
fn constants_get_no_grad() {
    let x = Tensor::parameter(NdArray::from_vec([2], vec![1.0, 2.0]));
    let c = Tensor::constant(NdArray::from_vec([2], vec![3.0, 4.0]));
    let y = x.mul(&c).sum();
    y.backward();
    assert!(c.grad().is_none());
    assert_eq!(x.grad().unwrap().as_slice(), &[3.0, 4.0]);
}

#[test]
fn detach_blocks_gradient() {
    let x = Tensor::parameter(NdArray::from_vec([2], vec![1.0, 2.0]));
    let d = x.mul_scalar(2.0).detach();
    let y = d.mul(&x).sum();
    y.backward();
    // grad flows only through the second factor: dy/dx = detached value
    assert_eq!(x.grad().unwrap().as_slice(), &[2.0, 4.0]);
}

#[test]
fn zero_grad_resets_accumulation() {
    let x = Tensor::parameter(NdArray::from_vec([1], vec![2.0]));
    let y = x.square().sum();
    y.backward();
    assert_eq!(x.grad().unwrap().as_slice(), &[4.0]);
    x.zero_grad();
    assert!(x.grad().is_none());
    let y2 = x.square().sum();
    y2.backward();
    assert_eq!(x.grad().unwrap().as_slice(), &[4.0]);
}

#[test]
fn diamond_graph_topological_order() {
    // z = (a+b) * (a-b); dz/da = 2a, dz/db = -2b
    let a = Tensor::parameter(NdArray::from_vec([1], vec![3.0]));
    let b = Tensor::parameter(NdArray::from_vec([1], vec![2.0]));
    let z = a.add(&b).mul(&a.sub(&b)).sum();
    z.backward();
    assert!((a.grad().unwrap().item() - 6.0).abs() < 1e-5);
    assert!((b.grad().unwrap().item() + 4.0).abs() < 1e-5);
}

#[test]
fn deep_chain_does_not_overflow_stack() {
    // 3000 chained adds exercise the iterative DFS
    let x = Tensor::parameter(NdArray::from_vec([1], vec![1.0]));
    let mut y = x.clone();
    for _ in 0..3000 {
        y = y.add_scalar(1.0);
    }
    let loss = y.sum();
    loss.backward();
    assert_eq!(x.grad().unwrap().item(), 1.0);
}

#[test]
fn backward_with_custom_seed() {
    let x = Tensor::parameter(NdArray::from_vec([2], vec![1.0, 1.0]));
    let y = x.mul_scalar(3.0);
    y.backward_with(NdArray::from_vec([2], vec![1.0, 2.0]));
    assert_eq!(x.grad().unwrap().as_slice(), &[3.0, 6.0]);
}
