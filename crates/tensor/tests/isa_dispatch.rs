//! Cross-ISA contract tests for the dispatched SIMD kernels.
//!
//! Runs every kernel under each ISA available on the host (via the
//! explicit `*_with_isa` entry points — the process-global `HIRE_ISA`
//! dispatch is resolved once, so a single process cannot vary it) and pins
//! the per-ISA determinism contract of DESIGN.md §16:
//!
//! 1. **Oracle agreement**: every ISA stays within the documented bound of
//!    an f64 reference; scalar and sse2 are additionally bit-identical to
//!    `matmul_reference` and to each other on every kernel.
//! 2. **Bitwise determinism per ISA**: identical bits across repeated runs
//!    and across thread counts 1 and 4.
//! 3. **IEEE semantics**: `0 * Inf = NaN` propagates on every vector path,
//!    both below and above the blocking threshold.
//!
//! Edge cases for the shared softmax/layer-norm row traversal (empty and
//! single-element rows) run on every ISA as well.

use hire_par::{with_pool, ThreadPool};
use hire_tensor::quant::{QuantMode, QuantizedTensor};
use hire_tensor::simd::Isa;
use hire_tensor::{linalg, NdArray};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn randn(dims: &[usize], seed: u64) -> NdArray {
    let mut rng = StdRng::seed_from_u64(seed);
    NdArray::randn(dims, 0.0, 1.0, &mut rng)
}

/// f64 matmul oracle: `out[n,m] = a[n,k] * b[k,m]` accumulated in f64.
fn matmul_f64(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n * m];
    for i in 0..n {
        for kk in 0..k {
            let a_ik = a[i * k + kk] as f64;
            for j in 0..m {
                out[i * m + j] += a_ik * b[kk * m + j] as f64;
            }
        }
    }
    out
}

/// The documented oracle bound for the matmul family: every ISA's result
/// stays within `1e-4 * sqrt(k)` relative (against max(1, |oracle|)) of
/// the f64 accumulation. Far looser than observed (scalar ~k*eps worst
/// case, avx2 tighter still thanks to FMA) but stable across shapes.
fn matmul_tol(k: usize) -> f64 {
    1e-4 * (k as f64).sqrt()
}

fn assert_close_f64(got: &[f32], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let bound = tol * w.abs().max(1.0);
        assert!(
            (g as f64 - w).abs() <= bound,
            "{what}: element {i} = {g} vs oracle {w} (bound {bound})"
        );
    }
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Runs `f` twice at 1 thread and once at 4 threads; asserts all three
/// results carry identical bits. Returns the result.
fn assert_deterministic(what: &str, f: impl Fn() -> NdArray) -> NdArray {
    let first = with_pool(&Arc::new(ThreadPool::new(1)), &f);
    let again = with_pool(&Arc::new(ThreadPool::new(1)), &f);
    assert_bits_eq(first.as_slice(), again.as_slice(), &format!("{what} rerun"));
    let wide = with_pool(&Arc::new(ThreadPool::new(4)), &f);
    assert_bits_eq(
        first.as_slice(),
        wide.as_slice(),
        &format!("{what} at 4 threads"),
    );
    first
}

/// Shapes straddling the blocking threshold, with ragged tile remainders
/// for every panel width (8 and 16).
const MATMUL_SHAPES: [(usize, usize, usize); 4] =
    [(3, 5, 4), (33, 17, 9), (64, 40, 32), (129, 31, 33)];

#[test]
fn matmul_oracle_agreement_and_determinism_per_isa() {
    for isa in Isa::available() {
        for (n, k, m) in MATMUL_SHAPES {
            let a = randn(&[n, k], 0x100 + n as u64);
            let b = randn(&[k, m], 0x200 + m as u64);
            let out = assert_deterministic(&format!("matmul {} {n}x{k}x{m}", isa.label()), || {
                linalg::matmul2d_with_isa(&a, &b, isa)
            });
            let oracle = matmul_f64(a.as_slice(), b.as_slice(), n, k, m);
            assert_close_f64(
                out.as_slice(),
                &oracle,
                matmul_tol(k),
                &format!("matmul {} {n}x{k}x{m}", isa.label()),
            );
            if isa < Isa::Avx2 {
                // scalar and sse2 are bit-identical to the reference chain.
                let mut reference = vec![0.0f32; n * m];
                linalg::matmul_reference(a.as_slice(), b.as_slice(), &mut reference, n, k, m);
                assert_bits_eq(
                    out.as_slice(),
                    &reference,
                    &format!("matmul {} vs reference {n}x{k}x{m}", isa.label()),
                );
            }
            if isa == Isa::Avx512 {
                // The avx512 matmul runs the same per-element FMA chains as
                // avx2, only in wider registers — identical bits.
                let via_avx2 = linalg::matmul2d_with_isa(&a, &b, Isa::Avx2);
                assert_bits_eq(
                    out.as_slice(),
                    via_avx2.as_slice(),
                    &format!("matmul avx512 vs avx2 {n}x{k}x{m}"),
                );
            }
        }
    }
}

#[test]
fn softmax_oracle_agreement_and_determinism_per_isa() {
    let x = randn(&[6, 8, 50], 0x300);
    let (rows, w) = (48, 50);
    // f64 oracle.
    let mut oracle = vec![0.0f64; rows * w];
    for r in 0..rows {
        let row = &x.as_slice()[r * w..(r + 1) * w];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
        let exps: Vec<f64> = row.iter().map(|&v| (v as f64 - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for j in 0..w {
            oracle[r * w + j] = exps[j] / sum;
        }
    }
    for isa in Isa::available() {
        let y = assert_deterministic(&format!("softmax {}", isa.label()), || {
            linalg::softmax_last_with_isa(&x, isa)
        });
        // Probabilities are <= 1, so an absolute bound pins the polynomial
        // exp (avx2) and libm exp (scalar/sse2) to the same oracle.
        for (i, (&g, &o)) in y.as_slice().iter().zip(&oracle).enumerate() {
            assert!(
                (g as f64 - o).abs() <= 1e-5,
                "softmax {}: element {i} = {g} vs oracle {o}",
                isa.label()
            );
        }
        // Rows still sum to ~1 exactly as before.
        for r in 0..rows {
            let sum: f32 = y.as_slice()[r * w..(r + 1) * w].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "softmax {} row {r}", isa.label());
        }
    }
}

#[test]
fn layer_norm_oracle_agreement_and_determinism_per_isa() {
    let x = randn(&[120, 33], 0x400);
    let gamma = randn(&[33], 0x401);
    let beta = randn(&[33], 0x402);
    let g = randn(&[120, 33], 0x403);
    let (rows, w) = (120usize, 33usize);
    // f64 forward oracle.
    let mut oracle = vec![0.0f64; rows * w];
    for r in 0..rows {
        let row = &x.as_slice()[r * w..(r + 1) * w];
        let mean = row.iter().map(|&v| v as f64).sum::<f64>() / w as f64;
        let var = row.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / w as f64;
        let istd = 1.0 / (var + 1e-5f32 as f64).sqrt();
        for j in 0..w {
            oracle[r * w + j] = (row[j] as f64 - mean) * istd * gamma.as_slice()[j] as f64
                + beta.as_slice()[j] as f64;
        }
    }
    for isa in Isa::available() {
        let y = assert_deterministic(&format!("layer_norm_nd {}", isa.label()), || {
            linalg::layer_norm_last_nd_with_isa(&x, &gamma, &beta, 1e-5, isa)
        });
        assert_close_f64(
            y.as_slice(),
            &oracle,
            1e-5,
            &format!("layer_norm {}", isa.label()),
        );
        // Tape forward agrees with the no-grad forward bit for bit (both
        // route through the same row helpers).
        let (y_tape, xhat, inv_std) =
            linalg::layer_norm_forward_last_with_isa(&x, &gamma, &beta, 1e-5, isa);
        assert_bits_eq(
            y.as_slice(),
            y_tape.as_slice(),
            &format!("layer_norm tape vs nd {}", isa.label()),
        );
        // Backward is deterministic per ISA across runs and thread counts.
        assert_deterministic(&format!("layer_norm backward {}", isa.label()), || {
            let (dx, dgamma, dbeta) =
                linalg::layer_norm_backward_last_with_isa(&xhat, &inv_std, &gamma, &g, isa);
            let mut packed: Vec<f32> = dx.as_slice().to_vec();
            packed.extend_from_slice(dgamma.as_slice());
            packed.extend_from_slice(dbeta.as_slice());
            let len = packed.len();
            NdArray::from_vec([len], packed)
        });
    }
}

#[test]
fn sse2_is_bit_identical_to_scalar_everywhere() {
    if !Isa::Sse2.is_available() {
        return;
    }
    let a = randn(&[64, 40], 0x500);
    let b = randn(&[40, 32], 0x501);
    assert_bits_eq(
        linalg::matmul2d_with_isa(&a, &b, Isa::Sse2).as_slice(),
        linalg::matmul2d_with_isa(&a, &b, Isa::Scalar).as_slice(),
        "sse2 matmul",
    );
    let q = QuantizedTensor::quantize(&b, QuantMode::Int8);
    assert_bits_eq(
        linalg::matmul2d_dequant_with_isa(&a, &q, Isa::Sse2).as_slice(),
        linalg::matmul2d_dequant_with_isa(&a, &q, Isa::Scalar).as_slice(),
        "sse2 dequant matmul",
    );
    let x = randn(&[16, 50], 0x502);
    assert_bits_eq(
        linalg::softmax_last_with_isa(&x, Isa::Sse2).as_slice(),
        linalg::softmax_last_with_isa(&x, Isa::Scalar).as_slice(),
        "sse2 softmax",
    );
    let gamma = randn(&[50], 0x503);
    let beta = randn(&[50], 0x504);
    assert_bits_eq(
        linalg::layer_norm_last_nd_with_isa(&x, &gamma, &beta, 1e-5, Isa::Sse2).as_slice(),
        linalg::layer_norm_last_nd_with_isa(&x, &gamma, &beta, 1e-5, Isa::Scalar).as_slice(),
        "sse2 layer_norm",
    );
    let flat = randn(&[9000], 0x505);
    assert_eq!(
        linalg::norm_sq_f64_with_isa(flat.as_slice(), Isa::Sse2).to_bits(),
        linalg::norm_sq_f64_with_isa(flat.as_slice(), Isa::Scalar).to_bits(),
        "sse2 norm_sq"
    );
}

#[test]
fn dequant_matmul_is_bit_identical_to_dequantize_then_matmul_per_isa() {
    // The chain contract: on every ISA, dequantize-on-the-fly runs the
    // same per-element accumulation as the f32 matmul of that ISA against
    // the dequantized weights.
    for isa in Isa::available() {
        for (n, k, m) in [(3usize, 5usize, 4usize), (40, 48, 40)] {
            let a = randn(&[n, k], 0x600 + n as u64);
            let w = randn(&[k, m], 0x700 + m as u64);
            for mode in [QuantMode::Int8, QuantMode::F16] {
                let q = QuantizedTensor::quantize(&w, mode);
                let got = linalg::matmul2d_dequant_with_isa(&a, &q, isa);
                let want = linalg::matmul2d_with_isa(&a, &q.dequantize(), isa);
                assert_bits_eq(
                    got.as_slice(),
                    want.as_slice(),
                    &format!("dequant {} {mode:?} {n}x{k}x{m}", isa.label()),
                );
            }
        }
    }
}

#[test]
fn dequant_row_is_exact_on_every_isa() {
    // int8 widening + one f32 multiply is exact per element, so every ISA
    // must produce identical bits.
    let qs: Vec<i8> = (-64..63).collect();
    let scale = 0.037f32;
    let mut want = vec![0.0f32; qs.len()];
    hire_tensor::simd::dequant_row_i8(Isa::Scalar, &qs, scale, &mut want);
    for (j, &q) in qs.iter().enumerate() {
        assert_eq!(want[j], q as f32 * scale);
    }
    for isa in Isa::available() {
        let mut got = vec![0.0f32; qs.len()];
        hire_tensor::simd::dequant_row_i8(isa, &qs, scale, &mut got);
        assert_bits_eq(&got, &want, &format!("dequant_row {}", isa.label()));
    }
}

#[test]
fn sanitize_and_norm_agree_across_isas() {
    let clean = randn(&[3 * 4096 + 731], 0x800);
    let mut poisoned = clean.as_slice().to_vec();
    poisoned[100] = f32::NAN;
    poisoned[5000] = f32::INFINITY;
    poisoned[9000] = f32::NEG_INFINITY;
    poisoned[12287] = f32::NAN; // last element of a 4096 chunk
    let mut want = poisoned.clone();
    let want_count = linalg::sanitize_non_finite_with_isa(&mut want, Isa::Scalar);
    assert_eq!(want_count, 4);
    let oracle: f64 = clean.as_slice().iter().map(|&v| (v as f64).powi(2)).sum();
    for isa in Isa::available() {
        // sanitize is element-wise: identical results on every ISA.
        let mut got = poisoned.clone();
        let count = linalg::sanitize_non_finite_with_isa(&mut got, isa);
        assert_eq!(count, want_count, "sanitize count {}", isa.label());
        assert_bits_eq(&got, &want, &format!("sanitize {}", isa.label()));
        // norm_sq: oracle-bounded on avx2, bit-identical to scalar else;
        // always deterministic across thread counts.
        let norm1 = with_pool(&Arc::new(ThreadPool::new(1)), || {
            linalg::norm_sq_f64_with_isa(clean.as_slice(), isa)
        });
        let norm4 = with_pool(&Arc::new(ThreadPool::new(4)), || {
            linalg::norm_sq_f64_with_isa(clean.as_slice(), isa)
        });
        assert_eq!(norm1.to_bits(), norm4.to_bits(), "norm_sq {}", isa.label());
        assert!(
            (norm1 - oracle).abs() <= 1e-9 * oracle.max(1.0),
            "norm_sq {}: {norm1} vs oracle {oracle}",
            isa.label()
        );
    }
}

#[test]
fn zero_times_inf_is_nan_on_every_isa_and_both_size_paths() {
    // a's column 0 is zero, b's row 0 is Inf: every output chain contains
    // exactly one 0 * Inf term. FMA and mul-then-add follow the same
    // IEEE-754 invalid-operation rule, so NaN must propagate everywhere.
    for isa in Isa::available() {
        for n in [2usize, 32] {
            let mut a = vec![1.0f32; n * n];
            for row in 0..n {
                a[row * n] = 0.0;
            }
            let mut b = vec![0.5f32; n * n];
            for col in 0..n {
                b[col] = f32::INFINITY;
            }
            let a = NdArray::from_vec([n, n], a);
            let b = NdArray::from_vec([n, n], b);
            let out = linalg::matmul2d_with_isa(&a, &b, isa);
            for (i, &v) in out.as_slice().iter().enumerate() {
                assert!(
                    v.is_nan(),
                    "{} {n}x{n}: element {i} = {v}: 0 * Inf was dropped",
                    isa.label()
                );
            }
        }
    }
}

#[test]
fn softmax_edge_rows_on_every_isa() {
    for isa in Isa::available() {
        // Single-element rows: softmax of one logit is exactly 1.0.
        let x = randn(&[5, 1], 0x900);
        let y = linalg::softmax_last_with_isa(&x, isa);
        for (i, &v) in y.as_slice().iter().enumerate() {
            assert_eq!(v.to_bits(), 1.0f32.to_bits(), "{} row {i}", isa.label());
        }
        // Zero-width rows: empty output, no panic.
        let empty = NdArray::from_vec([3, 0], vec![]);
        assert_eq!(
            linalg::softmax_last_with_isa(&empty, isa).numel(),
            0,
            "{}",
            isa.label()
        );
        // Zero rows of nonzero width.
        let no_rows = NdArray::from_vec([0, 7], vec![]);
        assert_eq!(
            linalg::softmax_last_with_isa(&no_rows, isa).numel(),
            0,
            "{}",
            isa.label()
        );
        // Width straddling one vector: 7, 8, 9 lanes agree with scalar
        // within the oracle bound (bitwise below avx2).
        for w in [7usize, 8, 9, 16, 17] {
            let x = randn(&[4, w], 0x910 + w as u64);
            let got = linalg::softmax_last_with_isa(&x, isa);
            let want = linalg::softmax_last_with_isa(&x, Isa::Scalar);
            for (i, (&g, &s)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                assert!(
                    (g - s).abs() <= 1e-6,
                    "{} w={w}: element {i}: {g} vs scalar {s}",
                    isa.label()
                );
            }
        }
    }
}

#[test]
fn layer_norm_edge_rows_on_every_isa() {
    let gamma1 = randn(&[1], 0xA00);
    let beta1 = randn(&[1], 0xA01);
    for isa in Isa::available() {
        // Single-element rows: xhat = 0 (x - mean == 0), so y == beta.
        let x = randn(&[6, 1], 0xA02);
        let y = linalg::layer_norm_last_nd_with_isa(&x, &gamma1, &beta1, 1e-5, isa);
        for (i, &v) in y.as_slice().iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                beta1.as_slice()[0].to_bits(),
                "{} row {i}",
                isa.label()
            );
        }
        // Zero rows.
        let no_rows = NdArray::from_vec([0, 4], vec![]);
        let gamma4 = randn(&[4], 0xA03);
        let beta4 = randn(&[4], 0xA04);
        assert_eq!(
            linalg::layer_norm_last_nd_with_isa(&no_rows, &gamma4, &beta4, 1e-5, isa).numel(),
            0,
            "{}",
            isa.label()
        );
        // Widths around the 4-lane body on every ISA.
        for w in [3usize, 4, 5, 8, 9] {
            let x = randn(&[5, w], 0xA10 + w as u64);
            let gamma = randn(&[w], 0xA20 + w as u64);
            let beta = randn(&[w], 0xA30 + w as u64);
            let got = linalg::layer_norm_last_nd_with_isa(&x, &gamma, &beta, 1e-5, isa);
            let want = linalg::layer_norm_last_nd_with_isa(&x, &gamma, &beta, 1e-5, Isa::Scalar);
            for (i, (&g, &s)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                assert!(
                    (g - s).abs() <= 1e-5 * s.abs().max(1.0),
                    "{} w={w}: element {i}: {g} vs scalar {s}",
                    isa.label()
                );
            }
        }
    }
}
