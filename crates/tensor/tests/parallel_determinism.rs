//! Thread-count invariance of every parallel linalg kernel.
//!
//! The parallel compute layer promises bit-exact results regardless of how
//! many workers execute a kernel: chunk boundaries depend only on the
//! problem shape, each row/batch owns a disjoint output slab, and every
//! reduction folds fixed-size chunk partials in ascending order. These
//! tests pin that contract by running each kernel under pools of 1, 2, 4,
//! and 7 threads and comparing raw bits, plus (for the matmuls) comparing
//! against the naive reference loop as an independent oracle.

use hire_par::{with_pool, ThreadPool};
use hire_tensor::{linalg, NdArray};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Runs `f` under each pool size and asserts all results are bit-identical,
/// returning the 1-thread result.
fn assert_thread_invariant(what: &str, f: impl Fn() -> NdArray) -> NdArray {
    let baseline = with_pool(&Arc::new(ThreadPool::new(1)), &f);
    for &t in &THREADS[1..] {
        let out = with_pool(&Arc::new(ThreadPool::new(t)), &f);
        assert_eq!(
            out.dims(),
            baseline.dims(),
            "{what}: dims differ at {t} threads"
        );
        for (i, (x, y)) in out.as_slice().iter().zip(baseline.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: element {i} differs at {t} threads ({x} vs {y})"
            );
        }
    }
    baseline
}

fn randn(dims: &[usize], seed: u64) -> NdArray {
    let mut rng = StdRng::seed_from_u64(seed);
    NdArray::randn(dims, 0.0, 1.0, &mut rng)
}

#[test]
fn matmul2d_is_thread_invariant_and_matches_reference() {
    // Shapes straddle BLOCK_THRESHOLD so both the blocked path and the
    // small-product path are exercised, plus ragged row counts that do not
    // divide the block size. Thread invariance must hold bitwise on every
    // dispatched ISA; agreement with `matmul_reference` is bitwise on
    // scalar/sse2 and oracle-bounded on avx2 (whose FMA chain rounds less —
    // see DESIGN.md §16; the per-ISA bound itself is pinned by
    // tests/isa_dispatch.rs).
    let bitwise_vs_reference = hire_tensor::simd::active_isa() < hire_tensor::simd::Isa::Avx2;
    for (n, k, m) in [(3, 5, 4), (33, 17, 9), (64, 40, 32), (129, 31, 33)] {
        let a = randn(&[n, k], 0xA0 + n as u64);
        let b = randn(&[k, m], 0xB0 + m as u64);
        let out = assert_thread_invariant("matmul2d", || linalg::matmul2d(&a, &b));
        let mut reference = vec![0.0f32; n * m];
        linalg::matmul_reference(a.as_slice(), b.as_slice(), &mut reference, n, k, m);
        for (i, (x, y)) in out.as_slice().iter().zip(&reference).enumerate() {
            if bitwise_vs_reference {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "matmul2d {n}x{k}x{m}: element {i} deviates from reference"
                );
            } else {
                let tol = 1e-4 * (k as f32).sqrt() * y.abs().max(1.0);
                assert!(
                    (x - y).abs() <= tol,
                    "matmul2d {n}x{k}x{m}: element {i} outside oracle bound ({x} vs {y})"
                );
            }
        }
    }
}

#[test]
fn batched_matmul_is_thread_invariant() {
    let a = randn(&[5, 19, 23], 1);
    let b = randn(&[5, 23, 11], 2);
    assert_thread_invariant("bmm", || linalg::bmm(&a, &b));
}

#[test]
fn transposed_products_are_thread_invariant() {
    // matmul2d_nt: [n,k] x [m,k]^T and matmul2d_tn: [n,k]^T x [n,m] are
    // the backward-pass kernels; cover ragged sizes around the row block.
    let a = randn(&[37, 24], 3);
    let b = randn(&[15, 24], 4);
    assert_thread_invariant("matmul2d_nt", || linalg::matmul2d_nt(&a, &b));
    let g = randn(&[37, 15], 5);
    assert_thread_invariant("matmul2d_tn", || linalg::matmul2d_tn(&a, &g));

    let ba = randn(&[4, 21, 16], 6);
    let bb = randn(&[4, 9, 16], 7);
    assert_thread_invariant("bmm_nt batched", || linalg::bmm_nt(&ba, &bb));
    let bg = randn(&[4, 21, 9], 8);
    assert_thread_invariant("bmm_tn batched", || linalg::bmm_tn(&ba, &bg));
    // Shared 2-D rhs variant (the weight-gradient shape in MHSA).
    let shared = randn(&[9, 16], 9);
    assert_thread_invariant("bmm_nt shared rhs", || linalg::bmm_nt(&ba, &shared));
}

#[test]
fn softmax_forward_and_backward_are_thread_invariant() {
    let x = randn(&[6, 8, 50], 10);
    let y = assert_thread_invariant("softmax_last", || linalg::softmax_last(&x));
    let g = randn(&[6, 8, 50], 11);
    assert_thread_invariant("softmax_backward_last", || {
        linalg::softmax_backward_last(&y, &g)
    });
}

#[test]
fn layer_norm_forward_and_backward_are_thread_invariant() {
    let x = randn(&[200, 33], 12);
    let gamma = randn(&[33], 13);
    let beta = randn(&[33], 14);
    assert_thread_invariant("layer_norm_last_nd", || {
        linalg::layer_norm_last_nd(&x, &gamma, &beta, 1e-5)
    });

    let (_, xhat, inv_std) = linalg::layer_norm_forward_last(&x, &gamma, &beta, 1e-5);
    let g = randn(&[200, 33], 15);
    // Backward returns (dx, dgamma, dbeta); pack into one array so the
    // invariance helper can compare everything at once.
    assert_thread_invariant("layer_norm_backward_last", || {
        let (dx, dgamma, dbeta) = linalg::layer_norm_backward_last(&xhat, &inv_std, &gamma, &g);
        let mut packed: Vec<f32> = dx.as_slice().to_vec();
        packed.extend_from_slice(dgamma.as_slice());
        packed.extend_from_slice(dbeta.as_slice());
        let len = packed.len();
        NdArray::from_vec([len], packed)
    });
}

#[test]
fn flat_reductions_are_thread_invariant() {
    let xs = randn(&[3 * 4096 + 731], 16);
    let baseline = with_pool(&Arc::new(ThreadPool::new(1)), || {
        linalg::norm_sq_f64(xs.as_slice())
    });
    for &t in &THREADS[1..] {
        let got = with_pool(&Arc::new(ThreadPool::new(t)), || {
            linalg::norm_sq_f64(xs.as_slice())
        });
        assert_eq!(
            got.to_bits(),
            baseline.to_bits(),
            "norm_sq_f64 at {t} threads"
        );
    }

    let mut poisoned = xs.as_slice().to_vec();
    poisoned[100] = f32::NAN;
    poisoned[5000] = f32::INFINITY;
    poisoned[9000] = f32::NEG_INFINITY;
    let mut expect = poisoned.clone();
    let count1 = with_pool(&Arc::new(ThreadPool::new(1)), || {
        linalg::sanitize_non_finite(&mut expect)
    });
    assert_eq!(count1, 3);
    for &t in &THREADS[1..] {
        let mut got = poisoned.clone();
        let count = with_pool(&Arc::new(ThreadPool::new(t)), || {
            linalg::sanitize_non_finite(&mut got)
        });
        assert_eq!(count, count1, "sanitize count at {t} threads");
        assert_eq!(got, expect, "sanitized values at {t} threads");
    }
}
