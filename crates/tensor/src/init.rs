//! Weight initialization schemes.

use crate::ndarray::NdArray;
use rand::Rng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> NdArray {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    NdArray::rand_uniform([fan_in, fan_out], -a, a, rng)
}

/// Xavier/Glorot normal: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> NdArray {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    NdArray::randn([fan_in, fan_out], 0.0, std, rng)
}

/// Kaiming/He normal for ReLU fan-in: `N(0, 2 / fan_in)`.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> NdArray {
    let std = (2.0 / fan_in as f32).sqrt();
    NdArray::randn([fan_in, fan_out], 0.0, std, rng)
}

/// Embedding-table initialization: `N(0, scale^2)` over `[vocab, dim]`.
pub fn embedding(vocab: usize, dim: usize, scale: f32, rng: &mut impl Rng) -> NdArray {
    NdArray::randn([vocab, dim], 0.0, scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(w.max_all() <= a && w.min_all() >= -a);
        assert_eq!(w.dims(), &[64, 64]);
    }

    #[test]
    fn normal_inits_have_expected_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let w = kaiming_normal(100, 400, &mut rng);
        let std = (2.0f32 / 100.0).sqrt();
        let sample_std = (w.as_slice().iter().map(|&x| (x * x) as f64).sum::<f64>()
            / w.numel() as f64)
            .sqrt() as f32;
        assert!((sample_std - std).abs() < 0.02);
    }
}
