//! Post-training weight quantization for the serving mid-tier.
//!
//! A [`QuantizedTensor`] stores a frozen weight matrix in a compressed
//! representation — symmetric per-tensor int8 ([`QuantMode::Int8`]) or
//! IEEE 754 binary16 ([`QuantMode::F16`]) — and dequantizes elements on
//! the fly inside the matmul kernels (see `linalg::matmul2d_dequant`).
//! Activations stay f32 throughout; only the weights are compressed, so
//! the scheme is purely post-training and needs no calibration data.
//!
//! Determinism contract: dequantization is a pure per-element function of
//! the stored representation, and the dequantizing kernels accumulate in
//! a single f32 per output element in ascending-`k` order (the same order
//! as `linalg::matmul_reference`). Results are therefore bit-identical
//! across thread counts, exactly like the f32 kernels.
//!
//! Error accounting: `quantize` records the worst per-element absolute
//! reconstruction error actually incurred ([`QuantizedTensor::max_err`]).
//! For int8 the analytical bound is `scale / 2` with
//! `scale = max_abs / 127`; for f16 it is `max_abs * 2^-11` (half a ulp
//! of the largest magnitude). The recorded value is always at or below
//! the analytical bound and is what downstream error-bound tests assert
//! against.

use crate::ndarray::NdArray;
use crate::shape::Shape;

/// Weight compression scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Symmetric per-tensor int8: `q = round(x / scale)` clamped to
    /// `[-127, 127]`, `scale = max|x| / 127`. 4x smaller than f32.
    Int8,
    /// IEEE 754 binary16 (round-to-nearest-even). 2x smaller, much
    /// tighter error than int8.
    F16,
}

impl QuantMode {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            QuantMode::Int8 => "int8",
            QuantMode::F16 => "f16",
        }
    }
}

/// Storage behind a [`QuantizedTensor`].
#[derive(Debug, Clone)]
enum QuantRepr {
    Int8 { data: Vec<i8>, scale: f32 },
    F16 { data: Vec<u16> },
}

/// A frozen weight tensor in compressed form, dequantized on the fly by
/// the `linalg` dequant kernels.
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    shape: Shape,
    repr: QuantRepr,
    max_err: f32,
}

impl QuantizedTensor {
    /// Compresses `a` under `mode`, recording the worst per-element
    /// reconstruction error. Non-finite inputs are rejected by debug
    /// assertion upstream (frozen weights are validated at export); here
    /// they saturate like any out-of-range value.
    pub fn quantize(a: &NdArray, mode: QuantMode) -> Self {
        let xs = a.as_slice();
        let (repr, max_err) = match mode {
            QuantMode::Int8 => {
                let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                // All-zero (or empty) tensors quantize losslessly; scale 1
                // avoids a 0/0 in dequantization.
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
                let inv = 1.0 / scale;
                let mut max_err = 0.0f32;
                let data: Vec<i8> = xs
                    .iter()
                    .map(|&x| {
                        let q = (x * inv).round().clamp(-127.0, 127.0);
                        max_err = max_err.max((x - q * scale).abs());
                        q as i8
                    })
                    .collect();
                (QuantRepr::Int8 { data, scale }, max_err)
            }
            QuantMode::F16 => {
                let mut max_err = 0.0f32;
                let data: Vec<u16> = xs
                    .iter()
                    .map(|&x| {
                        let h = f32_to_f16_bits(x);
                        max_err = max_err.max((x - f16_bits_to_f32(h)).abs());
                        h
                    })
                    .collect();
                (QuantRepr::F16 { data }, max_err)
            }
        };
        QuantizedTensor {
            shape: a.shape().clone(),
            repr,
            max_err,
        }
    }

    /// The compression scheme in use.
    pub fn mode(&self) -> QuantMode {
        match self.repr {
            QuantRepr::Int8 { .. } => QuantMode::Int8,
            QuantRepr::F16 { .. } => QuantMode::F16,
        }
    }

    /// Tensor dimensions (same as the source array's).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Worst per-element absolute reconstruction error recorded at
    /// quantization time. `|dequantize()[i] - original[i]| <= max_err()`
    /// for every element, by construction.
    pub fn max_err(&self) -> f32 {
        self.max_err
    }

    /// Dequantizes one element by flat index.
    #[inline]
    pub fn deq_at(&self, idx: usize) -> f32 {
        match &self.repr {
            QuantRepr::Int8 { data, scale } => data[idx] as f32 * scale,
            QuantRepr::F16 { data } => f16_bits_to_f32(data[idx]),
        }
    }

    /// Dequantizes one row of a 2-D tensor into `out` (`out.len()` must
    /// equal the row width). Lets kernels pay the representation dispatch
    /// once per row instead of once per element.
    #[inline]
    pub fn deq_row_into(&self, row: usize, out: &mut [f32]) {
        let dims = self.dims();
        assert_eq!(dims.len(), 2, "deq_row_into needs a 2-D tensor");
        let w = dims[1];
        assert_eq!(out.len(), w, "row buffer must be [{w}]");
        let base = row * w;
        match &self.repr {
            QuantRepr::Int8 { data, scale } => {
                // Widening int8 and one f32 multiply are exact per element
                // on every ISA, so the dispatched path cannot change bits.
                crate::simd::dequant_row_i8(
                    crate::simd::active_isa(),
                    &data[base..base + w],
                    *scale,
                    out,
                );
            }
            QuantRepr::F16 { data } => {
                for (o, &h) in out.iter_mut().zip(&data[base..base + w]) {
                    *o = f16_bits_to_f32(h);
                }
            }
        }
    }

    /// Full dequantization back to f32 — the reference the dequant
    /// kernels are tested against, and the bridge for ops that have no
    /// dequantizing variant.
    pub fn dequantize(&self) -> NdArray {
        let data = (0..self.numel()).map(|i| self.deq_at(i)).collect();
        NdArray::from_vec(self.shape.clone(), data)
    }

    /// Stored bytes (for compression-ratio reporting).
    pub fn stored_bytes(&self) -> usize {
        match &self.repr {
            QuantRepr::Int8 { data, .. } => data.len(),
            QuantRepr::F16 { data } => data.len() * 2,
        }
    }
}

/// f32 → binary16 bits with round-to-nearest-even, saturating NaN/Inf and
/// overflow to the half-precision specials. No `half` crate — the repo
/// vendors no numerics dependencies.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 255 {
        // Inf stays Inf; NaN keeps a set quiet bit.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> ±Inf
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        // A mantissa carry propagates into the exponent naturally.
        let half = (((unbiased + 15) as u32) << 10) | (mant >> 13);
        let round = mant & 0x1FFF;
        let up = round > 0x1000 || (round == 0x1000 && (half & 1) == 1);
        let half = half + up as u32;
        return if half >= 0x7C00 {
            sign | 0x7C00
        } else {
            sign | half as u16
        };
    }
    // Subnormal half (or underflow to zero): value = hm * 2^-24.
    let full = mant | 0x0080_0000; // restore the implicit bit (24 bits)
    let shift = (-unbiased - 1) as u32;
    if shift > 24 {
        return sign; // below half the smallest subnormal -> ±0
    }
    let hm = if shift == 24 { 0 } else { full >> shift };
    let rem = if shift == 24 {
        full
    } else {
        full & ((1u32 << shift) - 1)
    };
    let halfway = 1u32 << (shift - 1);
    let up = rem > halfway || (rem == halfway && (hm & 1) == 1);
    // hm + carry may reach 0x400, which is exactly the smallest normal
    // half — the bit pattern composes correctly.
    sign | (hm + up as u32) as u16
}

/// binary16 bits → f32 (exact: every half value is representable).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h >> 15) & 1) as u32;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    if exp == 0 {
        // ±0 or subnormal: mant * 2^-24, sign applied by multiplication
        // so -0.0 round-trips.
        let v = mant as f32 * (1.0 / 16_777_216.0);
        return if sign == 1 { -v } else { v };
    }
    let bits = if exp == 31 {
        (sign << 31) | 0x7F80_0000 | (mant << 13)
    } else {
        (sign << 31) | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exact_values() {
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0,
        ] {
            let h = f32_to_f16_bits(x);
            assert_eq!(f16_bits_to_f32(h), x, "{x} must round-trip");
        }
        assert_eq!(f32_to_f16_bits(-0.0).to_be_bytes()[0] & 0x80, 0x80);
    }

    #[test]
    fn f16_handles_specials_and_saturation() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Larger than the max half (65504) saturates to Inf.
        assert_eq!(f32_to_f16_bits(1.0e6), 0x7C00);
        assert_eq!(f32_to_f16_bits(70000.0), 0x7C00);
        // Smallest subnormal half is 2^-24; half of it ties to even zero.
        assert_eq!(f16_bits_to_f32(1), 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25)), 0);
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 1);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half
        // (1 + 2^-10); ties-to-even keeps the even mantissa (1.0).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tie)), 1.0);
        // Just above the tie rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(above)),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn f16_relative_error_is_within_half_ulp() {
        let mut state = 0x1234_5678u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 33) as f32) / (1u64 << 31) as f32; // [0, 1)
            let x = (u - 0.5) * 8.0; // [-4, 4)
            let y = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!(
                (x - y).abs() <= x.abs() * 2.0f32.powi(-11) + f32::EPSILON,
                "x={x} y={y}"
            );
        }
    }

    #[test]
    fn int8_error_stays_under_half_scale() {
        let xs: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 0.013).collect();
        let a = NdArray::from_vec([257], xs.clone());
        let q = QuantizedTensor::quantize(&a, QuantMode::Int8);
        let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = max_abs / 127.0;
        assert!(q.max_err() <= scale * 0.5 + f32::EPSILON);
        let deq = q.dequantize();
        for (x, y) in xs.iter().zip(deq.as_slice()) {
            assert!((x - y).abs() <= q.max_err() + f32::EPSILON);
        }
        assert_eq!(q.stored_bytes(), 257);
        assert_eq!(q.mode(), QuantMode::Int8);
    }

    #[test]
    fn all_zero_tensor_quantizes_losslessly() {
        let a = NdArray::zeros([4, 4]);
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let q = QuantizedTensor::quantize(&a, mode);
            assert_eq!(q.max_err(), 0.0);
            assert_eq!(q.dequantize().as_slice(), a.as_slice());
        }
    }

    #[test]
    fn deq_row_matches_deq_at() {
        let a = NdArray::from_vec([3, 4], (0..12).map(|i| i as f32 * 0.3 - 1.7).collect());
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let q = QuantizedTensor::quantize(&a, mode);
            let mut row = vec![0.0f32; 4];
            for r in 0..3 {
                q.deq_row_into(r, &mut row);
                for c in 0..4 {
                    assert_eq!(row[c], q.deq_at(r * 4 + c));
                }
            }
        }
    }
}
