//! # hire-tensor
//!
//! Dense `f32` tensor library with reverse-mode automatic differentiation,
//! purpose-built as the numerical substrate of the HIRE reproduction
//! (ICDE 2025, *All-in-One: Heterogeneous Interaction Modeling for
//! Cold-Start Rating Prediction*).
//!
//! Components:
//! - [`Shape`] — dimension bookkeeping, strides, broadcasting rules.
//! - [`NdArray`] — contiguous row-major value type with numeric kernels
//!   ([`linalg`]): broadcast arithmetic, batched matmul, permutation,
//!   softmax, reductions, gather/scatter.
//! - [`Tensor`] — autograd graph node; every op records a backward closure
//!   and [`Tensor::backward`] accumulates gradients in topological order.
//! - [`gradcheck`] — finite-difference validation used throughout the test
//!   suite.
//! - [`init`] — Xavier/Kaiming/embedding initializers.
//! - [`quant`] — post-training weight compression (symmetric int8 / f16)
//!   with dequantize-on-the-fly kernels in [`linalg`]
//!   (`matmul2d_dequant`, `linear_nd_dequant`, `gather_rows_dequant`),
//!   bit-exact across thread counts like the f32 kernels.
//! - [`simd`] — runtime-dispatched vector micro-kernels
//!   (scalar/sse2/avx2, `HIRE_ISA` override) behind the [`linalg`] hot
//!   paths, with a per-ISA determinism contract (DESIGN.md §16).
//!
//! ```
//! use hire_tensor::{NdArray, Tensor};
//!
//! let w = Tensor::parameter(NdArray::from_vec([2, 1], vec![0.5, -0.5]));
//! let x = Tensor::constant(NdArray::from_vec([1, 2], vec![1.0, 2.0]));
//! let y = x.matmul(&w).sum();
//! y.backward();
//! assert_eq!(w.grad().unwrap().as_slice(), &[1.0, 2.0]);
//! ```

pub mod autograd;
pub mod gradcheck;
pub mod init;
pub mod linalg;
pub mod ndarray;
pub mod quant;
pub mod shape;
pub mod simd;

pub use autograd::Tensor;
pub use ndarray::NdArray;
pub use quant::{QuantMode, QuantizedTensor};
pub use shape::Shape;
