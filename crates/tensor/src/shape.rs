//! Shape arithmetic: dimension bookkeeping, row-major strides and
//! numpy-style broadcasting rules.

use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// A scalar is represented by an empty dimension list. Dimensions of size
/// zero are permitted (the tensor then holds no elements).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The scalar shape `[]`.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `axis`. Panics if out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major (C order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.dims.len()];
        let mut acc = 1usize;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// Panics in debug builds if the index is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        let mut acc = 1usize;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            let ix = index[i];
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            off += ix * acc;
            acc *= d;
        }
        off
    }

    /// The broadcast of two shapes following numpy rules, or `None` when the
    /// shapes are incompatible.
    ///
    /// Shapes align from the trailing dimension; a dimension broadcasts when
    /// the two sizes are equal or one of them is 1 (or missing).
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for i in 0..rank {
            let a = dim_from_end(&self.dims, i);
            let b = dim_from_end(&other.dims, i);
            let d = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => return None,
            };
            dims[rank - 1 - i] = d;
        }
        Some(Shape::new(dims))
    }

    /// Whether every element of `self` maps onto `target` by broadcasting.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        if self.rank() > target.rank() {
            return false;
        }
        for i in 0..self.rank() {
            let a = dim_from_end(&self.dims, i);
            let b = dim_from_end(target.dims(), i);
            if a != b && a != 1 {
                return false;
            }
        }
        true
    }

    /// Splits the shape into `(batch_dims, last_two)` for batched matrix
    /// operations. Panics if rank < 2.
    pub fn split_batch(&self) -> (&[usize], [usize; 2]) {
        assert!(self.rank() >= 2, "need rank >= 2, got {self:?}");
        let r = self.rank();
        (&self.dims[..r - 2], [self.dims[r - 2], self.dims[r - 1]])
    }
}

fn dim_from_end(dims: &[usize], i: usize) -> usize {
    if i < dims.len() {
        dims[dims.len() - 1 - i]
    } else {
        1
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::from([5, 0, 2]).numel(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([7]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_math() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::from([3, 1, 5]);
        let b = Shape::from([4, 5]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[3, 4, 5]);

        let a = Shape::from([2, 3]);
        let b = Shape::from([3]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[2, 3]);

        let a = Shape::scalar();
        let b = Shape::from([2, 2]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[2, 2]);

        assert!(Shape::from([2, 3])
            .broadcast(&Shape::from([4, 3]))
            .is_none());
    }

    #[test]
    fn broadcasts_to_checks() {
        assert!(Shape::from([1, 5]).broadcasts_to(&Shape::from([3, 5])));
        assert!(Shape::from([5]).broadcasts_to(&Shape::from([3, 5])));
        assert!(Shape::scalar().broadcasts_to(&Shape::from([3, 5])));
        assert!(!Shape::from([2, 5]).broadcasts_to(&Shape::from([3, 5])));
        assert!(!Shape::from([3, 5, 1]).broadcasts_to(&Shape::from([3, 5])));
    }

    #[test]
    fn split_batch_dims() {
        let s = Shape::from([2, 3, 4, 5]);
        let (batch, mat) = s.split_batch();
        assert_eq!(batch, &[2, 3]);
        assert_eq!(mat, [4, 5]);
    }
}
