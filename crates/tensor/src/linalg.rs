//! Numeric kernels on [`NdArray`]: broadcast arithmetic, (batched) matrix
//! multiplication, axis permutation, concatenation, softmax and reductions.
//!
//! All kernels allocate their output; in-place variants exist only where the
//! training loop needs them ([`NdArray::add_assign`] and friends).
//!
//! # Parallelism and determinism
//!
//! The hot kernels (matmul family, softmax, layer norm, reductions) run on
//! the `hire-par` pool and dispatch through [`crate::simd`] to the best
//! instruction set the host supports (`scalar`/`sse2`/`avx2`, overridable
//! via `HIRE_ISA`). Results are **bit-exact for every thread count on every
//! ISA**: parallelism only splits *independent output regions* (matrix
//! rows, softmax rows, batch entries), and every reduction either stays
//! inside one region (a single register lane walking `k` in ascending
//! order) or combines fixed-size chunk partials in ascending chunk order
//! via `parallel_map_chunks`, whose chunk grid depends only on the problem
//! shape, never on the thread count. Across ISAs, scalar and sse2 are
//! bit-identical to [`matmul_reference`]; avx2 follows the documented
//! relaxation in the [`crate::simd`] module docs (FMA chains, lane-parallel
//! reductions — deterministic per ISA, oracle-bounded).
//!
//! Each hot kernel also has a public `*_with_isa` twin taking an explicit
//! [`Isa`], so the cross-check tests and `compute_bench` can exercise every
//! path in one process regardless of the process-global dispatch.

use crate::ndarray::NdArray;
use crate::quant::QuantizedTensor;
use crate::shape::Shape;
use crate::simd::{self, Isa};
use hire_par::SendPtr;

/// Element-wise binary op with numpy-style broadcasting.
pub fn broadcast_zip(a: &NdArray, b: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
    if a.shape() == b.shape() {
        return a.zip(b, f);
    }
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));
    let rank = out_shape.rank();
    let out_dims = out_shape.dims().to_vec();
    let a_strides = padded_broadcast_strides(a.shape(), rank, &out_dims);
    let b_strides = padded_broadcast_strides(b.shape(), rank, &out_dims);

    let n = out_shape.numel();
    let mut out = vec![0.0f32; n];
    let mut index = vec![0usize; rank];
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let mut a_off = 0usize;
    let mut b_off = 0usize;
    for slot in out.iter_mut() {
        *slot = f(a_data[a_off], b_data[b_off]);
        // Increment the multi-index, updating offsets incrementally.
        for axis in (0..rank).rev() {
            index[axis] += 1;
            a_off += a_strides[axis];
            b_off += b_strides[axis];
            if index[axis] < out_dims[axis] {
                break;
            }
            // carry: reset this axis
            a_off -= a_strides[axis] * out_dims[axis];
            b_off -= b_strides[axis] * out_dims[axis];
            index[axis] = 0;
        }
    }
    NdArray::from_vec(out_shape, out)
}

/// Broadcast-aware strides for `shape` viewed as an array of rank `rank`
/// with output dims `out_dims`; broadcast axes get stride 0.
fn padded_broadcast_strides(shape: &Shape, rank: usize, out_dims: &[usize]) -> Vec<usize> {
    let strides = shape.strides();
    let offset = rank - shape.rank();
    let mut out = vec![0usize; rank];
    for (i, &stride) in strides.iter().enumerate().take(shape.rank()) {
        let axis = offset + i;
        if shape.dims()[i] == out_dims[axis] {
            out[axis] = stride;
        } else {
            debug_assert_eq!(shape.dims()[i], 1, "invalid broadcast");
            out[axis] = 0;
        }
    }
    out
}

/// Reduces `grad` (shaped like a broadcast output) back to `target` by
/// summing over the broadcast axes. Used by autograd backward passes.
pub fn reduce_to_shape(grad: &NdArray, target: &Shape) -> NdArray {
    if grad.shape() == target {
        return grad.clone();
    }
    assert!(
        target.broadcasts_to(grad.shape()),
        "cannot reduce {} to {target}",
        grad.shape()
    );
    let g_rank = grad.shape().rank();
    let t_rank = target.rank();
    let offset = g_rank - t_rank;
    let g_dims = grad.shape().dims().to_vec();

    let mut out = NdArray::zeros(target.clone());
    let t_strides = target.strides();
    let n = grad.numel();
    let g_strides = grad.shape().strides();
    let out_slice_ptr = out.as_mut_slice();
    let g = grad.as_slice();
    for (flat, &grad_value) in g.iter().enumerate().take(n) {
        // Map the flat grad offset to a target offset, collapsing broadcast axes.
        let mut t_off = 0usize;
        for (axis, &t_stride) in t_strides.iter().enumerate().take(t_rank) {
            let g_axis = axis + offset;
            let ix = (flat / g_strides[g_axis]) % g_dims[g_axis];
            let t_ix = if target.dims()[axis] == 1 { 0 } else { ix };
            t_off += t_ix * t_stride;
        }
        out_slice_ptr[t_off] += grad_value;
    }
    out
}

/// 2-D matrix multiply: `[n,k] x [k,m] -> [n,m]`.
pub fn matmul2d(a: &NdArray, b: &NdArray) -> NdArray {
    matmul2d_with_isa(a, b, simd::active_isa())
}

/// [`matmul2d`] on an explicit ISA path (tests and benchmarks; `isa` must
/// be available on this host).
pub fn matmul2d_with_isa(a: &NdArray, b: &NdArray, isa: Isa) -> NdArray {
    assert_eq!(
        a.shape().rank(),
        2,
        "matmul2d lhs must be 2-D, got {}",
        a.shape()
    );
    assert_eq!(
        b.shape().rank(),
        2,
        "matmul2d rhs must be 2-D, got {}",
        b.shape()
    );
    let (n, k) = (a.dims()[0], a.dims()[1]);
    let (k2, m) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul2d inner dims mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; n * m];
    matmul_kernel_with_isa(a.as_slice(), b.as_slice(), &mut out, n, k, m, isa);
    NdArray::from_vec([n, m], out)
}

/// Rows of the output each parallel task owns in the matmul kernels. Two
/// register tiles per task: small enough that HIM-sized products (a few
/// dozen rows) split across every worker, large enough that a task's
/// arithmetic dwarfs the queue handoff. Chunk boundaries never change
/// per-row float chains, so this is a pure tuning knob — except in
/// [`matmul2d_tn`], whose `k`-partials fold per chunk, so its bits are
/// pinned to this exact value.
const ROW_BLOCK: usize = 8;
/// Rows per parallel task in the *forward* blocked matmul. A multiple of
/// every ISA's micro-kernel `MR` (scalar/sse2 4, avx2 6, avx512 8) so a
/// task's band splits into full register tiles instead of ragged
/// remainders. Each
/// output row's accumulator chain lives entirely inside one task, so this
/// too is a pure tuning knob that can never change bits.
const MM_ROW_BLOCK: usize = 24;
/// Below this many multiply-adds the packing/tiling overhead outweighs the
/// win; the kernel falls through to the small-product path. Dispatch
/// depends only on the problem shape, so it cannot perturb thread-count
/// invariance, and each ISA's small path runs the identical per-element
/// chain as its blocked path, so the threshold never changes bits either.
const BLOCK_THRESHOLD: usize = 16 * 1024;

/// Reference i-k-j loop: `out[n,m] += a[n,k] * b[k,m]`.
///
/// One f32 accumulator per output element, `k` strictly ascending — this
/// chain is the bit-exactness contract that [`matmul_kernel`]'s blocked path
/// reproduces. Public so tests can use it as an oracle and `compute_bench`
/// can measure the blocking speedup against it.
///
/// Deliberate behavior change vs the pre-blocking kernel: the old loop
/// skipped products where `a_ik == 0.0`. That skip is gone (the blocked
/// path cannot reproduce it bit-exactly, and IEEE semantics say
/// `0 * Inf = NaN`), so inputs mixing zeros in `a` with non-finite values
/// in `b` now propagate NaN instead of silently dropping those terms, and
/// sparse `a` no longer gets a fast path. For finite inputs the results
/// are bit-identical to the old kernel.
pub fn matmul_reference(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * m..(i + 1) * m];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            let b_row = &b[kk * m..(kk + 1) * m];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kj;
            }
        }
    }
}

/// `out[n,m] += a[n,k] * b[k,m]`, cache-blocked and parallel over row
/// blocks, on the process-wide dispatched ISA.
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    matmul_kernel_with_isa(a, b, out, n, k, m, simd::active_isa());
}

/// `out[n,m] += a[n,k] * b[k,m]`, cache-blocked and parallel over row
/// blocks.
///
/// `b` is packed once into zero-padded `panel_width(isa)`-wide column
/// panels (k-major inside each panel, so the micro-kernel streams it
/// contiguously), then row blocks of the output fan out across the pool.
/// Each output element still accumulates through a single register lane in
/// ascending-`k` order — on scalar/sse2 the identical floating-point chain
/// to [`matmul_reference`]; on avx2 the same chain with each step fused
/// into an FMA (the relaxation documented in [`crate::simd`]). Results are
/// bit-identical for any thread count and either size-dispatch path on a
/// fixed ISA.
fn matmul_kernel_with_isa(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
    isa: Isa,
) {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    if n * k * m <= BLOCK_THRESHOLD {
        return simd::matmul_small(isa, a, b, out, n, k, m);
    }
    let nr = simd::panel_width(isa);
    let m_panels = m.div_ceil(nr);
    let mut packed = vec![0.0f32; m_panels * k * nr];
    simd::pack_b(&mut packed, b, k, m, nr);
    let out_ptr = SendPtr(out.as_mut_ptr());
    hire_par::parallel_for(n, MM_ROW_BLOCK, |rows| {
        // SAFETY: chunks partition 0..n, so each task writes a disjoint
        // band of output rows.
        let out_rows = unsafe { out_ptr.slice_mut(rows.start * m, rows.len() * m) };
        simd::matmul_block_rows(
            isa,
            &a[rows.start * k..rows.end * k],
            &packed,
            out_rows,
            rows.len(),
            k,
            m,
        );
    });
}

/// `out[n,m] += a[n,k] * b[m,k]^T` over one band of rows: each output
/// element is a dot product of two contiguous rows, single f32 accumulator,
/// `k` ascending.
fn nt_block_rows(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * m..(i + 1) * m];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = *o;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// `out[k_range,m] += (a[n,k]^T * g[n,m])` restricted to the `k_range` band
/// of output rows (`out` is the band itself). The contraction axis is `i`
/// (the rows of `a`/`g`), walked in ascending order for every output
/// element.
fn tn_block_rows(
    a: &[f32],
    g: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
    k_range: std::ops::Range<usize>,
) {
    for i in 0..n {
        let g_row = &g[i * m..(i + 1) * m];
        for kk in k_range.clone() {
            let a_ik = a[i * k + kk];
            let out_row = &mut out[(kk - k_range.start) * m..(kk - k_range.start + 1) * m];
            for (o, &gv) in out_row.iter_mut().zip(g_row) {
                *o += a_ik * gv;
            }
        }
    }
}

/// `A * B^T` for 2-D `a: [n,k]` and `b: [m,k]` -> `[n,m]`, parallel over
/// row blocks. This is the `dA = g * B^T` product of the matmul backward,
/// computed without materializing the transpose.
pub fn matmul2d_nt(a: &NdArray, b: &NdArray) -> NdArray {
    assert_eq!(a.shape().rank(), 2, "matmul2d_nt lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul2d_nt rhs must be 2-D");
    let (n, k) = (a.dims()[0], a.dims()[1]);
    let (m, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul2d_nt inner dims mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; n * m];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    hire_par::parallel_for(n, ROW_BLOCK, |rows| {
        // SAFETY: row chunks are disjoint.
        let out_rows = unsafe { out_ptr.slice_mut(rows.start * m, rows.len() * m) };
        nt_block_rows(
            &a_s[rows.start * k..rows.end * k],
            b_s,
            out_rows,
            rows.len(),
            k,
            m,
        );
    });
    NdArray::from_vec([n, m], out)
}

/// `A^T * G` for 2-D `a: [n,k]` and `g: [n,m]` -> `[k,m]`, parallel over
/// bands of output rows (the `k` axis). This is the `dB = A^T * g` product
/// of the matmul backward, computed without materializing the transpose;
/// the contraction over `n` walks rows in ascending order for every output
/// element regardless of thread count.
pub fn matmul2d_tn(a: &NdArray, g: &NdArray) -> NdArray {
    assert_eq!(a.shape().rank(), 2, "matmul2d_tn lhs must be 2-D");
    assert_eq!(g.shape().rank(), 2, "matmul2d_tn rhs must be 2-D");
    let (n, k) = (a.dims()[0], a.dims()[1]);
    let (n2, m) = (g.dims()[0], g.dims()[1]);
    assert_eq!(
        n,
        n2,
        "matmul2d_tn outer dims mismatch: {} vs {}",
        a.shape(),
        g.shape()
    );
    let mut out = vec![0.0f32; k * m];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (a_s, g_s) = (a.as_slice(), g.as_slice());
    hire_par::parallel_for(k, ROW_BLOCK, |krange| {
        // SAFETY: k-bands are disjoint output rows.
        let out_band = unsafe { out_ptr.slice_mut(krange.start * m, krange.len() * m) };
        tn_block_rows(a_s, g_s, out_band, n, k, m, krange);
    });
    NdArray::from_vec([k, m], out)
}

/// Batched matrix multiply.
///
/// Accepts `a: [..., n, k]` and `b: [..., k, m]` where the batch dimensions
/// are identical, or where `b` is a single `[k, m]` matrix shared across the
/// batch. Returns `[..., n, m]`.
pub fn bmm(a: &NdArray, b: &NdArray) -> NdArray {
    if a.shape().rank() == 2 && b.shape().rank() == 2 {
        return matmul2d(a, b);
    }
    let (a_batch, [n, k]) = a.shape().split_batch();
    if b.shape().rank() == 2 {
        // Shared rhs: flatten the batch into rows.
        let (k2, m) = (b.dims()[0], b.dims()[1]);
        assert_eq!(
            k,
            k2,
            "bmm inner dims mismatch: {} vs {}",
            a.shape(),
            b.shape()
        );
        let rows: usize = a_batch.iter().product::<usize>() * n;
        let mut out = vec![0.0f32; rows * m];
        matmul_kernel(a.as_slice(), b.as_slice(), &mut out, rows, k, m);
        let mut dims = a_batch.to_vec();
        dims.push(n);
        dims.push(m);
        return NdArray::from_vec(dims, out);
    }
    let (b_batch, [k2, m]) = b.shape().split_batch();
    assert_eq!(
        a_batch,
        b_batch,
        "bmm batch dims mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    assert_eq!(
        k,
        k2,
        "bmm inner dims mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    let batch: usize = a_batch.iter().product();
    let mut out = vec![0.0f32; batch * n * m];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    // Parallel over the batch axis — MBA's n*m pair axis in HIM — with each
    // batch entry running the serial reference chain (nested parallelism
    // inside a pool task executes inline).
    hire_par::parallel_for(batch, 1, |bis| {
        for bi in bis {
            // SAFETY: each batch entry owns a disjoint output slab.
            let out_bi = unsafe { out_ptr.slice_mut(bi * n * m, n * m) };
            matmul_kernel(
                &a_s[bi * n * k..(bi + 1) * n * k],
                &b_s[bi * k * m..(bi + 1) * k * m],
                out_bi,
                n,
                k,
                m,
            );
        }
    });
    let mut dims = a_batch.to_vec();
    dims.push(n);
    dims.push(m);
    NdArray::from_vec(dims, out)
}

/// Batched [`matmul2d_nt`]: `a: [..., n, k] * b^T` where `b` is either
/// batched `[..., m, k]` or a single shared `[m, k]` matrix. Returns
/// `[..., n, m]`. Mirrors [`bmm`]'s accepted shapes for the backward pass
/// `dA = g * B^T`.
pub fn bmm_nt(a: &NdArray, b: &NdArray) -> NdArray {
    if a.shape().rank() == 2 && b.shape().rank() == 2 {
        return matmul2d_nt(a, b);
    }
    let (a_batch, [n, k]) = a.shape().split_batch();
    if b.shape().rank() == 2 {
        // Shared rhs: flatten the batch into rows of one 2-D product.
        let rows: usize = a_batch.iter().product::<usize>() * n;
        let flat = matmul2d_nt(&a.reshape([rows, k]), b);
        let mut dims = a_batch.to_vec();
        dims.push(n);
        dims.push(b.dims()[0]);
        return flat.reshaped(dims);
    }
    let (b_batch, [m, k2]) = b.shape().split_batch();
    assert_eq!(a_batch, b_batch, "bmm_nt batch dims mismatch");
    assert_eq!(k, k2, "bmm_nt inner dims mismatch");
    let batch: usize = a_batch.iter().product();
    let mut out = vec![0.0f32; batch * n * m];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    hire_par::parallel_for(batch, 1, |bis| {
        for bi in bis {
            // SAFETY: disjoint per-batch output slabs.
            let out_bi = unsafe { out_ptr.slice_mut(bi * n * m, n * m) };
            nt_block_rows(
                &a_s[bi * n * k..(bi + 1) * n * k],
                &b_s[bi * m * k..(bi + 1) * m * k],
                out_bi,
                n,
                k,
                m,
            );
        }
    });
    let mut dims = a_batch.to_vec();
    dims.push(n);
    dims.push(m);
    NdArray::from_vec(dims, out)
}

/// Batched [`matmul2d_tn`]: per-batch `a^T * g` for `a: [..., n, k]` and
/// `g: [..., n, m]` with identical batch dims -> `[..., k, m]`. The
/// backward pass `dB = A^T * g` when both operands are batched.
pub fn bmm_tn(a: &NdArray, g: &NdArray) -> NdArray {
    if a.shape().rank() == 2 && g.shape().rank() == 2 {
        return matmul2d_tn(a, g);
    }
    let (a_batch, [n, k]) = a.shape().split_batch();
    let (g_batch, [n2, m]) = g.shape().split_batch();
    assert_eq!(a_batch, g_batch, "bmm_tn batch dims mismatch");
    assert_eq!(n, n2, "bmm_tn outer dims mismatch");
    let batch: usize = a_batch.iter().product();
    let mut out = vec![0.0f32; batch * k * m];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let (a_s, g_s) = (a.as_slice(), g.as_slice());
    hire_par::parallel_for(batch, 1, |bis| {
        for bi in bis {
            // SAFETY: disjoint per-batch output slabs.
            let out_bi = unsafe { out_ptr.slice_mut(bi * k * m, k * m) };
            tn_block_rows(
                &a_s[bi * n * k..(bi + 1) * n * k],
                &g_s[bi * n * m..(bi + 1) * n * m],
                out_bi,
                n,
                k,
                m,
                0..k,
            );
        }
    });
    let mut dims = a_batch.to_vec();
    dims.push(k);
    dims.push(m);
    NdArray::from_vec(dims, out)
}

/// Permutes axes: `out[index] = a[index[perm]]` in numpy `transpose(perm)`
/// semantics — output axis `i` is input axis `perm[i]`.
pub fn permute(a: &NdArray, perm: &[usize]) -> NdArray {
    let rank = a.shape().rank();
    assert_eq!(perm.len(), rank, "perm rank mismatch");
    let mut seen = vec![false; rank];
    for &p in perm {
        assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
        seen[p] = true;
    }
    let in_dims = a.dims();
    let in_strides = a.shape().strides();
    let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
    // stride in the input for each output axis
    let strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();

    let n = a.numel();
    let mut out = vec![0.0f32; n];
    let src = a.as_slice();
    let mut index = vec![0usize; rank];
    let mut src_off = 0usize;
    for slot in out.iter_mut() {
        *slot = src[src_off];
        for axis in (0..rank).rev() {
            index[axis] += 1;
            src_off += strides[axis];
            if index[axis] < out_dims[axis] {
                break;
            }
            src_off -= strides[axis] * out_dims[axis];
            index[axis] = 0;
        }
    }
    NdArray::from_vec(out_dims, out)
}

/// Swaps the last two axes (batched matrix transpose).
pub fn transpose_last2(a: &NdArray) -> NdArray {
    let rank = a.shape().rank();
    assert!(rank >= 2, "transpose_last2 needs rank >= 2");
    let mut perm: Vec<usize> = (0..rank).collect();
    perm.swap(rank - 1, rank - 2);
    permute(a, &perm)
}

/// Inverse permutation: `inv[perm[i]] = i`.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Concatenates arrays along the last axis. All other dims must match.
pub fn concat_last(parts: &[&NdArray]) -> NdArray {
    assert!(!parts.is_empty(), "concat of zero arrays");
    let rank = parts[0].shape().rank();
    assert!(rank >= 1, "concat needs rank >= 1");
    let lead = &parts[0].dims()[..rank - 1];
    let mut last_total = 0usize;
    for p in parts {
        assert_eq!(p.shape().rank(), rank, "concat rank mismatch");
        assert_eq!(&p.dims()[..rank - 1], lead, "concat leading dims mismatch");
        last_total += p.dims()[rank - 1];
    }
    let rows: usize = lead.iter().product();
    let mut out = Vec::with_capacity(rows * last_total);
    for r in 0..rows {
        for p in parts {
            let w = p.dims()[rank - 1];
            out.extend_from_slice(&p.as_slice()[r * w..(r + 1) * w]);
        }
    }
    let mut dims = lead.to_vec();
    dims.push(last_total);
    NdArray::from_vec(dims, out)
}

/// Slices `[start, start+len)` of the last axis.
pub fn slice_last(a: &NdArray, start: usize, len: usize) -> NdArray {
    let rank = a.shape().rank();
    assert!(rank >= 1);
    let w = a.dims()[rank - 1];
    assert!(
        start + len <= w,
        "slice [{start}, {}) out of last dim {w}",
        start + len
    );
    let rows = a.numel() / w;
    let mut out = Vec::with_capacity(rows * len);
    for r in 0..rows {
        out.extend_from_slice(&a.as_slice()[r * w + start..r * w + start + len]);
    }
    let mut dims = a.dims().to_vec();
    dims[rank - 1] = len;
    NdArray::from_vec(dims, out)
}

/// Rows per parallel task for row-independent kernels: sized so each chunk
/// carries ~4k elements of work. Depends only on the row width, keeping
/// chunk boundaries thread-count independent.
fn row_grain(w: usize) -> usize {
    (4096 / w.max(1)).max(1)
}

/// Numerically stable softmax along the last axis, parallel over rows
/// (rows are independent, so any thread count produces identical bits).
pub fn softmax_last(a: &NdArray) -> NdArray {
    softmax_last_with_isa(a, simd::active_isa())
}

/// [`softmax_last`] on an explicit ISA path (tests and benchmarks; `isa`
/// must be available on this host). The per-row traversal (max, exp +
/// f64 sum, scale) lives in [`crate::simd`] so every ISA shares one
/// structure and one set of edge-case tests.
pub fn softmax_last_with_isa(a: &NdArray, isa: Isa) -> NdArray {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    let rank = a.shape().rank();
    assert!(rank >= 1, "softmax needs rank >= 1");
    let w = a.dims()[rank - 1];
    let rows = a.numel() / w.max(1);
    let mut out = vec![0.0f32; a.numel()];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let src = a.as_slice();
    hire_par::parallel_for(rows, row_grain(w), |rr| {
        // SAFETY: row chunks are disjoint.
        let chunk = unsafe { out_ptr.slice_mut(rr.start * w, rr.len() * w) };
        simd::softmax_rows(isa, &src[rr.start * w..rr.end * w], chunk, w);
    });
    NdArray::from_vec(a.shape().clone(), out)
}

/// Backward of [`softmax_last`]: `dx = y * (g - sum(g*y, last))` given the
/// forward output `y`. Parallel over rows; the per-row dot accumulates in
/// f64 over ascending `j` — the same chain as the serial loop it replaces
/// in `Tensor::softmax_last`.
pub fn softmax_backward_last(y: &NdArray, g: &NdArray) -> NdArray {
    assert_eq!(y.shape(), g.shape(), "softmax backward shape mismatch");
    let w = *y.dims().last().expect("softmax backward needs rank >= 1");
    let rows = y.numel() / w.max(1);
    let mut dx = vec![0.0f32; y.numel()];
    let dx_ptr = SendPtr(dx.as_mut_ptr());
    let (ys, gs) = (y.as_slice(), g.as_slice());
    hire_par::parallel_for(rows, row_grain(w), |rr| {
        // SAFETY: row chunks are disjoint.
        let chunk = unsafe { dx_ptr.slice_mut(rr.start * w, rr.len() * w) };
        for (ri, r) in rr.enumerate() {
            let yr = &ys[r * w..(r + 1) * w];
            let gr = &gs[r * w..(r + 1) * w];
            let dot: f64 = yr.iter().zip(gr).map(|(&a, &b)| (a * b) as f64).sum();
            let dot = dot as f32;
            let dst = &mut chunk[ri * w..(ri + 1) * w];
            for j in 0..w {
                dst[j] = yr[j] * (gr[j] - dot);
            }
        }
    });
    NdArray::from_vec(y.shape().clone(), dx)
}

/// Sum along the last axis: `[..., w] -> [...]`.
pub fn sum_last(a: &NdArray) -> NdArray {
    let rank = a.shape().rank();
    assert!(rank >= 1);
    let w = a.dims()[rank - 1];
    let rows = a.numel() / w.max(1);
    let mut out = vec![0.0f32; rows];
    for (r, o) in out.iter_mut().enumerate() {
        *o = a.as_slice()[r * w..(r + 1) * w]
            .iter()
            .map(|&x| x as f64)
            .sum::<f64>() as f32;
    }
    NdArray::from_vec(a.dims()[..rank - 1].to_vec(), out)
}

/// Mean along the last axis.
pub fn mean_last(a: &NdArray) -> NdArray {
    let rank = a.shape().rank();
    let w = a.dims()[rank - 1].max(1);
    let mut s = sum_last(a);
    s.scale_inplace(1.0 / w as f32);
    s
}

/// Applies a shared weight to the trailing feature axis without autograd:
/// `x: [..., d] x w: [d, k] -> [..., k]`. The no-grad mirror of
/// `Tensor::linear` — it flattens the leading axes into rows and runs the
/// same [`matmul2d`] kernel, so results are bit-identical to the tape path.
pub fn linear_nd(x: &NdArray, w: &NdArray) -> NdArray {
    let dims = x.dims().to_vec();
    let d = *dims.last().expect("linear_nd needs rank >= 1");
    assert_eq!(
        w.shape().rank(),
        2,
        "linear_nd weight must be 2-D, got {}",
        w.shape()
    );
    let rows = dims[..dims.len() - 1].iter().product::<usize>();
    let flat = x.reshape([rows, d]);
    let out = matmul2d(&flat, w);
    let mut out_dims = dims[..dims.len() - 1].to_vec();
    out_dims.push(w.dims()[1]);
    out.reshaped(out_dims)
}

/// Layer normalization over the last axis without autograd: the no-grad
/// mirror of `Tensor::layer_norm_last`'s forward pass. Mean and variance
/// accumulate in f64 with the identical operation order per row, and rows
/// are independent, so results are bit-identical to the tape path for any
/// thread count.
pub fn layer_norm_last_nd(x: &NdArray, gamma: &NdArray, beta: &NdArray, eps: f32) -> NdArray {
    layer_norm_last_nd_with_isa(x, gamma, beta, eps, simd::active_isa())
}

/// [`layer_norm_last_nd`] on an explicit ISA path (tests and benchmarks;
/// `isa` must be available on this host).
pub fn layer_norm_last_nd_with_isa(
    x: &NdArray,
    gamma: &NdArray,
    beta: &NdArray,
    eps: f32,
    isa: Isa,
) -> NdArray {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    let w = *x.dims().last().expect("layer_norm_last_nd needs rank >= 1");
    let rows = x.numel() / w.max(1);
    assert_eq!(gamma.dims(), &[w], "gamma must be [{w}]");
    assert_eq!(beta.dims(), &[w], "beta must be [{w}]");
    let mut y = vec![0.0f32; x.numel()];
    let y_ptr = SendPtr(y.as_mut_ptr());
    let xs = x.as_slice();
    let gs = gamma.as_slice();
    let bs = beta.as_slice();
    hire_par::parallel_for(rows, row_grain(w), |rr| {
        // SAFETY: row chunks are disjoint.
        let chunk = unsafe { y_ptr.slice_mut(rr.start * w, rr.len() * w) };
        for (ri, r) in rr.enumerate() {
            let row = &xs[r * w..(r + 1) * w];
            let (mean, istd) = simd::layer_norm_row_stats(isa, row, eps);
            let dst = &mut chunk[ri * w..(ri + 1) * w];
            simd::layer_norm_normalize_row(isa, row, mean, istd, gs, bs, dst, None);
        }
    });
    NdArray::from_vec(x.shape().clone(), y)
}

/// Forward pass of layer norm for the autograd tape: returns `(y, xhat,
/// inv_std)` with `xhat` the normalized input and `inv_std` one entry per
/// row. Parallel over rows with the same per-row chain as
/// [`layer_norm_last_nd`].
pub fn layer_norm_forward_last(
    x: &NdArray,
    gamma: &NdArray,
    beta: &NdArray,
    eps: f32,
) -> (NdArray, NdArray, Vec<f32>) {
    layer_norm_forward_last_with_isa(x, gamma, beta, eps, simd::active_isa())
}

/// [`layer_norm_forward_last`] on an explicit ISA path (tests and
/// benchmarks; `isa` must be available on this host).
pub fn layer_norm_forward_last_with_isa(
    x: &NdArray,
    gamma: &NdArray,
    beta: &NdArray,
    eps: f32,
    isa: Isa,
) -> (NdArray, NdArray, Vec<f32>) {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    let w = *x.dims().last().expect("layer_norm needs rank >= 1");
    let rows = x.numel() / w.max(1);
    assert_eq!(gamma.dims(), &[w], "gamma must be [{w}]");
    assert_eq!(beta.dims(), &[w], "beta must be [{w}]");
    let mut y = vec![0.0f32; x.numel()];
    let mut xhat = vec![0.0f32; x.numel()];
    let mut inv_std = vec![0.0f32; rows];
    let y_ptr = SendPtr(y.as_mut_ptr());
    let xh_ptr = SendPtr(xhat.as_mut_ptr());
    let is_ptr = SendPtr(inv_std.as_mut_ptr());
    let xs = x.as_slice();
    let gs = gamma.as_slice();
    let bs = beta.as_slice();
    hire_par::parallel_for(rows, row_grain(w), |rr| {
        // SAFETY: row chunks are disjoint in all three outputs.
        let y_c = unsafe { y_ptr.slice_mut(rr.start * w, rr.len() * w) };
        let xh_c = unsafe { xh_ptr.slice_mut(rr.start * w, rr.len() * w) };
        let is_c = unsafe { is_ptr.slice_mut(rr.start, rr.len()) };
        for (ri, r) in rr.enumerate() {
            let row = &xs[r * w..(r + 1) * w];
            let (mean, istd) = simd::layer_norm_row_stats(isa, row, eps);
            is_c[ri] = istd as f32;
            simd::layer_norm_normalize_row(
                isa,
                row,
                mean,
                istd,
                gs,
                bs,
                &mut y_c[ri * w..(ri + 1) * w],
                Some(&mut xh_c[ri * w..(ri + 1) * w]),
            );
        }
    });
    (
        NdArray::from_vec(x.shape().clone(), y),
        NdArray::from_vec(x.shape().clone(), xhat),
        inv_std,
    )
}

/// Backward pass of layer norm: returns `(dx, dgamma, dbeta)`.
///
/// `dx` rows are independent (disjoint writes). `dgamma`/`dbeta` reduce
/// *across* rows, so each fixed-size row chunk produces an f32 partial and
/// the partials fold in ascending chunk order — the chunk grid depends only
/// on `(rows, w)`, making the result bit-identical for every thread count.
pub fn layer_norm_backward_last(
    xhat: &NdArray,
    inv_std: &[f32],
    gamma: &NdArray,
    g: &NdArray,
) -> (NdArray, NdArray, NdArray) {
    layer_norm_backward_last_with_isa(xhat, inv_std, gamma, g, simd::active_isa())
}

/// [`layer_norm_backward_last`] on an explicit ISA path (tests and
/// benchmarks; `isa` must be available on this host).
pub fn layer_norm_backward_last_with_isa(
    xhat: &NdArray,
    inv_std: &[f32],
    gamma: &NdArray,
    g: &NdArray,
    isa: Isa,
) -> (NdArray, NdArray, NdArray) {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    let w = *xhat
        .dims()
        .last()
        .expect("layer_norm backward needs rank >= 1");
    let rows = xhat.numel() / w.max(1);
    assert_eq!(inv_std.len(), rows, "inv_std must have one entry per row");
    let gv = gamma.as_slice();
    let gs = g.as_slice();
    let xh = xhat.as_slice();
    let mut dx = vec![0.0f32; xhat.numel()];
    let dx_ptr = SendPtr(dx.as_mut_ptr());
    let partials = hire_par::parallel_map_chunks(rows, row_grain(w), |rr| {
        // SAFETY: row chunks are disjoint in dx.
        let dx_c = unsafe { dx_ptr.slice_mut(rr.start * w, rr.len() * w) };
        let mut dgamma = vec![0.0f32; w];
        let mut dbeta = vec![0.0f32; w];
        for (ri, r) in rr.enumerate() {
            simd::layer_norm_backward_row(
                isa,
                &xh[r * w..(r + 1) * w],
                inv_std[r],
                gv,
                &gs[r * w..(r + 1) * w],
                &mut dx_c[ri * w..(ri + 1) * w],
                &mut dgamma,
                &mut dbeta,
            );
        }
        (dgamma, dbeta)
    });
    let mut dgamma = vec![0.0f32; w];
    let mut dbeta = vec![0.0f32; w];
    for (dg, db) in partials {
        for j in 0..w {
            dgamma[j] += dg[j];
            dbeta[j] += db[j];
        }
    }
    (
        NdArray::from_vec(xhat.shape().clone(), dx),
        NdArray::from_vec([w], dgamma),
        NdArray::from_vec([w], dbeta),
    )
}

/// Elements per chunk for flat reductions/scans over parameter slices.
const FLAT_GRAIN: usize = 4096;

/// Zeroes NaN/±Inf entries in place, returning how many were zeroed.
/// Writes are element-disjoint, so any thread count produces the same
/// result.
pub fn sanitize_non_finite(xs: &mut [f32]) -> usize {
    sanitize_non_finite_with_isa(xs, simd::active_isa())
}

/// [`sanitize_non_finite`] on an explicit ISA path (tests and benchmarks;
/// `isa` must be available on this host). Element-wise, so every ISA
/// produces identical results.
pub fn sanitize_non_finite_with_isa(xs: &mut [f32], isa: Isa) -> usize {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    let ptr = SendPtr(xs.as_mut_ptr());
    let len = xs.len();
    hire_par::parallel_map_chunks(len, FLAT_GRAIN, |rr| {
        // SAFETY: element chunks are disjoint.
        let chunk = unsafe { ptr.slice_mut(rr.start, rr.len()) };
        simd::sanitize_chunk(isa, chunk)
    })
    .into_iter()
    .sum()
}

/// Sum of squares in f64 over fixed 4096-element chunks folded in ascending
/// chunk order — the deterministic parallel norm used by gradient clipping.
pub fn norm_sq_f64(xs: &[f32]) -> f64 {
    norm_sq_f64_with_isa(xs, simd::active_isa())
}

/// [`norm_sq_f64`] on an explicit ISA path (tests and benchmarks; `isa`
/// must be available on this host).
pub fn norm_sq_f64_with_isa(xs: &[f32], isa: Isa) -> f64 {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    hire_par::parallel_map_chunks(xs.len(), FLAT_GRAIN, |rr| simd::norm_sq_chunk(isa, &xs[rr]))
        .into_iter()
        .sum()
}

/// Gathers rows of a 2-D `table` `[v, f]` by `indices`, producing `[n, f]`.
pub fn gather_rows(table: &NdArray, indices: &[usize]) -> NdArray {
    assert_eq!(table.shape().rank(), 2, "gather_rows table must be 2-D");
    let (v, f) = (table.dims()[0], table.dims()[1]);
    let mut out = Vec::with_capacity(indices.len() * f);
    for &ix in indices {
        assert!(ix < v, "gather index {ix} out of range {v}");
        out.extend_from_slice(&table.as_slice()[ix * f..(ix + 1) * f]);
    }
    NdArray::from_vec([indices.len(), f], out)
}

/// Scatter-add of rows: `out[indices[i], :] += rows[i, :]` into a `[v, f]`
/// zero array. The backward of [`gather_rows`].
pub fn scatter_add_rows(rows: &NdArray, indices: &[usize], v: usize) -> NdArray {
    assert_eq!(rows.shape().rank(), 2);
    let f = rows.dims()[1];
    assert_eq!(rows.dims()[0], indices.len());
    let mut out = NdArray::zeros([v, f]);
    let dst = out.as_mut_slice();
    for (i, &ix) in indices.iter().enumerate() {
        let src = &rows.as_slice()[i * f..(i + 1) * f];
        for (d, &s) in dst[ix * f..(ix + 1) * f].iter_mut().zip(src) {
            *d += s;
        }
    }
    out
}

/// 2-D matmul against a quantized weight, dequantizing on the fly:
/// `a: [n,k] x w: [k,m] -> [n,m]`. The f32 activations never round-trip
/// through the compressed representation.
///
/// Each output element accumulates through a single f32 register in
/// ascending-`k` order — the identical chain to [`matmul_reference`] run
/// against `w.dequantize()` — so results are bit-exact for any thread
/// count and bit-identical to the dequantize-then-matmul reference. Each
/// weight row is dequantized once per task (not once per element), so the
/// decompression cost amortizes across the task's output rows.
pub fn matmul2d_dequant(a: &NdArray, w: &QuantizedTensor) -> NdArray {
    matmul2d_dequant_with_isa(a, w, simd::active_isa())
}

/// [`matmul2d_dequant`] on an explicit ISA path (tests and benchmarks;
/// `isa` must be available on this host). The accumulation runs the matmul
/// chain of `isa`, so the bit-identity with
/// `matmul2d_with_isa(a, w.dequantize(), isa)` holds per ISA.
pub fn matmul2d_dequant_with_isa(a: &NdArray, w: &QuantizedTensor, isa: Isa) -> NdArray {
    assert!(
        isa.is_available(),
        "ISA {} not available on this host",
        isa.label()
    );
    assert_eq!(
        a.shape().rank(),
        2,
        "matmul2d_dequant lhs must be 2-D, got {}",
        a.shape()
    );
    assert_eq!(w.dims().len(), 2, "matmul2d_dequant rhs must be 2-D");
    let (n, k) = (a.dims()[0], a.dims()[1]);
    let (k2, m) = (w.dims()[0], w.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul2d_dequant inner dims mismatch: {} vs [{k2}, {m}]",
        a.shape()
    );
    let mut out = vec![0.0f32; n * m];
    let out_ptr = SendPtr(out.as_mut_ptr());
    let a_s = a.as_slice();
    hire_par::parallel_for(n, ROW_BLOCK, |rows| {
        // SAFETY: chunks partition 0..n, so each task writes a disjoint
        // band of output rows.
        let out_rows = unsafe { out_ptr.slice_mut(rows.start * m, rows.len() * m) };
        let mut w_row = vec![0.0f32; m];
        for kk in 0..k {
            w.deq_row_into(kk, &mut w_row);
            for (ri, r) in rows.clone().enumerate() {
                let a_ik = a_s[r * k + kk];
                let dst = &mut out_rows[ri * m..(ri + 1) * m];
                simd::dequant_axpy(isa, a_ik, &w_row, dst);
            }
        }
    });
    NdArray::from_vec([n, m], out)
}

/// [`linear_nd`] against a quantized weight: `x: [..., d] x w: [d, k] ->
/// [..., k]`, dequantizing on the fly via [`matmul2d_dequant`].
pub fn linear_nd_dequant(x: &NdArray, w: &QuantizedTensor) -> NdArray {
    let dims = x.dims().to_vec();
    let d = *dims.last().expect("linear_nd_dequant needs rank >= 1");
    assert_eq!(w.dims().len(), 2, "linear_nd_dequant weight must be 2-D");
    let rows = dims[..dims.len() - 1].iter().product::<usize>();
    let flat = x.reshape([rows, d]);
    let out = matmul2d_dequant(&flat, w);
    let mut out_dims = dims[..dims.len() - 1].to_vec();
    out_dims.push(w.dims()[1]);
    out.reshaped(out_dims)
}

/// [`gather_rows`] from a quantized 2-D `table` `[v, f]`, producing an f32
/// `[n, f]` — the embedding-lookup path of the quantized tier.
pub fn gather_rows_dequant(table: &QuantizedTensor, indices: &[usize]) -> NdArray {
    assert_eq!(
        table.dims().len(),
        2,
        "gather_rows_dequant table must be 2-D"
    );
    let (v, f) = (table.dims()[0], table.dims()[1]);
    let mut out = vec![0.0f32; indices.len() * f];
    for (i, &ix) in indices.iter().enumerate() {
        assert!(ix < v, "gather index {ix} out of range {v}");
        table.deq_row_into(ix, &mut out[i * f..(i + 1) * f]);
    }
    NdArray::from_vec([indices.len(), f], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_add_matrix_vector() {
        let a = NdArray::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec([3], vec![10., 20., 30.]);
        let c = broadcast_zip(&a, &b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn broadcast_with_ones_axis() {
        let a = NdArray::from_vec([2, 1], vec![1., 2.]);
        let b = NdArray::from_vec([1, 3], vec![10., 20., 30.]);
        let c = broadcast_zip(&a, &b, |x, y| x * y);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[10., 20., 30., 20., 40., 60.]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = NdArray::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let s = NdArray::scalar(2.0);
        let c = broadcast_zip(&a, &s, |x, y| x * y);
        assert_eq!(c.as_slice(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let g = NdArray::ones([2, 3]);
        let r = reduce_to_shape(&g, &Shape::from([3]));
        assert_eq!(r.as_slice(), &[2., 2., 2.]);
        let r2 = reduce_to_shape(&g, &Shape::from([2, 1]));
        assert_eq!(r2.as_slice(), &[3., 3.]);
        let r3 = reduce_to_shape(&g, &Shape::scalar());
        assert_eq!(r3.item(), 6.0);
    }

    #[test]
    fn matmul_2d_known_values() {
        let a = NdArray::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul2d(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = NdArray::from_vec([2, 2], vec![3., 1., 4., 1.]);
        let c = matmul2d(&a, &NdArray::eye(2));
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn bmm_batched_matches_per_matrix() {
        let a = NdArray::from_vec([2, 2, 3], (0..12).map(|x| x as f32).collect());
        let b = NdArray::from_vec([2, 3, 2], (0..12).map(|x| (x as f32) * 0.5).collect());
        let c = bmm(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 2]);
        // check batch 1 manually against matmul2d
        let a1 = NdArray::from_vec([2, 3], a.as_slice()[6..12].to_vec());
        let b1 = NdArray::from_vec([3, 2], b.as_slice()[6..12].to_vec());
        let c1 = matmul2d(&a1, &b1);
        assert_eq!(&c.as_slice()[4..8], c1.as_slice());
    }

    #[test]
    fn bmm_shared_rhs() {
        let a = NdArray::from_vec([2, 2, 3], (0..12).map(|x| x as f32).collect());
        let w = NdArray::from_vec([3, 4], (0..12).map(|x| x as f32 * 0.1).collect());
        let c = bmm(&a, &w);
        assert_eq!(c.dims(), &[2, 2, 4]);
        let a0 = NdArray::from_vec([2, 3], a.as_slice()[..6].to_vec());
        let expect = matmul2d(&a0, &w);
        assert!(NdArray::from_vec([2, 4], c.as_slice()[..8].to_vec()).allclose(&expect, 1e-6));
    }

    #[test]
    fn permute_roundtrip() {
        let a = NdArray::from_vec([2, 3, 4], (0..24).map(|x| x as f32).collect());
        let p = permute(&a, &[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), a.at(&[1, 2, 3]));
        let back = permute(&p, &inverse_permutation(&[2, 0, 1]));
        assert_eq!(back.as_slice(), a.as_slice());
    }

    #[test]
    fn transpose_last2_matrix() {
        let a = NdArray::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = transpose_last2(&a);
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = NdArray::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = NdArray::from_vec([2, 3], vec![5., 6., 7., 8., 9., 10.]);
        let c = concat_last(&[&a, &b]);
        assert_eq!(c.dims(), &[2, 5]);
        assert_eq!(c.as_slice(), &[1., 2., 5., 6., 7., 3., 4., 8., 9., 10.]);
        assert_eq!(slice_last(&c, 0, 2).as_slice(), a.as_slice());
        assert_eq!(slice_last(&c, 2, 3).as_slice(), b.as_slice());
    }

    #[test]
    fn linear_nd_matches_flattened_matmul() {
        let x = NdArray::from_vec([2, 2, 3], (0..12).map(|v| v as f32 * 0.25).collect());
        let w = NdArray::from_vec([3, 4], (0..12).map(|v| v as f32 * 0.1 - 0.5).collect());
        let y = linear_nd(&x, &w);
        assert_eq!(y.dims(), &[2, 2, 4]);
        let flat = matmul2d(&x.reshape([4, 3]), &w);
        assert_eq!(y.as_slice(), flat.as_slice());
    }

    #[test]
    fn layer_norm_last_nd_normalizes_rows() {
        let x = NdArray::from_vec([2, 4], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let gamma = NdArray::ones([4]);
        let beta = NdArray::zeros([4]);
        let y = layer_norm_last_nd(&x, &gamma, &beta, 1e-5);
        let mean: f32 = y.as_slice()[..4].iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!(y.as_slice()[4..].iter().all(|&v| v.abs() < 1e-2));
        // affine params shift and scale
        let y2 = layer_norm_last_nd(&x, &NdArray::full([4], 2.0), &NdArray::full([4], 1.0), 1e-5);
        for (a, b) in y.as_slice().iter().zip(y2.as_slice()) {
            assert!((a * 2.0 + 1.0 - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = NdArray::from_vec([2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = softmax_last(&a);
        for r in 0..2 {
            let sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // large-value stability
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
        // monotone within row
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn sum_mean_last() {
        let a = NdArray::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(sum_last(&a).as_slice(), &[6., 15.]);
        assert_eq!(mean_last(&a).as_slice(), &[2., 5.]);
    }

    #[test]
    fn gather_scatter_are_adjoint() {
        let table = NdArray::from_vec([4, 2], (0..8).map(|x| x as f32).collect());
        let idx = [2usize, 0, 2];
        let g = gather_rows(&table, &idx);
        assert_eq!(g.as_slice(), &[4., 5., 0., 1., 4., 5.]);
        let rows = NdArray::ones([3, 2]);
        let s = scatter_add_rows(&rows, &idx, 4);
        assert_eq!(s.as_slice(), &[1., 1., 0., 0., 2., 2., 0., 0.]);
    }

    /// Deterministic pseudo-random fill (no rand dependency in this crate).
    fn lcg_fill(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matmul_dequant_is_bit_exact_vs_dequantize_then_matmul() {
        use crate::quant::QuantMode;
        // Above and below BLOCK_THRESHOLD, both quant modes.
        for (n, k, m) in [(3usize, 5usize, 4usize), (40, 48, 40)] {
            let a = NdArray::from_vec([n, k], lcg_fill(n * k, 7));
            let w = NdArray::from_vec([k, m], lcg_fill(k * m, 11));
            for mode in [QuantMode::Int8, QuantMode::F16] {
                let q = QuantizedTensor::quantize(&w, mode);
                let got = matmul2d_dequant(&a, &q);
                let want = matmul2d(&a, &q.dequantize());
                assert_eq!(got.as_slice(), want.as_slice(), "{mode:?} {n}x{k}x{m}");
            }
        }
    }

    #[test]
    fn linear_and_gather_dequant_match_f32_reference() {
        use crate::quant::QuantMode;
        let x = NdArray::from_vec([2, 3, 4], lcg_fill(24, 3));
        let w = NdArray::from_vec([4, 5], lcg_fill(20, 5));
        let q = QuantizedTensor::quantize(&w, QuantMode::F16);
        let got = linear_nd_dequant(&x, &q);
        let want = linear_nd(&x, &q.dequantize());
        assert_eq!(got.dims(), &[2, 3, 5]);
        assert_eq!(got.as_slice(), want.as_slice());

        let table = NdArray::from_vec([6, 3], lcg_fill(18, 9));
        let qt = QuantizedTensor::quantize(&table, QuantMode::Int8);
        let idx = [4usize, 0, 4, 5];
        let g = gather_rows_dequant(&qt, &idx);
        let gw = gather_rows(&qt.dequantize(), &idx);
        assert_eq!(g.as_slice(), gw.as_slice());
    }
}
