//! Runtime-dispatched SIMD micro-kernels for the linalg hot paths.
//!
//! The compute-heavy kernels in [`crate::linalg`] (blocked matmul, softmax,
//! layer norm, the flat sanitize/norm scans, and the dequantize-on-the-fly
//! matmul) each exist in up to three implementations selected once per
//! process by [`active_isa`]:
//!
//! | ISA      | selected when                           | numeric contract |
//! |----------|-----------------------------------------|------------------|
//! | `scalar` | always available (the reference chains) | bit-exact with `matmul_reference` and the pre-SIMD kernels |
//! | `sse2`   | x86-64 with SSE2                        | **bit-identical to `scalar`** (vector lanes are independent output elements; every step is a mul-then-add with the same per-op rounding as the scalar chain) |
//! | `avx2`   | x86-64 with AVX2 **and** FMA            | per-ISA deterministic, oracle-bounded (see below) |
//! | `avx512` | x86-64 with AVX-512F (plus AVX2+FMA)    | **bit-identical to `avx2`**: a wider matmul micro-kernel running the same per-element FMA chains; every other kernel dispatches to the avx2 implementation |
//!
//! # The avx2 relaxation
//!
//! The AVX2 matmul micro-kernel fuses each `a_ik * b_kj + acc` step into a
//! single FMA (one rounding instead of two) and the softmax/layer-norm/norm
//! reductions accumulate in vector lanes that fold in a fixed order that
//! differs from the serial left-to-right chain. Results on the avx2 path are
//! therefore *not* bit-identical to the scalar path — they are typically
//! slightly **more** accurate — but they are:
//!
//! 1. **deterministic per ISA**: the same inputs produce the same bits on
//!    every run, at every `HIRE_THREADS` count (parallelism still only
//!    splits independent output regions; each output element's chain is
//!    fixed by the problem shape and the dispatched ISA);
//! 2. **oracle-bounded**: within a documented abs/rel tolerance of the
//!    f64 reference (pinned by `tests/isa_dispatch.rs`);
//! 3. **IEEE-faithful**: `0 * Inf` still produces NaN on every vector path
//!    (FMA and vector multiplies follow the same IEEE-754 invalid-operation
//!    rules as the scalar ops — see `tests/ieee_semantics.rs`).
//!
//! See DESIGN.md §16 for the full contract and the register layout of the
//! micro-kernels.
//!
//! # Dispatch
//!
//! [`active_isa`] picks the best ISA the host supports, once, on first use.
//! The `HIRE_ISA` environment variable (`scalar` | `sse2` | `avx2` |
//! `avx512`) forces a
//! specific path for testing and benchmarking; requesting an ISA the host
//! cannot run is a hard error (a benchmark silently falling back would
//! report numbers for the wrong kernel). Tests that need several ISAs in
//! one process use the explicit `*_with_isa` entry points in
//! [`crate::linalg`] instead of the env knob.

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;
pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod sse2;

/// Instruction-set architecture a kernel can be dispatched to.
///
/// Ordered by preference: `Scalar < Sse2 < Avx2 < Avx512`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Portable Rust loops — the reference chains every other path is
    /// measured against. Always available.
    Scalar,
    /// SSE2 intrinsics, 4 f32 lanes. Bit-identical to `Scalar`.
    Sse2,
    /// AVX2 + FMA intrinsics, 8 f32 lanes. Per-ISA deterministic with a
    /// documented relaxation (module docs).
    Avx2,
    /// AVX-512F, 16 f32 lanes for the matmul micro-kernel, avx2 for
    /// everything else. Bit-identical to `Avx2` (module docs).
    Avx512,
}

impl Isa {
    /// Stable lowercase label used by `HIRE_ISA`, bench reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Whether the current host can execute this path.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
            #[cfg(target_arch = "x86_64")]
            // The non-matmul kernels of this tier run the avx2 paths, so
            // avx2+fma must be present too (they are on every avx512f CPU).
            Isa::Avx512 => {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx2")
                    && is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every ISA the current host can execute, in ascending preference
    /// order (always starts with [`Isa::Scalar`]). The ISA cross-check
    /// suite iterates this to exercise each path in one process.
    pub fn available() -> Vec<Isa> {
        [Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512]
            .into_iter()
            .filter(|isa| isa.is_available())
            .collect()
    }

    fn parse(value: &str) -> Option<Isa> {
        match value.to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "sse2" => Some(Isa::Sse2),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            _ => None,
        }
    }
}

static ACTIVE: OnceLock<Isa> = OnceLock::new();

/// The ISA every dispatched kernel runs on in this process.
///
/// Resolved once on first use: the `HIRE_ISA` env override if set (an
/// unknown or unsupported value panics — a forced benchmark run must never
/// silently measure a different kernel), otherwise the best available path.
pub fn active_isa() -> Isa {
    *ACTIVE.get_or_init(|| match std::env::var("HIRE_ISA") {
        Ok(value) => {
            let isa = Isa::parse(&value).unwrap_or_else(|| {
                panic!("HIRE_ISA={value:?} is not one of scalar|sse2|avx2|avx512")
            });
            assert!(
                isa.is_available(),
                "HIRE_ISA={} requested but this host cannot run it (available: {:?})",
                isa.label(),
                Isa::available()
                    .iter()
                    .map(|i| i.label())
                    .collect::<Vec<_>>(),
            );
            isa
        }
        Err(_) => *Isa::available().last().expect("scalar is always available"),
    })
}

// ---------------------------------------------------------------------------
// Matmul micro-kernel dispatch
// ---------------------------------------------------------------------------

/// Packed-`b` panel width (`NR`) for `isa` — how many output columns one
/// micro-kernel tile covers. The packing layout in `linalg::matmul_kernel`
/// is parameterized on this, so each ISA gets panels its registers fill
/// exactly (scalar/sse2: 8 = two SSE vectors; avx2: 16 = two YMM vectors;
/// avx512: 32 = two ZMM vectors).
pub const fn panel_width(isa: Isa) -> usize {
    match isa {
        Isa::Scalar | Isa::Sse2 => 8,
        Isa::Avx2 => 16,
        Isa::Avx512 => 32,
    }
}

/// Packs `b: [k, m]` into zero-padded `nr`-wide column panels, k-major
/// inside each panel, so the micro-kernel streams one contiguous `nr`-wide
/// row per `k` step. Identical values land in identical lanes on every
/// ISA; only `nr` differs. `packed` must be zero-initialized by the caller
/// — only live columns are written, the ragged tail panel's padding is the
/// zeros already there.
pub fn pack_b(packed: &mut [f32], b: &[f32], k: usize, m: usize, nr: usize) {
    debug_assert_eq!(packed.len(), m.div_ceil(nr) * k * nr);
    // Per panel, each k-step is one contiguous `jw`-wide copy; the zero
    // padding of the last panel's ragged tail is the (zero-initialized)
    // allocation itself.
    for jp in 0..m.div_ceil(nr) {
        let j0 = jp * nr;
        let jw = (m - j0).min(nr);
        let base = jp * k * nr;
        for kk in 0..k {
            packed[base + kk * nr..base + kk * nr + jw]
                .copy_from_slice(&b[kk * m + j0..kk * m + j0 + jw]);
        }
    }
}

/// Micro-kernel over one band of output rows fed from packed `b` panels:
/// `out[n,m] += a[n,k] * panels`. Each output element accumulates through
/// a single register lane walking `k` in ascending order; scalar/sse2 use
/// mul-then-add (the `matmul_reference` chain), avx2 fuses each step into
/// an FMA.
///
/// `packed` must have been produced by [`pack_b`] with
/// `nr == panel_width(isa)`.
pub fn matmul_block_rows(
    isa: Isa,
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
) {
    match isa {
        Isa::Scalar => scalar::matmul_block_rows(a, packed, out, n, k, m),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => sse2::matmul_block_rows(a, packed, out, n, k, m),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only dispatched when avx2+fma are detected
        // (is_available checked at ISA resolution / by the caller of the
        // _with_isa APIs).
        Isa::Avx2 => unsafe { avx2::matmul_block_rows(a, packed, out, n, k, m) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx512 is only dispatched when avx512f is detected.
        Isa::Avx512 => unsafe { avx512::matmul_block_rows(a, packed, out, n, k, m) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::matmul_block_rows(a, packed, out, n, k, m),
    }
}

/// Small-product path (below the blocking threshold): unpacked, serial.
/// Runs the *same per-element chain* as the blocked path of the same ISA,
/// so the size threshold never changes result bits — batched and single
/// encodes of the same rows agree bitwise whichever path they take.
pub fn matmul_small(isa: Isa, a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    match isa {
        // The scalar reference loop *is* the sse2 chain (mul-then-add per
        // lane, ascending k), so both share it.
        Isa::Scalar | Isa::Sse2 => crate::linalg::matmul_reference(a, b, out, n, k, m),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available. The
        // avx512 tier shares the avx2 small path — same bits either way.
        Isa::Avx2 | Isa::Avx512 => unsafe { avx2::matmul_small(a, b, out, n, k, m) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => crate::linalg::matmul_reference(a, b, out, n, k, m),
    }
}

// ---------------------------------------------------------------------------
// Softmax / layer-norm row helpers
// ---------------------------------------------------------------------------

/// Softmax over `rows` consecutive rows of width `w`: `dst = softmax(src)`
/// per row. One traversal structure shared by every ISA (max, exp+sum,
/// scale — see [`scalar::softmax_row`]); avx2 substitutes a vectorized
/// polynomial `exp` and lane-parallel reductions.
pub fn softmax_rows(isa: Isa, src: &[f32], dst: &mut [f32], w: usize) {
    debug_assert_eq!(src.len(), dst.len());
    if w == 0 {
        return;
    }
    match isa {
        Isa::Scalar | Isa::Sse2 => {
            for (s, d) in src.chunks_exact(w).zip(dst.chunks_exact_mut(w)) {
                scalar::softmax_row(s, d);
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe {
            for (s, d) in src.chunks_exact(w).zip(dst.chunks_exact_mut(w)) {
                avx2::softmax_row(s, d);
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => {
            for (s, d) in src.chunks_exact(w).zip(dst.chunks_exact_mut(w)) {
                scalar::softmax_row(s, d);
            }
        }
    }
}

/// Per-row mean and inverse standard deviation in f64 — the canonical
/// statistics chain shared by the layer-norm tape forward, no-grad forward
/// and backward. The avx2 path accumulates in four f64 lanes (relaxed
/// order); scalar/sse2 keep the serial left-to-right sum.
pub fn layer_norm_row_stats(isa: Isa, row: &[f32], eps: f32) -> (f64, f64) {
    match isa {
        Isa::Scalar | Isa::Sse2 => scalar::layer_norm_row_stats(row, eps),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe { avx2::layer_norm_row_stats(row, eps) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::layer_norm_row_stats(row, eps),
    }
}

/// Normalizes one row given its statistics: `y = xhat * gamma + beta` with
/// `xhat = (x - mean) * istd` computed in f64. Element-wise — given equal
/// `(mean, istd)` every ISA produces identical bits; only the statistics
/// reduction above is relaxed on avx2. `xhat_out`, when provided, receives
/// the normalized values (the tape forward saves them for backward).
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_normalize_row(
    isa: Isa,
    row: &[f32],
    mean: f64,
    istd: f64,
    gamma: &[f32],
    beta: &[f32],
    y: &mut [f32],
    xhat_out: Option<&mut [f32]>,
) {
    match isa {
        Isa::Scalar | Isa::Sse2 => {
            scalar::layer_norm_normalize_row(row, mean, istd, gamma, beta, y, xhat_out)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe {
            avx2::layer_norm_normalize_row(row, mean, istd, gamma, beta, y, xhat_out)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::layer_norm_normalize_row(row, mean, istd, gamma, beta, y, xhat_out),
    }
}

/// Layer-norm backward over one row: writes `dx`, accumulates `dgamma` and
/// `dbeta` (callers pass per-chunk partial buffers that fold in ascending
/// chunk order exactly as before). The per-row `sum_dy`/`sum_dy·xhat`
/// reductions relax to lane-parallel f64 on avx2; the element-wise `dx`
/// arithmetic keeps the scalar operation order on every ISA.
#[allow(clippy::too_many_arguments)]
pub fn layer_norm_backward_row(
    isa: Isa,
    xhat: &[f32],
    istd: f32,
    gamma: &[f32],
    g: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    match isa {
        Isa::Scalar | Isa::Sse2 => {
            scalar::layer_norm_backward_row(xhat, istd, gamma, g, dx, dgamma, dbeta)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe {
            avx2::layer_norm_backward_row(xhat, istd, gamma, g, dx, dgamma, dbeta)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::layer_norm_backward_row(xhat, istd, gamma, g, dx, dgamma, dbeta),
    }
}

// ---------------------------------------------------------------------------
// Flat scans
// ---------------------------------------------------------------------------

/// Zeroes NaN/±Inf entries in `xs`, returning the count. Element-wise and
/// therefore bit-exact on every ISA (the avx2 path tests the exponent bits
/// of 8 lanes at a time and blends zeros in).
pub fn sanitize_chunk(isa: Isa, xs: &mut [f32]) -> usize {
    match isa {
        Isa::Scalar | Isa::Sse2 => scalar::sanitize_chunk(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe { avx2::sanitize_chunk(xs) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::sanitize_chunk(xs),
    }
}

/// Sum of squares of one chunk in f64. Scalar/sse2 keep the serial
/// ascending chain; avx2 accumulates in four f64 lanes folded in a fixed
/// order (relaxed, oracle-bounded). Each f32 squares exactly in f64 (24-bit
/// mantissas), so the only rounding on any path is in the additions.
pub fn norm_sq_chunk(isa: Isa, xs: &[f32]) -> f64 {
    match isa {
        Isa::Scalar | Isa::Sse2 => scalar::norm_sq_chunk(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe { avx2::norm_sq_chunk(xs) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::norm_sq_chunk(xs),
    }
}

// ---------------------------------------------------------------------------
// Dequantize-on-the-fly matmul pieces
// ---------------------------------------------------------------------------

/// `dst[j] += a_ik * w_row[j]` — the inner update of the dequantizing
/// matmul. Runs the matmul chain of `isa` (mul-then-add on scalar/sse2,
/// FMA on avx2), so `matmul2d_dequant` stays bit-identical to
/// `matmul2d(a, w.dequantize())` *on the same ISA*.
pub fn dequant_axpy(isa: Isa, a_ik: f32, w_row: &[f32], dst: &mut [f32]) {
    match isa {
        Isa::Scalar => scalar::axpy(a_ik, w_row, dst),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => sse2::axpy(a_ik, w_row, dst),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe { avx2::axpy(a_ik, w_row, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::axpy(a_ik, w_row, dst),
    }
}

/// Dequantizes one int8 row: `out[j] = q[j] as f32 * scale`. The integer
/// widening and single multiply are exact per element, so every ISA
/// produces identical bits; avx2 just converts 8 lanes at a time.
pub fn dequant_row_i8(isa: Isa, qs: &[i8], scale: f32, out: &mut [f32]) {
    match isa {
        Isa::Scalar | Isa::Sse2 => scalar::dequant_row_i8(qs, scale, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2/Avx512 dispatch implies avx2+fma are available.
        Isa::Avx2 | Isa::Avx512 => unsafe { avx2::dequant_row_i8(qs, scale, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::dequant_row_i8(qs, scale, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(Isa::Scalar.is_available());
        assert_eq!(Isa::available()[0], Isa::Scalar);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for isa in [Isa::Scalar, Isa::Sse2, Isa::Avx2, Isa::Avx512] {
            assert_eq!(Isa::parse(isa.label()), Some(isa));
            assert_eq!(Isa::parse(&isa.label().to_uppercase()), Some(isa));
        }
        assert_eq!(Isa::parse("avx1024"), None);
        assert_eq!(Isa::parse("neon"), None);
    }

    #[test]
    fn active_isa_is_stable_and_available() {
        let first = active_isa();
        assert!(first.is_available());
        assert_eq!(active_isa(), first, "dispatch must resolve exactly once");
    }

    #[test]
    fn panel_widths_fit_register_files() {
        assert_eq!(panel_width(Isa::Scalar), 8);
        assert_eq!(panel_width(Isa::Sse2), 8);
        assert_eq!(panel_width(Isa::Avx2), 16);
        assert_eq!(panel_width(Isa::Avx512), 32);
    }
}
