//! AVX2+FMA micro-kernels — 8 f32 lanes, fused multiply-add.
//!
//! This is the fast tier. Its numeric contract (the "avx2 relaxation",
//! DESIGN.md §16) differs from scalar/sse2 in exactly two ways:
//!
//! 1. **FMA**: every matmul accumulation step `acc + a*b` becomes
//!    `fma(a, b, acc)` — one rounding instead of two. The chain still
//!    walks `k` in ascending order with a single accumulator lane per
//!    output element, so results are deterministic for any thread count;
//!    they are just (slightly more accurate) different bits than scalar.
//! 2. **Lane-parallel reductions**: softmax sums, layer-norm statistics
//!    and `norm_sq` accumulate in four f64 lanes folded in a fixed order,
//!    not one serial left-to-right chain.
//!
//! Everything element-wise (sanitize, dequantization, the normalize and
//! `dx` arithmetic of layer norm, the final softmax scale) performs the
//! identical per-element IEEE ops as the scalar path and produces
//! identical bits given identical inputs.
//!
//! The `exp` used by softmax is a degree-7 polynomial (Cephes-style
//! range reduction `x = n·ln2 + r`, `|r| ≤ ln2/2`) accurate to ~1 ulp;
//! tails of a row run a scalar mirror of the *same* polynomial so every
//! element of a row sees the same function regardless of lane position.
//! Inputs below −87.34 flush to 0 where libm's `expf` would produce a
//! subnormal ≤ 6e−39 — after normalization the difference is far inside
//! the documented oracle bound.
//!
//! Register layout of the matmul micro-kernel: `MR=6` rows × `NR=16`
//! columns = twelve YMM accumulators held across the whole `k` walk; each
//! `k` step issues two panel loads, six broadcasts and twelve FMAs. Twelve
//! independent accumulator chains cover the FMA latency×throughput product
//! (4–5 cycles × 2 ports) that an 8-chain 4×16 tile only just reaches.

use std::arch::x86_64::*;

/// Rows per register tile.
pub const MR: usize = 6;
/// Columns per register tile (= `panel_width(Avx2)`, two YMM vectors).
pub const NR: usize = 16;

// -------------------------------------------------------------------------
// Matmul
// -------------------------------------------------------------------------

/// Micro-kernel over one band of rows fed from `NR`-wide packed panels:
/// `out[n,m] += a[n,k] * panels`, FMA chain per output lane.
#[target_feature(enable = "avx2,fma")]
pub fn matmul_block_rows(a: &[f32], packed: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    let m_panels = m.div_ceil(NR);
    let mut i0 = 0;
    while i0 < n {
        let rows = (n - i0).min(MR);
        for jp in 0..m_panels {
            let j0 = jp * NR;
            let jw = (m - j0).min(NR);
            let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
            if rows == MR && jw == NR {
                full_tile(a, panel, out, i0, k, m, j0);
            } else {
                edge_tile(a, panel, out, i0, rows, k, m, j0, jw);
            }
        }
        i0 += rows;
    }
}

/// 6×16 tile with all twelve accumulators named so they provably live in
/// registers across the `k` loop (12 acc + 2 panel + 1 broadcast = 15 of
/// the 16 YMM registers).
#[target_feature(enable = "avx2,fma")]
fn full_tile(a: &[f32], panel: &[f32], out: &mut [f32], i0: usize, k: usize, m: usize, j0: usize) {
    // SAFETY: caller guarantees rows i0..i0+MR and columns j0..j0+NR are in
    // bounds of `out`, `a` holds rows i0..i0+MR of width k, and `panel`
    // holds k*NR packed values.
    unsafe {
        let o = out.as_mut_ptr();
        let mut acc00 = _mm256_loadu_ps(o.add(i0 * m + j0));
        let mut acc01 = _mm256_loadu_ps(o.add(i0 * m + j0 + 8));
        let mut acc10 = _mm256_loadu_ps(o.add((i0 + 1) * m + j0));
        let mut acc11 = _mm256_loadu_ps(o.add((i0 + 1) * m + j0 + 8));
        let mut acc20 = _mm256_loadu_ps(o.add((i0 + 2) * m + j0));
        let mut acc21 = _mm256_loadu_ps(o.add((i0 + 2) * m + j0 + 8));
        let mut acc30 = _mm256_loadu_ps(o.add((i0 + 3) * m + j0));
        let mut acc31 = _mm256_loadu_ps(o.add((i0 + 3) * m + j0 + 8));
        let mut acc40 = _mm256_loadu_ps(o.add((i0 + 4) * m + j0));
        let mut acc41 = _mm256_loadu_ps(o.add((i0 + 4) * m + j0 + 8));
        let mut acc50 = _mm256_loadu_ps(o.add((i0 + 5) * m + j0));
        let mut acc51 = _mm256_loadu_ps(o.add((i0 + 5) * m + j0 + 8));
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(pp.add(kk * NR));
            let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
            let a0 = _mm256_set1_ps(*ap.add(i0 * k + kk));
            acc00 = _mm256_fmadd_ps(a0, b0, acc00);
            acc01 = _mm256_fmadd_ps(a0, b1, acc01);
            let a1 = _mm256_set1_ps(*ap.add((i0 + 1) * k + kk));
            acc10 = _mm256_fmadd_ps(a1, b0, acc10);
            acc11 = _mm256_fmadd_ps(a1, b1, acc11);
            let a2 = _mm256_set1_ps(*ap.add((i0 + 2) * k + kk));
            acc20 = _mm256_fmadd_ps(a2, b0, acc20);
            acc21 = _mm256_fmadd_ps(a2, b1, acc21);
            let a3 = _mm256_set1_ps(*ap.add((i0 + 3) * k + kk));
            acc30 = _mm256_fmadd_ps(a3, b0, acc30);
            acc31 = _mm256_fmadd_ps(a3, b1, acc31);
            let a4 = _mm256_set1_ps(*ap.add((i0 + 4) * k + kk));
            acc40 = _mm256_fmadd_ps(a4, b0, acc40);
            acc41 = _mm256_fmadd_ps(a4, b1, acc41);
            let a5 = _mm256_set1_ps(*ap.add((i0 + 5) * k + kk));
            acc50 = _mm256_fmadd_ps(a5, b0, acc50);
            acc51 = _mm256_fmadd_ps(a5, b1, acc51);
        }
        _mm256_storeu_ps(o.add(i0 * m + j0), acc00);
        _mm256_storeu_ps(o.add(i0 * m + j0 + 8), acc01);
        _mm256_storeu_ps(o.add((i0 + 1) * m + j0), acc10);
        _mm256_storeu_ps(o.add((i0 + 1) * m + j0 + 8), acc11);
        _mm256_storeu_ps(o.add((i0 + 2) * m + j0), acc20);
        _mm256_storeu_ps(o.add((i0 + 2) * m + j0 + 8), acc21);
        _mm256_storeu_ps(o.add((i0 + 3) * m + j0), acc30);
        _mm256_storeu_ps(o.add((i0 + 3) * m + j0 + 8), acc31);
        _mm256_storeu_ps(o.add((i0 + 4) * m + j0), acc40);
        _mm256_storeu_ps(o.add((i0 + 4) * m + j0 + 8), acc41);
        _mm256_storeu_ps(o.add((i0 + 5) * m + j0), acc50);
        _mm256_storeu_ps(o.add((i0 + 5) * m + j0 + 8), acc51);
    }
}

/// Ragged tile (fewer than MR rows and/or NR columns): stage the live
/// output lanes through zero-padded stack rows, run the same FMA chains,
/// and store only the live lanes back. Padded lanes multiply against the
/// panel's zero fill and are discarded.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
fn edge_tile(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    m: usize,
    j0: usize,
    jw: usize,
) {
    let mut tile = [[0.0f32; NR]; MR];
    for r in 0..rows {
        tile[r][..jw].copy_from_slice(&out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw]);
    }
    // SAFETY: tile rows are NR floats; panel holds k*NR values.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for r in 0..rows {
            acc[r][0] = _mm256_loadu_ps(tile[r].as_ptr());
            acc[r][1] = _mm256_loadu_ps(tile[r].as_ptr().add(8));
        }
        let pp = panel.as_ptr();
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(pp.add(kk * NR));
            let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
            for r in 0..rows {
                let av = _mm256_set1_ps(a[(i0 + r) * k + kk]);
                acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for r in 0..rows {
            _mm256_storeu_ps(tile[r].as_mut_ptr(), acc[r][0]);
            _mm256_storeu_ps(tile[r].as_mut_ptr().add(8), acc[r][1]);
        }
    }
    for r in 0..rows {
        out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw].copy_from_slice(&tile[r][..jw]);
    }
}

/// Small-product path: unpacked `out[n,m] += a[n,k] * b[k,m]`, row by row,
/// `k` ascending, FMA per element — the identical per-element chain to the
/// blocked kernel above, so the blocking threshold never changes bits.
/// Tails use scalar `mul_add`, which compiles to a scalar FMA here.
#[target_feature(enable = "avx2,fma")]
pub fn matmul_small(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    let body = m - m % 8;
    for i in 0..n {
        let out_row = &mut out[i * m..(i + 1) * m];
        for kk in 0..k {
            let a_ik = a[i * k + kk];
            let b_row = &b[kk * m..(kk + 1) * m];
            // SAFETY: j stays within body <= m for both rows.
            unsafe {
                let av = _mm256_set1_ps(a_ik);
                let mut j = 0;
                while j < body {
                    let prod = _mm256_fmadd_ps(
                        av,
                        _mm256_loadu_ps(b_row.as_ptr().add(j)),
                        _mm256_loadu_ps(out_row.as_ptr().add(j)),
                    );
                    _mm256_storeu_ps(out_row.as_mut_ptr().add(j), prod);
                    j += 8;
                }
            }
            for j in body..m {
                out_row[j] = a_ik.mul_add(b_row[j], out_row[j]);
            }
        }
    }
}

// -------------------------------------------------------------------------
// exp polynomial
// -------------------------------------------------------------------------

/// Exp underflow cut-off: below this the polynomial path returns 0.
const EXP_LO: f32 = -87.33655;
/// Exp overflow clamp: ~ln(f32::MAX).
const EXP_HI: f32 = 88.37626;
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// `ln2` split hi/lo for extended-precision range reduction. The hi part's
/// exact bit pattern (low mantissa bits zero) is load-bearing for the split.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
/// Minimax coefficients for `exp(r)` on `|r| <= ln2/2` (Cephes `expf`).
const EXP_C0: f32 = 1.987_569_1e-4;
const EXP_C1: f32 = 1.398_199_9e-3;
const EXP_C2: f32 = 8.333_452e-3;
const EXP_C3: f32 = 4.166_579_6e-2;
const EXP_C4: f32 = 1.666_666_5e-1;
#[allow(clippy::excessive_precision)]
const EXP_C5: f32 = 5.000_000_2e-1;

/// Vectorized `exp` on 8 lanes. NaN propagates; +overflow saturates near
/// `f32::MAX`'s exponent; underflow (including `-Inf`) flushes to 0.
#[target_feature(enable = "avx2,fma")]
fn exp_ps(x: __m256) -> __m256 {
    {
        let underflow = _mm256_cmp_ps::<_CMP_LT_OQ>(x, _mm256_set1_ps(EXP_LO));
        let xc = _mm256_min_ps(
            _mm256_set1_ps(EXP_HI),
            _mm256_max_ps(_mm256_set1_ps(EXP_LO), x),
        );
        let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_ps(xc, _mm256_set1_ps(LOG2E)),
        );
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_HI), xc);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(LN2_LO), r);
        let mut y = _mm256_fmadd_ps(_mm256_set1_ps(EXP_C0), r, _mm256_set1_ps(EXP_C1));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(EXP_C2));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(EXP_C3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(EXP_C4));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(EXP_C5));
        let r2 = _mm256_mul_ps(r, r);
        y = _mm256_fmadd_ps(y, r2, r);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // 2^n via direct exponent-field construction (|n| <= 128 here).
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        )));
        _mm256_andnot_ps(underflow, _mm256_mul_ps(y, pow2))
    }
}

/// Scalar mirror of [`exp_ps`]: identical operations (`mul_add` compiles
/// to scalar FMA under this target feature), so row tails see the same
/// function as the vector body.
#[target_feature(enable = "avx2,fma")]
fn exp_scalar(x: f32) -> f32 {
    if x < EXP_LO {
        return 0.0;
    }
    let xc = x.min(EXP_HI);
    let n = (xc * LOG2E).round_ties_even();
    let r = (-n).mul_add(LN2_HI, xc);
    let r = (-n).mul_add(LN2_LO, r);
    let mut y = EXP_C0.mul_add(r, EXP_C1);
    y = y.mul_add(r, EXP_C2);
    y = y.mul_add(r, EXP_C3);
    y = y.mul_add(r, EXP_C4);
    y = y.mul_add(r, EXP_C5);
    y = y.mul_add(r * r, r) + 1.0;
    let pow2 = f32::from_bits(((n as i32 + 127) << 23) as u32);
    y * pow2
}

// -------------------------------------------------------------------------
// Softmax
// -------------------------------------------------------------------------

/// Softmax of one row: vector max → polynomial exp with four-lane f64
/// sum → element-wise scale. Same traversal structure as
/// `scalar::softmax_row`; reductions fold lanes in a fixed order.
#[target_feature(enable = "avx2,fma")]
pub fn softmax_row(row: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(row.len(), dst.len());
    let w = row.len();
    let body = w - w % 8;
    // SAFETY: all pointer offsets stay below `body <= w`.
    unsafe {
        // Row maximum.
        let mut max = f32::NEG_INFINITY;
        if body > 0 {
            let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
            let mut j = 0;
            while j < body {
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row.as_ptr().add(j)));
                j += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
            for &l in &lanes {
                max = max.max(l);
            }
        }
        for &x in &row[body..] {
            max = max.max(x);
        }

        // exp and f64 lane sums.
        let mv = _mm256_set1_ps(max);
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut j = 0;
        while j < body {
            let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(j)), mv));
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), e);
            acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(e)));
            j += 8;
        }
        let mut sum = hsum_pd(_mm256_add_pd(acc_lo, acc_hi));
        for (d, &x) in dst[body..].iter_mut().zip(&row[body..]) {
            let e = exp_scalar(x - max);
            *d = e;
            sum += e as f64;
        }

        // Scale — element-wise, identical rounding to the scalar path.
        let inv = (1.0 / sum) as f32;
        let iv = _mm256_set1_ps(inv);
        let mut j = 0;
        while j < body {
            let d = _mm256_mul_ps(_mm256_loadu_ps(dst.as_ptr().add(j)), iv);
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), d);
            j += 8;
        }
        for d in dst[body..].iter_mut() {
            *d *= inv;
        }
    }
}

/// Fixed-order horizontal sum of four f64 lanes: `((l0+l1)+l2)+l3`.
#[target_feature(enable = "avx2,fma")]
fn hsum_pd(v: __m256d) -> f64 {
    let mut lanes = [0.0f64; 4];
    // SAFETY: stack store of one YMM register.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), v) };
    ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
}

// -------------------------------------------------------------------------
// Layer norm
// -------------------------------------------------------------------------

/// Mean and inverse standard deviation of one row: two passes, four f64
/// lanes each, scalar tails summed after the lane fold.
#[target_feature(enable = "avx2,fma")]
pub fn layer_norm_row_stats(row: &[f32], eps: f32) -> (f64, f64) {
    let w = row.len();
    let body = w - w % 4;
    // SAFETY: offsets stay below `body <= w`.
    unsafe {
        let mut acc = _mm256_setzero_pd();
        let mut j = 0;
        while j < body {
            acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm_loadu_ps(row.as_ptr().add(j))));
            j += 4;
        }
        let mut sum = hsum_pd(acc);
        for &x in &row[body..] {
            sum += x as f64;
        }
        let mean = sum / w as f64;

        let meanv = _mm256_set1_pd(mean);
        let mut vacc = _mm256_setzero_pd();
        let mut j = 0;
        while j < body {
            let d = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(row.as_ptr().add(j))), meanv);
            vacc = _mm256_add_pd(vacc, _mm256_mul_pd(d, d));
            j += 4;
        }
        let mut var_sum = hsum_pd(vacc);
        for &x in &row[body..] {
            let d = x as f64 - mean;
            var_sum += d * d;
        }
        let var = var_sum / w as f64;
        let istd = 1.0 / (var + eps as f64).sqrt();
        (mean, istd)
    }
}

/// Normalizes one row given its statistics. Element-wise f64 arithmetic
/// with the exact scalar operation order (`cvt` → `sub` → `mul` → `cvt`,
/// then f32 `mul` + `add`, no FMA) — identical bits to
/// `scalar::layer_norm_normalize_row` for equal `(mean, istd)`.
#[target_feature(enable = "avx2,fma")]
pub fn layer_norm_normalize_row(
    row: &[f32],
    mean: f64,
    istd: f64,
    gamma: &[f32],
    beta: &[f32],
    y: &mut [f32],
    xhat_out: Option<&mut [f32]>,
) {
    let w = row.len();
    let body = w - w % 4;
    // SAFETY: offsets stay below `body <= w`; all slices have length w.
    unsafe {
        let meanv = _mm256_set1_pd(mean);
        let istdv = _mm256_set1_pd(istd);
        match xhat_out {
            Some(xhat) => {
                let mut j = 0;
                while j < body {
                    let xv = _mm256_cvtps_pd(_mm_loadu_ps(row.as_ptr().add(j)));
                    let xh = _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_sub_pd(xv, meanv), istdv));
                    _mm_storeu_ps(xhat.as_mut_ptr().add(j), xh);
                    let yv = _mm_add_ps(
                        _mm_mul_ps(xh, _mm_loadu_ps(gamma.as_ptr().add(j))),
                        _mm_loadu_ps(beta.as_ptr().add(j)),
                    );
                    _mm_storeu_ps(y.as_mut_ptr().add(j), yv);
                    j += 4;
                }
                for j in body..w {
                    let xh = ((row[j] as f64 - mean) * istd) as f32;
                    xhat[j] = xh;
                    y[j] = xh * gamma[j] + beta[j];
                }
            }
            None => {
                let mut j = 0;
                while j < body {
                    let xv = _mm256_cvtps_pd(_mm_loadu_ps(row.as_ptr().add(j)));
                    let xh = _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_sub_pd(xv, meanv), istdv));
                    let yv = _mm_add_ps(
                        _mm_mul_ps(xh, _mm_loadu_ps(gamma.as_ptr().add(j))),
                        _mm_loadu_ps(beta.as_ptr().add(j)),
                    );
                    _mm_storeu_ps(y.as_mut_ptr().add(j), yv);
                    j += 4;
                }
                for j in body..w {
                    let xh = ((row[j] as f64 - mean) * istd) as f32;
                    y[j] = xh * gamma[j] + beta[j];
                }
            }
        }
    }
}

/// Layer-norm backward for one row: four-lane f64 row sums (relaxed),
/// element-wise `dx` in scalar operation order, vectorized
/// `dgamma`/`dbeta` accumulation (element-wise, bit-exact).
#[target_feature(enable = "avx2,fma")]
pub fn layer_norm_backward_row(
    xhat: &[f32],
    istd: f32,
    gamma: &[f32],
    g: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let w = xhat.len();
    let body = w - w % 4;
    // SAFETY: offsets stay below `body <= w`; all slices have length w.
    unsafe {
        let mut acc_dy = _mm256_setzero_pd();
        let mut acc_dyxh = _mm256_setzero_pd();
        let mut j = 0;
        while j < body {
            let gv = _mm_loadu_ps(g.as_ptr().add(j));
            let gam = _mm_loadu_ps(gamma.as_ptr().add(j));
            let xh = _mm_loadu_ps(xhat.as_ptr().add(j));
            let dy = _mm_mul_ps(gv, gam);
            acc_dy = _mm256_add_pd(acc_dy, _mm256_cvtps_pd(dy));
            acc_dyxh = _mm256_add_pd(acc_dyxh, _mm256_cvtps_pd(_mm_mul_ps(dy, xh)));
            let dg = _mm_add_ps(_mm_loadu_ps(dgamma.as_ptr().add(j)), _mm_mul_ps(gv, xh));
            _mm_storeu_ps(dgamma.as_mut_ptr().add(j), dg);
            let db = _mm_add_ps(_mm_loadu_ps(dbeta.as_ptr().add(j)), gv);
            _mm_storeu_ps(dbeta.as_mut_ptr().add(j), db);
            j += 4;
        }
        let mut sum_dy = hsum_pd(acc_dy);
        let mut sum_dy_xhat = hsum_pd(acc_dyxh);
        for j in body..w {
            let dy = g[j] * gamma[j];
            sum_dy += dy as f64;
            sum_dy_xhat += (dy * xhat[j]) as f64;
            dgamma[j] += g[j] * xhat[j];
            dbeta[j] += g[j];
        }
        let c1 = (sum_dy / w as f64) as f32;
        let c2 = (sum_dy_xhat / w as f64) as f32;
        let c1v = _mm_set1_ps(c1);
        let c2v = _mm_set1_ps(c2);
        let iv = _mm_set1_ps(istd);
        let mut j = 0;
        while j < body {
            let dy = _mm_mul_ps(
                _mm_loadu_ps(g.as_ptr().add(j)),
                _mm_loadu_ps(gamma.as_ptr().add(j)),
            );
            let xh = _mm_loadu_ps(xhat.as_ptr().add(j));
            // istd * (dy - c1 - xh*c2) in the scalar op order: sub, sub, mul.
            let t = _mm_sub_ps(_mm_sub_ps(dy, c1v), _mm_mul_ps(xh, c2v));
            _mm_storeu_ps(dx.as_mut_ptr().add(j), _mm_mul_ps(iv, t));
            j += 4;
        }
        for j in body..w {
            let dy = g[j] * gamma[j];
            dx[j] = istd * (dy - c1 - xhat[j] * c2);
        }
    }
}

// -------------------------------------------------------------------------
// Flat scans
// -------------------------------------------------------------------------

/// Zeroes NaN/±Inf in place via an 8-lane exponent test; element-wise and
/// bit-exact with the scalar path.
#[target_feature(enable = "avx2,fma")]
pub fn sanitize_chunk(xs: &mut [f32]) -> usize {
    let len = xs.len();
    let body = len - len % 8;
    let mut bad = 0usize;
    // SAFETY: offsets stay below `body <= len`.
    unsafe {
        let abs_mask = _mm256_set1_epi32(0x7fff_ffff);
        let max_finite = _mm256_set1_epi32(0x7f7f_ffff);
        let mut j = 0;
        while j < body {
            let v = _mm256_loadu_ps(xs.as_ptr().add(j));
            let bits = _mm256_castps_si256(v);
            let nonfinite = _mm256_cmpgt_epi32(_mm256_and_si256(bits, abs_mask), max_finite);
            let mask = _mm256_castsi256_ps(nonfinite);
            bad += _mm256_movemask_ps(mask).count_ones() as usize;
            _mm256_storeu_ps(xs.as_mut_ptr().add(j), _mm256_andnot_ps(mask, v));
            j += 8;
        }
    }
    for x in xs[body..].iter_mut() {
        if !x.is_finite() {
            *x = 0.0;
            bad += 1;
        }
    }
    bad
}

/// Sum of squares in four f64 lanes (each f32 squares exactly in f64, so
/// only the lane additions round), tail summed after the fold.
#[target_feature(enable = "avx2,fma")]
pub fn norm_sq_chunk(xs: &[f32]) -> f64 {
    let len = xs.len();
    let body = len - len % 4;
    // SAFETY: offsets stay below `body <= len`.
    unsafe {
        let mut acc = _mm256_setzero_pd();
        let mut j = 0;
        while j < body {
            let d = _mm256_cvtps_pd(_mm_loadu_ps(xs.as_ptr().add(j)));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            j += 4;
        }
        let mut total = hsum_pd(acc);
        for &x in &xs[body..] {
            total += (x as f64) * (x as f64);
        }
        total
    }
}

// -------------------------------------------------------------------------
// Dequantize-on-the-fly pieces
// -------------------------------------------------------------------------

/// `dst[j] += a * w[j]` with the avx2 matmul chain (FMA per element; the
/// tail's `mul_add` compiles to scalar FMA under this target feature).
#[target_feature(enable = "avx2,fma")]
pub fn axpy(a: f32, w: &[f32], dst: &mut [f32]) {
    let len = dst.len().min(w.len());
    let body = len - len % 8;
    // SAFETY: offsets stay below `body <= len`.
    unsafe {
        let av = _mm256_set1_ps(a);
        let mut j = 0;
        while j < body {
            let d = _mm256_fmadd_ps(
                av,
                _mm256_loadu_ps(w.as_ptr().add(j)),
                _mm256_loadu_ps(dst.as_ptr().add(j)),
            );
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), d);
            j += 8;
        }
    }
    for j in body..len {
        dst[j] = a.mul_add(w[j], dst[j]);
    }
}

/// `out[j] = q[j] as f32 * scale`, widening eight int8 lanes per step —
/// exact per element, identical bits to the scalar dequantization.
#[target_feature(enable = "avx2,fma")]
pub fn dequant_row_i8(qs: &[i8], scale: f32, out: &mut [f32]) {
    let len = out.len().min(qs.len());
    let body = len - len % 8;
    // SAFETY: each iteration reads exactly 8 bytes at offset j < body <= len-8+1.
    unsafe {
        let sv = _mm256_set1_ps(scale);
        let mut j = 0;
        while j < body {
            let bytes = _mm_loadl_epi64(qs.as_ptr().add(j) as *const __m128i);
            let ints = _mm256_cvtepi8_epi32(bytes);
            let vals = _mm256_mul_ps(_mm256_cvtepi32_ps(ints), sv);
            _mm256_storeu_ps(out.as_mut_ptr().add(j), vals);
            j += 8;
        }
    }
    for j in body..len {
        out[j] = qs[j] as f32 * scale;
    }
}
