//! Portable reference implementations of the dispatched kernels.
//!
//! These are the chains every other ISA is defined against: single f32
//! accumulators walking `k` in ascending order for the matmul family,
//! serial left-to-right f64 sums for the reductions. The sse2 path is
//! bit-identical to everything here; the avx2 path relaxes the reduction
//! order and fuses multiply-adds (see the module docs in `simd`).

/// Register tile of the scalar micro-kernel: `MR x NR` accumulators held in
/// locals across the whole `k` walk. `NR` matches `panel_width(Scalar)`.
pub const MR: usize = 4;
pub const NR: usize = 8;

/// Micro-kernel over one band of rows fed from `NR`-wide packed panels:
/// `out[n,m] += a[n,k] * panels`. Each output element accumulates through
/// a single f32 in ascending-`k` order — the identical floating-point
/// chain to `linalg::matmul_reference`, hence bit-identical results.
pub fn matmul_block_rows(a: &[f32], packed: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    let m_panels = m.div_ceil(NR);
    let mut i0 = 0;
    while i0 < n {
        let rows = (n - i0).min(MR);
        for jp in 0..m_panels {
            let j0 = jp * NR;
            let jw = (m - j0).min(NR);
            let mut acc = [[0.0f32; NR]; MR];
            // Seed from the current output (the kernel contract is `+=`),
            // preserving the reference chain `((out + t0) + t1) + ...`.
            for r in 0..rows {
                acc[r][..jw].copy_from_slice(&out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw]);
            }
            let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
            for kk in 0..k {
                let bp = &panel[kk * NR..kk * NR + NR];
                for r in 0..rows {
                    let a_ik = a[(i0 + r) * k + kk];
                    for c in 0..NR {
                        // Padded lanes (c >= jw) multiply against the
                        // panel's zero fill and are never stored.
                        acc[r][c] += a_ik * bp[c];
                    }
                }
            }
            for r in 0..rows {
                out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw].copy_from_slice(&acc[r][..jw]);
            }
        }
        i0 += rows;
    }
}

/// Numerically stable softmax of one row — the shared traversal structure
/// (max, exp+f64-sum, scale) every ISA implements. Hoisted out of
/// `softmax_last`'s row loop so scalar and SIMD paths share one shape and
/// one set of edge-case tests (empty and single-element rows included).
pub fn softmax_row(row: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(row.len(), dst.len());
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f64;
    for (d, &x) in dst.iter_mut().zip(row) {
        let e = (x - max).exp();
        *d = e;
        sum += e as f64;
    }
    let inv = (1.0 / sum) as f32;
    for d in dst.iter_mut() {
        *d *= inv;
    }
}

/// Per-row mean and inverse standard deviation in f64 — serial
/// left-to-right sums, the canonical chain of the pre-SIMD kernels.
pub fn layer_norm_row_stats(row: &[f32], eps: f32) -> (f64, f64) {
    let w = row.len();
    let mean = row.iter().map(|&v| v as f64).sum::<f64>() / w as f64;
    let var = row.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / w as f64;
    let istd = 1.0 / (var + eps as f64).sqrt();
    (mean, istd)
}

/// Normalizes one row given its statistics; element-wise, so every ISA
/// matches these bits when handed identical `(mean, istd)`.
pub fn layer_norm_normalize_row(
    row: &[f32],
    mean: f64,
    istd: f64,
    gamma: &[f32],
    beta: &[f32],
    y: &mut [f32],
    xhat_out: Option<&mut [f32]>,
) {
    match xhat_out {
        Some(xhat) => {
            for j in 0..row.len() {
                let xh = ((row[j] as f64 - mean) * istd) as f32;
                xhat[j] = xh;
                y[j] = xh * gamma[j] + beta[j];
            }
        }
        None => {
            for j in 0..row.len() {
                let xh = ((row[j] as f64 - mean) * istd) as f32;
                y[j] = xh * gamma[j] + beta[j];
            }
        }
    }
}

/// Layer-norm backward for one row: serial f64 row sums, element-wise
/// `dx`, and `dgamma`/`dbeta` accumulation into the caller's partials.
pub fn layer_norm_backward_row(
    xhat: &[f32],
    istd: f32,
    gamma: &[f32],
    g: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let w = xhat.len();
    let mut sum_dy = 0.0f64;
    let mut sum_dy_xhat = 0.0f64;
    for j in 0..w {
        let dy = g[j] * gamma[j];
        sum_dy += dy as f64;
        sum_dy_xhat += (dy * xhat[j]) as f64;
        dgamma[j] += g[j] * xhat[j];
        dbeta[j] += g[j];
    }
    let c1 = (sum_dy / w as f64) as f32;
    let c2 = (sum_dy_xhat / w as f64) as f32;
    for j in 0..w {
        let dy = g[j] * gamma[j];
        dx[j] = istd * (dy - c1 - xhat[j] * c2);
    }
}

/// Zeroes NaN/±Inf entries, returning the count.
pub fn sanitize_chunk(xs: &mut [f32]) -> usize {
    let mut bad = 0usize;
    for x in xs.iter_mut() {
        if !x.is_finite() {
            *x = 0.0;
            bad += 1;
        }
    }
    bad
}

/// Serial ascending f64 sum of squares.
pub fn norm_sq_chunk(xs: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for &x in xs {
        acc += (x as f64) * (x as f64);
    }
    acc
}

/// `dst[j] += a * w[j]`, mul-then-add per element.
pub fn axpy(a: f32, w: &[f32], dst: &mut [f32]) {
    for (o, &b) in dst.iter_mut().zip(w) {
        *o += a * b;
    }
}

/// `out[j] = q[j] as f32 * scale` — exact per element.
pub fn dequant_row_i8(qs: &[i8], scale: f32, out: &mut [f32]) {
    for (o, &q) in out.iter_mut().zip(qs) {
        *o = q as f32 * scale;
    }
}
