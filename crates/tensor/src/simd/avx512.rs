//! AVX-512F matmul micro-kernel — 16 f32 lanes, fused multiply-add.
//!
//! Only the blocked matmul lives here; every other kernel of the
//! [`super::Isa::Avx512`] tier dispatches to the [`super::avx2`]
//! implementations (an avx512f host always has avx2+fma).
//!
//! Numerically this tier is **bit-identical to the avx2 tier**: each
//! output element still accumulates through a single register lane
//! walking `k` in ascending order with one FMA per step, and FMA is an
//! exact-per-lane IEEE operation — lane position and vector width cannot
//! change the value. The wider registers only change how many of those
//! independent chains run per instruction, so the "avx2 relaxation"
//! documented in DESIGN.md §16 covers this tier verbatim (pinned by
//! `tests/isa_dispatch.rs`).
//!
//! Register layout: `MR=8` rows × `NR=32` columns = sixteen ZMM
//! accumulators (of the 32 architectural ZMM registers) held across the
//! whole `k` walk; each `k` step issues two panel loads, eight broadcasts
//! and sixteen FMAs — enough independent chains to saturate two 512-bit
//! FMA ports at 4-cycle latency.

use std::arch::x86_64::*;

/// Rows per register tile.
pub const MR: usize = 8;
/// Columns per register tile (= `panel_width(Avx512)`, two ZMM vectors).
pub const NR: usize = 32;

/// Micro-kernel over one band of rows fed from `NR`-wide packed panels:
/// `out[n,m] += a[n,k] * panels`, FMA chain per output lane.
#[target_feature(enable = "avx512f")]
pub fn matmul_block_rows(a: &[f32], packed: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    let m_panels = m.div_ceil(NR);
    let mut i0 = 0;
    while i0 < n {
        let rows = (n - i0).min(MR);
        for jp in 0..m_panels {
            let j0 = jp * NR;
            let jw = (m - j0).min(NR);
            let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
            if rows == MR && jw == NR {
                full_tile(a, panel, out, i0, k, m, j0);
            } else {
                edge_tile(a, panel, out, i0, rows, k, m, j0, jw);
            }
        }
        i0 += rows;
    }
}

/// 8×32 tile with all sixteen accumulators named so they provably live in
/// registers across the `k` loop (16 acc + 2 panel + 1 broadcast = 19 of
/// the 32 ZMM registers).
#[target_feature(enable = "avx512f")]
fn full_tile(a: &[f32], panel: &[f32], out: &mut [f32], i0: usize, k: usize, m: usize, j0: usize) {
    // SAFETY: caller guarantees rows i0..i0+MR and columns j0..j0+NR are in
    // bounds of `out`, `a` holds rows i0..i0+MR of width k, and `panel`
    // holds k*NR packed values.
    unsafe {
        let o = out.as_mut_ptr();
        let mut acc00 = _mm512_loadu_ps(o.add(i0 * m + j0));
        let mut acc01 = _mm512_loadu_ps(o.add(i0 * m + j0 + 16));
        let mut acc10 = _mm512_loadu_ps(o.add((i0 + 1) * m + j0));
        let mut acc11 = _mm512_loadu_ps(o.add((i0 + 1) * m + j0 + 16));
        let mut acc20 = _mm512_loadu_ps(o.add((i0 + 2) * m + j0));
        let mut acc21 = _mm512_loadu_ps(o.add((i0 + 2) * m + j0 + 16));
        let mut acc30 = _mm512_loadu_ps(o.add((i0 + 3) * m + j0));
        let mut acc31 = _mm512_loadu_ps(o.add((i0 + 3) * m + j0 + 16));
        let mut acc40 = _mm512_loadu_ps(o.add((i0 + 4) * m + j0));
        let mut acc41 = _mm512_loadu_ps(o.add((i0 + 4) * m + j0 + 16));
        let mut acc50 = _mm512_loadu_ps(o.add((i0 + 5) * m + j0));
        let mut acc51 = _mm512_loadu_ps(o.add((i0 + 5) * m + j0 + 16));
        let mut acc60 = _mm512_loadu_ps(o.add((i0 + 6) * m + j0));
        let mut acc61 = _mm512_loadu_ps(o.add((i0 + 6) * m + j0 + 16));
        let mut acc70 = _mm512_loadu_ps(o.add((i0 + 7) * m + j0));
        let mut acc71 = _mm512_loadu_ps(o.add((i0 + 7) * m + j0 + 16));
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        // Unrolled by 2: each element's chain still applies its k-steps in
        // ascending order (the second step's FMA consumes the first step's
        // accumulator), so unrolling cannot change bits — it only halves
        // the loop-control overhead per FMA.
        macro_rules! step {
            ($kk:expr) => {{
                let kk = $kk;
                let b0 = _mm512_loadu_ps(pp.add(kk * NR));
                let b1 = _mm512_loadu_ps(pp.add(kk * NR + 16));
                let a0 = _mm512_set1_ps(*ap.add(i0 * k + kk));
                acc00 = _mm512_fmadd_ps(a0, b0, acc00);
                acc01 = _mm512_fmadd_ps(a0, b1, acc01);
                let a1 = _mm512_set1_ps(*ap.add((i0 + 1) * k + kk));
                acc10 = _mm512_fmadd_ps(a1, b0, acc10);
                acc11 = _mm512_fmadd_ps(a1, b1, acc11);
                let a2 = _mm512_set1_ps(*ap.add((i0 + 2) * k + kk));
                acc20 = _mm512_fmadd_ps(a2, b0, acc20);
                acc21 = _mm512_fmadd_ps(a2, b1, acc21);
                let a3 = _mm512_set1_ps(*ap.add((i0 + 3) * k + kk));
                acc30 = _mm512_fmadd_ps(a3, b0, acc30);
                acc31 = _mm512_fmadd_ps(a3, b1, acc31);
                let a4 = _mm512_set1_ps(*ap.add((i0 + 4) * k + kk));
                acc40 = _mm512_fmadd_ps(a4, b0, acc40);
                acc41 = _mm512_fmadd_ps(a4, b1, acc41);
                let a5 = _mm512_set1_ps(*ap.add((i0 + 5) * k + kk));
                acc50 = _mm512_fmadd_ps(a5, b0, acc50);
                acc51 = _mm512_fmadd_ps(a5, b1, acc51);
                let a6 = _mm512_set1_ps(*ap.add((i0 + 6) * k + kk));
                acc60 = _mm512_fmadd_ps(a6, b0, acc60);
                acc61 = _mm512_fmadd_ps(a6, b1, acc61);
                let a7 = _mm512_set1_ps(*ap.add((i0 + 7) * k + kk));
                acc70 = _mm512_fmadd_ps(a7, b0, acc70);
                acc71 = _mm512_fmadd_ps(a7, b1, acc71);
            }};
        }
        let k2 = k - k % 2;
        let mut kk = 0;
        while kk < k2 {
            step!(kk);
            step!(kk + 1);
            kk += 2;
        }
        if kk < k {
            step!(kk);
        }
        _mm512_storeu_ps(o.add(i0 * m + j0), acc00);
        _mm512_storeu_ps(o.add(i0 * m + j0 + 16), acc01);
        _mm512_storeu_ps(o.add((i0 + 1) * m + j0), acc10);
        _mm512_storeu_ps(o.add((i0 + 1) * m + j0 + 16), acc11);
        _mm512_storeu_ps(o.add((i0 + 2) * m + j0), acc20);
        _mm512_storeu_ps(o.add((i0 + 2) * m + j0 + 16), acc21);
        _mm512_storeu_ps(o.add((i0 + 3) * m + j0), acc30);
        _mm512_storeu_ps(o.add((i0 + 3) * m + j0 + 16), acc31);
        _mm512_storeu_ps(o.add((i0 + 4) * m + j0), acc40);
        _mm512_storeu_ps(o.add((i0 + 4) * m + j0 + 16), acc41);
        _mm512_storeu_ps(o.add((i0 + 5) * m + j0), acc50);
        _mm512_storeu_ps(o.add((i0 + 5) * m + j0 + 16), acc51);
        _mm512_storeu_ps(o.add((i0 + 6) * m + j0), acc60);
        _mm512_storeu_ps(o.add((i0 + 6) * m + j0 + 16), acc61);
        _mm512_storeu_ps(o.add((i0 + 7) * m + j0), acc70);
        _mm512_storeu_ps(o.add((i0 + 7) * m + j0 + 16), acc71);
    }
}

/// Ragged tile (fewer than MR rows and/or NR columns): stage the live
/// output lanes through zero-padded stack rows, run the same FMA chains,
/// and store only the live lanes back. Padded lanes multiply against the
/// panel's zero fill and are discarded.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
fn edge_tile(
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    m: usize,
    j0: usize,
    jw: usize,
) {
    let mut tile = [[0.0f32; NR]; MR];
    for r in 0..rows {
        tile[r][..jw].copy_from_slice(&out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw]);
    }
    // SAFETY: tile rows are NR floats; panel holds k*NR values.
    unsafe {
        let mut acc = [[_mm512_setzero_ps(); 2]; MR];
        for r in 0..rows {
            acc[r][0] = _mm512_loadu_ps(tile[r].as_ptr());
            acc[r][1] = _mm512_loadu_ps(tile[r].as_ptr().add(16));
        }
        let pp = panel.as_ptr();
        for kk in 0..k {
            let b0 = _mm512_loadu_ps(pp.add(kk * NR));
            let b1 = _mm512_loadu_ps(pp.add(kk * NR + 16));
            for r in 0..rows {
                let av = _mm512_set1_ps(a[(i0 + r) * k + kk]);
                acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for r in 0..rows {
            _mm512_storeu_ps(tile[r].as_mut_ptr(), acc[r][0]);
            _mm512_storeu_ps(tile[r].as_mut_ptr().add(16), acc[r][1]);
        }
    }
    for r in 0..rows {
        out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw].copy_from_slice(&tile[r][..jw]);
    }
}
