//! SSE2 micro-kernels — 4 f32 lanes, **bit-identical to the scalar path**.
//!
//! Vector lanes here are always independent output elements, and every
//! accumulation step is a multiply followed by an add (`_mm_mul_ps` then
//! `_mm_add_ps`), each rounding exactly like the corresponding scalar f32
//! op. The per-element chains are therefore the same as the scalar
//! reference loops bit for bit; this path exists purely to issue four of
//! those chains per instruction.
//!
//! SSE2 is part of the x86-64 baseline, so these functions need no
//! `#[target_feature]` and are safe to call on any x86-64 host. The
//! reductions that would need a horizontal fold to vectorize (softmax,
//! layer-norm statistics, `norm_sq`) deliberately stay on the scalar
//! implementations under SSE2 dispatch — a 4-lane fold would break the
//! bit-compatibility that makes this tier a drop-in scalar replacement.

use std::arch::x86_64::*;

/// Register tile: 4 rows x 8 columns = eight XMM accumulators.
pub const MR: usize = 4;
pub const NR: usize = 8;

/// Micro-kernel over one band of rows from `NR`-wide packed panels —
/// the SSE2 twin of `scalar::matmul_block_rows` (same panel width, same
/// chains, four lanes per instruction).
pub fn matmul_block_rows(a: &[f32], packed: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    let m_panels = m.div_ceil(NR);
    let mut i0 = 0;
    while i0 < n {
        let rows = (n - i0).min(MR);
        for jp in 0..m_panels {
            let j0 = jp * NR;
            let jw = (m - j0).min(NR);
            let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
            // Stack tile seeded from the current output; padded lanes are
            // zero and never stored back.
            let mut tile = [[0.0f32; NR]; MR];
            for r in 0..rows {
                tile[r][..jw].copy_from_slice(&out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw]);
            }
            // SAFETY: SSE2 is unconditionally available on x86-64; all
            // loads/stores go through {load,store}u on in-bounds slices.
            unsafe {
                let mut acc = [[_mm_setzero_ps(); 2]; MR];
                for r in 0..rows {
                    acc[r][0] = _mm_loadu_ps(tile[r].as_ptr());
                    acc[r][1] = _mm_loadu_ps(tile[r].as_ptr().add(4));
                }
                for kk in 0..k {
                    let bp = panel.as_ptr().add(kk * NR);
                    let b0 = _mm_loadu_ps(bp);
                    let b1 = _mm_loadu_ps(bp.add(4));
                    for r in 0..rows {
                        let av = _mm_set1_ps(a[(i0 + r) * k + kk]);
                        acc[r][0] = _mm_add_ps(_mm_mul_ps(av, b0), acc[r][0]);
                        acc[r][1] = _mm_add_ps(_mm_mul_ps(av, b1), acc[r][1]);
                    }
                }
                for r in 0..rows {
                    _mm_storeu_ps(tile[r].as_mut_ptr(), acc[r][0]);
                    _mm_storeu_ps(tile[r].as_mut_ptr().add(4), acc[r][1]);
                }
            }
            for r in 0..rows {
                out[(i0 + r) * m + j0..(i0 + r) * m + j0 + jw].copy_from_slice(&tile[r][..jw]);
            }
        }
        i0 += rows;
    }
}

/// `dst[j] += a * w[j]` four lanes at a time; mul-then-add keeps the
/// scalar rounding per element, the tail runs the scalar loop.
pub fn axpy(a: f32, w: &[f32], dst: &mut [f32]) {
    let len = dst.len().min(w.len());
    let body = len - len % 4;
    // SAFETY: SSE2 is baseline on x86-64; indices stay within `body`.
    unsafe {
        let av = _mm_set1_ps(a);
        let mut j = 0;
        while j < body {
            let d = _mm_loadu_ps(dst.as_ptr().add(j));
            let b = _mm_loadu_ps(w.as_ptr().add(j));
            _mm_storeu_ps(dst.as_mut_ptr().add(j), _mm_add_ps(_mm_mul_ps(av, b), d));
            j += 4;
        }
    }
    for j in body..len {
        dst[j] += a * w[j];
    }
}
