//! Finite-difference gradient checking for autograd ops.

use crate::autograd::Tensor;
use crate::ndarray::NdArray;

/// Result of a gradient check for a single input tensor.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by max(|a|, |n|, 1e-3)).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// Whether the check passes at the given relative tolerance.
    pub fn ok(&self, rel_tol: f32) -> bool {
        self.max_rel_err <= rel_tol
    }
}

/// Checks the gradient of `f` (a scalar-valued function of `inputs[target]`)
/// against central finite differences.
///
/// `f` is re-invoked with perturbed copies of the inputs, so it must be a
/// pure function of the provided tensors.
pub fn gradcheck(
    f: impl Fn(&[Tensor]) -> Tensor,
    inputs: &[NdArray],
    target: usize,
    eps: f32,
) -> GradCheckReport {
    // Analytic gradient.
    let params: Vec<Tensor> = inputs
        .iter()
        .map(|v| Tensor::parameter(v.clone()))
        .collect();
    let out = f(&params);
    assert_eq!(out.shape().numel(), 1, "gradcheck requires a scalar output");
    out.backward();
    let analytic = params[target]
        .grad()
        .unwrap_or_else(|| NdArray::zeros(inputs[target].shape().clone()));

    // Numeric gradient via central differences.
    let mut numeric = NdArray::zeros(inputs[target].shape().clone());
    for i in 0..inputs[target].numel() {
        let eval = |delta: f32| -> f32 {
            let mut perturbed: Vec<NdArray> = inputs.to_vec();
            perturbed[target].as_mut_slice()[i] += delta;
            let params: Vec<Tensor> = perturbed.into_iter().map(Tensor::parameter).collect();
            f(&params).item()
        };
        let plus = eval(eps);
        let minus = eval(-eps);
        numeric.as_mut_slice()[i] = (plus - minus) / (2.0 * eps);
    }

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (&a, &n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let abs = (a - n).abs();
        let rel = abs / a.abs().max(n.abs()).max(1e-3);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}
