//! `NdArray`: a dense, row-major, contiguous `f32` array — the value type
//! underneath the autograd [`Tensor`](crate::Tensor).

use crate::shape::Shape;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use std::fmt;

/// Dense n-dimensional `f32` array, always contiguous in row-major order.
#[derive(Clone, PartialEq)]
pub struct NdArray {
    shape: Shape,
    data: Vec<f32>,
}

impl NdArray {
    /// Creates an array from a flat buffer. Panics if the buffer length does
    /// not match the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} needs {} elements, got {}",
            shape.numel(),
            data.len()
        );
        NdArray { shape, data }
    }

    /// All-zeros array.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        NdArray {
            shape,
            data: vec![0.0; n],
        }
    }

    /// All-ones array.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Array filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        NdArray {
            shape,
            data: vec![value; n],
        }
    }

    /// Scalar (rank-0) array.
    pub fn scalar(value: f32) -> Self {
        NdArray {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut a = Self::zeros([n, n]);
        for i in 0..n {
            a.data[i * n + i] = 1.0;
        }
        a
    }

    /// Samples i.i.d. `N(mean, std^2)` entries.
    pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let normal = Normal::new(mean, std.max(0.0)).expect("valid normal params");
        let data = (0..shape.numel()).map(|_| normal.sample(rng)).collect();
        NdArray { shape, data }
    }

    /// Samples i.i.d. `U(lo, hi)` entries.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let uniform = Uniform::new_inclusive(lo, hi);
        let data = (0..shape.numel()).map(|_| uniform.sample(rng)).collect();
        NdArray { shape, data }
    }

    /// `[0, 1, ..., n-1]` as a 1-D array.
    pub fn arange(n: usize) -> Self {
        NdArray::from_vec([n], (0..n).map(|i| i as f32).collect())
    }

    /// The shape of this array.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the array, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single element of a one-element array.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on array of shape {}", self.shape);
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> NdArray {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {shape}",
            self.shape
        );
        NdArray {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape without copying.
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> NdArray {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} to {shape}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Applies `f` to every element, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> NdArray {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shape arrays.
    pub fn zip(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        NdArray {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` element-wise (same shapes).
    pub fn add_assign(&mut self, other: &NdArray) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self *= s` element-wise.
    pub fn scale_inplace(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements (f64 accumulation).
    pub fn sum_all(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements; 0 for empty arrays.
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Maximum element; `-inf` for empty arrays.
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `+inf` for empty arrays.
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L2 norm of the flattened array.
    pub fn norm_l2(&self) -> f32 {
        (self
            .data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute difference against another same-shape array.
    pub fn max_abs_diff(&self, other: &NdArray) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Approximate equality within `tol` (absolute, element-wise).
    pub fn allclose(&self, other: &NdArray, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for NdArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NdArray{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elems]", &self.data[..8], self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let a = NdArray::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.at(&[0, 2]), 3.0);
        assert_eq!(a.at(&[1, 0]), 4.0);
        assert_eq!(a.numel(), 6);
        assert_eq!(NdArray::scalar(7.0).item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn from_vec_wrong_len_panics() {
        NdArray::from_vec([2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn eye_is_identity() {
        let e = NdArray::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
        assert_eq!(e.sum_all(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = NdArray::arange(6).reshape([2, 3]);
        assert_eq!(a.at(&[1, 1]), 4.0);
        let b = a.reshape([3, 2]);
        assert_eq!(b.at(&[2, 1]), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_wrong_numel_panics() {
        NdArray::arange(6).reshape([4, 2]);
    }

    #[test]
    fn map_zip_and_reductions() {
        let a = NdArray::from_vec([3], vec![1., -2., 3.]);
        let b = a.map(f32::abs);
        assert_eq!(b.as_slice(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[2., 0., 6.]);
        assert_eq!(a.sum_all(), 2.0);
        assert_eq!(a.max_all(), 3.0);
        assert_eq!(a.min_all(), -2.0);
        assert!((a.norm_l2() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn random_constructors_respect_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let u = NdArray::rand_uniform([1000], -0.5, 0.5, &mut rng);
        assert!(u.max_all() <= 0.5 && u.min_all() >= -0.5);
        let n = NdArray::randn([1000], 0.0, 1.0, &mut rng);
        assert!(n.mean_all().abs() < 0.1);
        assert!(!n.has_non_finite());
    }

    #[test]
    fn allclose_tolerance() {
        let a = NdArray::from_vec([2], vec![1.0, 2.0]);
        let b = NdArray::from_vec([2], vec![1.0005, 2.0]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
    }
}
