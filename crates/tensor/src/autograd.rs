//! Reverse-mode automatic differentiation.
//!
//! A [`Tensor`] wraps an [`NdArray`] value in a shared graph node. Operations
//! build the computation graph eagerly; [`Tensor::backward`] runs a
//! topological sweep that accumulates gradients into every node that
//! requires them. Graphs are rebuilt every training step, so node storage is
//! transient and needs no explicit freeing.
//!
//! The engine is deliberately single-threaded (`Rc` + `RefCell`): prediction
//! contexts in HIRE are small (tens of users/items), and the simplicity pays
//! for itself in auditability. Cross-model parallelism, when needed, runs
//! one graph per thread.

use crate::linalg;
use crate::ndarray::NdArray;
use crate::shape::Shape;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Gradient contributions for each parent, in parent order.
type BackwardFn = Box<dyn Fn(&NdArray, &[Tensor]) -> Vec<Option<NdArray>>>;

thread_local! {
    static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
}

fn fresh_id() -> u64 {
    NEXT_ID.with(|c| {
        let mut c = c.borrow_mut();
        *c += 1;
        *c
    })
}

struct Node {
    id: u64,
    value: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
}

/// A node in the autograd graph. Cloning is cheap (shared pointer).
#[derive(Clone)]
pub struct Tensor {
    node: Rc<Node>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// A leaf that participates in gradient computation (a model parameter).
    pub fn parameter(value: NdArray) -> Tensor {
        Tensor::leaf(value, true)
    }

    /// A leaf excluded from gradient computation (input data).
    pub fn constant(value: NdArray) -> Tensor {
        Tensor::leaf(value, false)
    }

    /// A scalar constant.
    pub fn scalar(v: f32) -> Tensor {
        Tensor::constant(NdArray::scalar(v))
    }

    fn leaf(value: NdArray, requires_grad: bool) -> Tensor {
        Tensor {
            node: Rc::new(Node {
                id: fresh_id(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    fn from_op(value: NdArray, parents: Vec<Tensor>, backward: BackwardFn) -> Tensor {
        let requires_grad = parents.iter().any(|p| p.requires_grad());
        Tensor {
            node: Rc::new(Node {
                id: fresh_id(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents,
                backward: if requires_grad { Some(backward) } else { None },
            }),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Unique node id (creation order).
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Copy of the current value.
    pub fn value(&self) -> NdArray {
        self.node.value.borrow().clone()
    }

    /// Runs `f` against the value without copying.
    pub fn with_value<R>(&self, f: impl FnOnce(&NdArray) -> R) -> R {
        f(&self.node.value.borrow())
    }

    /// The shape of the value.
    pub fn shape(&self) -> Shape {
        self.node.value.borrow().shape().clone()
    }

    /// Dimension sizes.
    pub fn dims(&self) -> Vec<usize> {
        self.node.value.borrow().dims().to_vec()
    }

    /// Scalar value of a one-element tensor.
    pub fn item(&self) -> f32 {
        self.node.value.borrow().item()
    }

    /// Copy of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.node.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Adds `g` into the accumulated gradient (creating it if absent).
    /// Used by first-order meta-learning loops that stash task gradients
    /// and replay them into the outer optimizer.
    pub fn add_to_grad(&self, g: &NdArray) {
        self.accumulate_grad(g.clone());
    }

    /// Mutates the accumulated gradient in place, if present (used for
    /// gradient clipping). No-op when there is no gradient.
    pub fn update_grad(&self, f: impl FnOnce(&mut NdArray)) {
        if let Some(g) = self.node.grad.borrow_mut().as_mut() {
            f(g);
        }
    }

    /// Runs `f` against the gradient without copying; `None` when absent.
    pub fn with_grad<R>(&self, f: impl FnOnce(Option<&NdArray>) -> R) -> R {
        f(self.node.grad.borrow().as_ref())
    }

    /// Overwrites the value in place (used by optimizers; never do this in
    /// the middle of building a graph that already read the old value).
    pub fn set_value(&self, value: NdArray) {
        let mut v = self.node.value.borrow_mut();
        assert_eq!(
            v.shape(),
            value.shape(),
            "set_value shape mismatch: {} vs {}",
            v.shape(),
            value.shape()
        );
        *v = value;
    }

    /// Applies `f` to the raw value buffer in place (optimizer update path).
    pub fn update_value(&self, f: impl FnOnce(&mut NdArray)) {
        f(&mut self.node.value.borrow_mut());
    }

    /// A new constant tensor sharing this tensor's current value (detach).
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value())
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Back-propagates from this tensor, seeding with ones (use on scalar
    /// losses; for non-scalars the seed is an implicit sum).
    pub fn backward(&self) {
        self.backward_with(NdArray::ones(self.shape()));
    }

    /// Back-propagates with an explicit output gradient.
    pub fn backward_with(&self, seed: NdArray) {
        assert_eq!(seed.shape(), &self.shape(), "backward seed shape mismatch");
        assert!(self.requires_grad(), "backward on a non-grad tensor");

        // Topological order (children before parents) via iterative DFS.
        let order = self.topo_order();
        self.accumulate_grad(seed);
        for t in order {
            let Some(backward) = t.node.backward.as_ref() else {
                continue;
            };
            let grad_out = t
                .node
                .grad
                .borrow()
                .clone()
                .expect("topological order guarantees grad is present");
            let contributions = backward(&grad_out, &t.node.parents);
            debug_assert_eq!(contributions.len(), t.node.parents.len());
            for (parent, contribution) in t.node.parents.iter().zip(contributions) {
                if let Some(g) = contribution {
                    if parent.requires_grad() {
                        parent.accumulate_grad(g);
                    }
                }
            }
        }
    }

    fn accumulate_grad(&self, g: NdArray) {
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(&g),
            None => *slot = Some(g),
        }
    }

    /// Nodes reachable from `self` that require grad, children-first.
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Iterative post-order DFS; reversed post-order = topological order.
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.node.id);
        while let Some((t, child_ix)) = stack.pop() {
            if child_ix < t.node.parents.len() {
                let parent = t.node.parents[child_ix].clone();
                stack.push((t, child_ix + 1));
                if parent.requires_grad() && !visited.contains(&parent.node.id) {
                    visited.insert(parent.node.id);
                    stack.push((parent, 0));
                }
            } else {
                order.push(t);
            }
        }
        order.reverse();
        order
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    /// Element-wise sum with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let value =
            self.with_value(|a| other.with_value(|b| linalg::broadcast_zip(a, b, |x, y| x + y)));
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                vec![
                    Some(linalg::reduce_to_shape(g, &parents[0].shape())),
                    Some(linalg::reduce_to_shape(g, &parents[1].shape())),
                ]
            }),
        )
    }

    /// Element-wise difference with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let value =
            self.with_value(|a| other.with_value(|b| linalg::broadcast_zip(a, b, |x, y| x - y)));
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                let mut neg = g.clone();
                neg.scale_inplace(-1.0);
                vec![
                    Some(linalg::reduce_to_shape(g, &parents[0].shape())),
                    Some(linalg::reduce_to_shape(&neg, &parents[1].shape())),
                ]
            }),
        )
    }

    /// Element-wise product with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let value =
            self.with_value(|a| other.with_value(|b| linalg::broadcast_zip(a, b, |x, y| x * y)));
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                let ga = linalg::broadcast_zip(g, &b, |gi, bi| gi * bi);
                let gb = linalg::broadcast_zip(g, &a, |gi, ai| gi * ai);
                vec![
                    Some(linalg::reduce_to_shape(&ga, a.shape())),
                    Some(linalg::reduce_to_shape(&gb, b.shape())),
                ]
            }),
        )
    }

    /// Element-wise quotient with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        let value =
            self.with_value(|a| other.with_value(|b| linalg::broadcast_zip(a, b, |x, y| x / y)));
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                let ga = linalg::broadcast_zip(g, &b, |gi, bi| gi / bi);
                let gb_full = linalg::broadcast_zip(
                    &linalg::broadcast_zip(g, &a, |gi, ai| gi * ai),
                    &b,
                    |num, bi| -num / (bi * bi),
                );
                vec![
                    Some(linalg::reduce_to_shape(&ga, a.shape())),
                    Some(linalg::reduce_to_shape(&gb_full, b.shape())),
                ]
            }),
        )
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        self.mul_scalar(-1.0)
    }

    /// Multiplies every element by a constant.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let value = self.with_value(|a| a.map(|x| x * s));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                let mut gi = g.clone();
                gi.scale_inplace(s);
                vec![Some(gi)]
            }),
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let value = self.with_value(|a| a.map(|x| x + s));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _| vec![Some(g.clone())]),
        )
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.mul(self)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Tensor {
        let value = self.with_value(|a| a.map(f32::exp));
        let out = value.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.zip(&out, |gi, yi| gi * yi))]),
        )
    }

    /// Element-wise natural log (inputs must be positive).
    pub fn ln(&self) -> Tensor {
        let value = self.with_value(|a| a.map(f32::ln));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].value();
                vec![Some(g.zip(&x, |gi, xi| gi / xi))]
            }),
        )
    }

    /// `ln(|x| + eps)` — the sign-safe logarithm used by AFN's logarithmic
    /// transformation layer.
    pub fn ln_abs_eps(&self, eps: f32) -> Tensor {
        let value = self.with_value(|a| a.map(|x| (x.abs() + eps).ln()));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                vec![Some(
                    g.zip(&x, |gi, xi| gi * xi.signum() / (xi.abs() + eps)),
                )]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let value = self.with_value(|a| a.map(|x| 1.0 / (1.0 + (-x).exp())));
        let out = value.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.zip(&out, |gi, yi| gi * yi * (1.0 - yi)))]),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let value = self.with_value(|a| a.map(f32::tanh));
        let out = value.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(g.zip(&out, |gi, yi| gi * (1.0 - yi * yi)))]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let value = self.with_value(|a| a.map(|x| x.max(0.0)));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].value();
                vec![Some(g.zip(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 }))]
            }),
        )
    }

    /// Gaussian error linear unit (tanh approximation).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let value = self
            .with_value(|a| a.map(|x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let x = parents[0].value();
                vec![Some(g.zip(&x, |gi, xi| {
                    let inner = C * (xi + 0.044715 * xi * xi * xi);
                    let t = inner.tanh();
                    let dinner = C * (1.0 + 3.0 * 0.044715 * xi * xi);
                    gi * (0.5 * (1.0 + t) + 0.5 * xi * (1.0 - t * t) * dinner)
                }))]
            }),
        )
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        let value = self.with_value(|a| a.map(|x| if x > 0.0 { x } else { alpha * x }));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let x = parents[0].value();
                vec![Some(
                    g.zip(&x, |gi, xi| if xi > 0.0 { gi } else { alpha * gi }),
                )]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Reshape (element count must match).
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let value = self.with_value(|a| a.reshape(shape.clone()));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| vec![Some(g.reshape(parents[0].shape()))]),
        )
    }

    /// Axis permutation (numpy `transpose(perm)` semantics).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let perm_owned = perm.to_vec();
        let value = self.with_value(|a| linalg::permute(a, &perm_owned));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| {
                vec![Some(linalg::permute(
                    g,
                    &linalg::inverse_permutation(&perm_owned),
                ))]
            }),
        )
    }

    /// Swaps the last two axes.
    pub fn transpose_last2(&self) -> Tensor {
        let rank = self.shape().rank();
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(rank - 1, rank - 2);
        self.permute(&perm)
    }

    /// Concatenates tensors along the last axis.
    pub fn concat_last(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let values: Vec<NdArray> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&NdArray> = values.iter().collect();
        let value = linalg::concat_last(&refs);
        let widths: Vec<usize> = values.iter().map(|v| *v.dims().last().unwrap()).collect();
        Tensor::from_op(
            value,
            parts.to_vec(),
            Box::new(move |g, _| {
                let mut out = Vec::with_capacity(widths.len());
                let mut start = 0;
                for &w in &widths {
                    out.push(Some(linalg::slice_last(g, start, w)));
                    start += w;
                }
                out
            }),
        )
    }

    /// Slices `[start, start+len)` of the last axis.
    pub fn slice_last(&self, start: usize, len: usize) -> Tensor {
        let value = self.with_value(|a| linalg::slice_last(a, start, len));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p_shape = parents[0].shape();
                let mut full = NdArray::zeros(p_shape.clone());
                let w = *p_shape.dims().last().unwrap();
                let rows = full.numel() / w;
                let dst = full.as_mut_slice();
                let src = g.as_slice();
                for r in 0..rows {
                    dst[r * w + start..r * w + start + len]
                        .copy_from_slice(&src[r * len..(r + 1) * len]);
                }
                vec![Some(full)]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiply: 2-D x 2-D, batched x batched, or batched x shared
    /// 2-D rhs (see [`linalg::bmm`]).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let value = self.with_value(|a| other.with_value(|b| linalg::bmm(a, b)));
        Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                // dA = g . B^T ; dB = A^T . g — both through the shared
                // transposed linalg kernels, no materialized transposes.
                let ga = linalg::bmm_nt(g, &b);
                let gb = if b.shape().rank() == 2 && a.shape().rank() > 2 {
                    // Shared rhs: dB sums over the whole batch, so flatten
                    // the batch into rows of one A^T . g product.
                    let k = *a.dims().last().unwrap();
                    let m = *g.dims().last().unwrap();
                    let rows = a.numel() / k;
                    linalg::matmul2d_tn(&a.reshape([rows, k]), &g.reshape([rows, m]))
                } else {
                    linalg::bmm_tn(&a, g)
                };
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Applies a shared weight to the trailing feature axis:
    /// `x: [..., d] x w: [d, k] -> [..., k]` (flattens leading axes).
    pub fn linear(&self, w: &Tensor) -> Tensor {
        let dims = self.dims();
        let d = *dims.last().expect("linear needs rank >= 1");
        let rows = dims[..dims.len() - 1].iter().product::<usize>();
        let flat = self.reshape([rows, d]);
        let out = flat.matmul(w);
        let mut out_dims = dims[..dims.len() - 1].to_vec();
        out_dims.push(w.dims()[1]);
        out.reshape(out_dims)
    }

    // ------------------------------------------------------------------
    // Softmax / normalization / reductions
    // ------------------------------------------------------------------

    /// Softmax over the last axis.
    pub fn softmax_last(&self) -> Tensor {
        let value = self.with_value(linalg::softmax_last);
        let out = value.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _| vec![Some(linalg::softmax_backward_last(&out, g))]),
        )
    }

    /// Layer normalization over the last axis with learnable `gamma`/`beta`.
    ///
    /// Forward and backward both run through the shared
    /// [`linalg::layer_norm_forward_last`]/[`linalg::layer_norm_backward_last`]
    /// kernels (row-parallel, deterministic chunked `dgamma`/`dbeta`
    /// reduction).
    pub fn layer_norm_last(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let x = self.value();
        let gv = gamma.value();
        let bv = beta.value();
        let (value, xhat, inv_std) = linalg::layer_norm_forward_last(&x, &gv, &bv, eps);
        Tensor::from_op(
            value,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g, parents| {
                let gv = parents[1].value();
                let (dx, dgamma, dbeta) = linalg::layer_norm_backward_last(&xhat, &inv_std, &gv, g);
                vec![Some(dx), Some(dgamma), Some(dbeta)]
            }),
        )
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Tensor {
        let value = NdArray::scalar(self.with_value(|a| a.sum_all()));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let s = g.item();
                vec![Some(NdArray::full(parents[0].shape(), s))]
            }),
        )
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Tensor {
        let n = self.with_value(|a| a.numel()).max(1);
        self.sum().mul_scalar(1.0 / n as f32)
    }

    /// Sum along the last axis.
    pub fn sum_last(&self) -> Tensor {
        let value = self.with_value(linalg::sum_last);
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let p_shape = parents[0].shape();
                let w = *p_shape.dims().last().unwrap();
                let mut out = NdArray::zeros(p_shape.clone());
                let dst = out.as_mut_slice();
                let src = g.as_slice();
                for (r, &gv) in src.iter().enumerate() {
                    for d in dst[r * w..(r + 1) * w].iter_mut() {
                        *d = gv;
                    }
                }
                vec![Some(out)]
            }),
        )
    }

    /// Mean along the last axis.
    pub fn mean_last(&self) -> Tensor {
        let w = *self.dims().last().expect("mean_last needs rank >= 1") as f32;
        self.sum_last().mul_scalar(1.0 / w.max(1.0))
    }

    /// Embedding lookup: gathers rows of a `[vocab, f]` parameter table.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let idx = indices.to_vec();
        let value = self.with_value(|t| linalg::gather_rows(t, &idx));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let v = parents[0].shape().dims()[0];
                vec![Some(linalg::scatter_add_rows(g, &idx, v))]
            }),
        )
    }

    /// Multiplies by a fixed 0/1 (or arbitrary) mask, no grad through mask.
    pub fn mask(&self, mask: &NdArray) -> Tensor {
        self.mul(&Tensor::constant(mask.clone()))
    }

    /// Mean squared error against a constant target, restricted to positions
    /// where `mask` is 1. `mask` must contain at least one 1.
    pub fn mse_masked(&self, target: &NdArray, mask: &NdArray) -> Tensor {
        let count = mask.sum_all();
        assert!(count > 0.0, "mse_masked needs a non-empty mask");
        let diff = self.sub(&Tensor::constant(target.clone()));
        let masked = diff.mask(mask);
        masked.square().sum().mul_scalar(1.0 / count)
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor(id={}, shape={}, requires_grad={})",
            self.id(),
            self.shape(),
            self.requires_grad()
        )
    }
}
