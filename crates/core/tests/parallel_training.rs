//! Thread-count invariance of the full HIRE model: forward, backward, and
//! an entire short training run must produce identical bits whether the
//! compute pool has 1 worker or many.
//!
//! This is the end-to-end seal on the parallel compute layer's contract:
//! the per-kernel guarantees (fixed chunk grids, disjoint output slabs,
//! ordered reductions — see `hire-tensor`'s linalg docs) have to survive
//! composition through attention stacks, autograd, gradient clipping, and
//! the optimizer before they mean anything for reproducibility.

use hire_core::{train, HireConfig, HireModel, TrainConfig, TrainOutcome};
use hire_data::{test_context_with_ratio, Dataset, SyntheticConfig};
use hire_graph::{NeighborhoodSampler, Rating};
use hire_nn::Module;
use hire_par::{with_pool, ThreadPool};
use hire_tensor::NdArray;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_dataset() -> Dataset {
    SyntheticConfig::movielens_like()
        .scaled(40, 30, (8, 14))
        .generate(9)
}

fn base_config() -> HireConfig {
    HireConfig {
        attr_dim: 4,
        num_blocks: 1,
        heads: 2,
        head_dim: 4,
        context_users: 6,
        context_items: 6,
        input_ratio: 0.2,
        enable_mbu: true,
        enable_mbi: true,
        enable_mba: true,
        residual: true,
        layer_norm: true,
    }
}

/// The architectural variations the invariance proof must cover: block
/// depth, context shape, each attention tier alone, and the normalization
/// / residual toggles that change which kernels run.
fn config_zoo() -> Vec<(&'static str, HireConfig)> {
    let base = base_config();
    vec![
        ("base", base.clone()),
        ("three_blocks", base.clone().with_blocks(3)),
        ("wide_context", base.clone().with_context_size(10, 4)),
        ("mbu_only", base.clone().with_layers(true, false, false)),
        ("mbi_only", base.clone().with_layers(false, true, false)),
        ("mba_only", base.clone().with_layers(false, false, true)),
        (
            "no_norm_no_residual",
            HireConfig {
                layer_norm: false,
                residual: false,
                ..base.clone()
            },
        ),
        (
            "many_heads",
            HireConfig {
                heads: 4,
                head_dim: 3,
                ..base
            },
        ),
    ]
}

/// Loss bits and per-parameter gradient bits of one forward+backward.
fn loss_and_grad_bits(config: &HireConfig, dataset: &Dataset) -> (u32, Vec<Vec<u32>>) {
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(77);
    let model = HireModel::new(dataset, config, &mut rng);
    let placeholder = Rating::new(1, 2, dataset.min_rating);
    let ctx = test_context_with_ratio(
        &graph,
        &NeighborhoodSampler,
        &[placeholder],
        config.context_users,
        config.context_items,
        config.input_ratio,
        &mut rng,
    )
    .expect("context");
    let loss = model.context_loss(&ctx, dataset);
    loss.backward();
    let grads = model
        .parameters()
        .iter()
        .map(|p| {
            p.grad()
                .unwrap_or_else(|| NdArray::zeros(p.shape()))
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();
    (loss.item().to_bits(), grads)
}

#[test]
fn him_forward_backward_is_thread_invariant_across_config_zoo() {
    let dataset = small_dataset();
    for (name, config) in config_zoo() {
        let reference = with_pool(&Arc::new(ThreadPool::new(1)), || {
            loss_and_grad_bits(&config, &dataset)
        });
        for threads in [2, 4] {
            let got = with_pool(&Arc::new(ThreadPool::new(threads)), || {
                loss_and_grad_bits(&config, &dataset)
            });
            assert_eq!(
                got.0, reference.0,
                "config `{name}`: loss bits differ at {threads} threads"
            );
            assert_eq!(
                got.1, reference.1,
                "config `{name}`: gradient bits differ at {threads} threads"
            );
        }
    }
}

/// Loss curve and final parameter bits of a short training run.
fn train_bits(dataset: &Dataset) -> (Vec<u32>, Vec<Vec<u32>>) {
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(123);
    let model = HireModel::new(dataset, &base_config(), &mut rng);
    let config = TrainConfig {
        steps: 12,
        batch_size: 2,
        base_lr: 2e-3,
        grad_clip: 1.0,
        ..TrainConfig::paper_default()
    };
    let report = train(
        &model,
        dataset,
        &graph,
        &NeighborhoodSampler,
        &config,
        &mut rng,
    )
    .expect("training");
    assert_eq!(report.outcome, TrainOutcome::Completed);
    let losses = report.steps.iter().map(|s| s.loss.to_bits()).collect();
    let params = model
        .parameters()
        .iter()
        .map(|p| p.value().as_slice().iter().map(|x| x.to_bits()).collect())
        .collect();
    (losses, params)
}

#[test]
fn short_training_run_is_thread_invariant() {
    let dataset = small_dataset();
    let reference = with_pool(&Arc::new(ThreadPool::new(1)), || train_bits(&dataset));
    assert_eq!(reference.0.len(), 12);
    for threads in [4] {
        let got = with_pool(&Arc::new(ThreadPool::new(threads)), || train_bits(&dataset));
        assert_eq!(
            got.0, reference.0,
            "loss trajectory bits differ at {threads} threads"
        );
        assert_eq!(
            got.1, reference.1,
            "final parameter bits differ at {threads} threads"
        );
    }
}
