//! Crash/resume integration tests: a training run interrupted mid-flight
//! and resumed from its durable snapshots must reproduce the uninterrupted
//! run bit-exactly, and a corrupted newest snapshot must fall back to the
//! previous valid one.

use hire_core::{resume_from, train, HireConfig, HireModel, TrainConfig, TrainOutcome};
use hire_data::{Dataset, SyntheticConfig};
use hire_graph::NeighborhoodSampler;
use hire_nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

/// Self-cleaning temp dir (removed on drop even when the test fails).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hire_core_resume_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn small_dataset() -> Dataset {
    SyntheticConfig::movielens_like()
        .scaled(30, 25, (8, 12))
        .generate(3)
}

fn small_model_config() -> HireConfig {
    HireConfig {
        attr_dim: 4,
        num_blocks: 1,
        heads: 2,
        head_dim: 4,
        context_users: 4,
        context_items: 4,
        input_ratio: 0.2,
        enable_mbu: true,
        enable_mbi: true,
        enable_mba: true,
        residual: true,
        layer_norm: true,
    }
}

fn train_config() -> TrainConfig {
    TrainConfig {
        steps: 40,
        batch_size: 2,
        base_lr: 2e-3,
        grad_clip: 1.0,
        ..TrainConfig::paper_default()
    }
}

const SEED: u64 = 42;

/// Runs the full 40 steps uninterrupted and returns the loss curve.
fn uninterrupted_losses(dataset: &Dataset) -> Vec<f32> {
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(SEED);
    let model = HireModel::new(dataset, &small_model_config(), &mut rng);
    let report = train(
        &model,
        dataset,
        &graph,
        &NeighborhoodSampler,
        &train_config(),
        &mut rng,
    )
    .expect("uninterrupted training");
    assert_eq!(report.outcome, TrainOutcome::Completed);
    report.steps.iter().map(|s| s.loss).collect()
}

#[test]
fn interrupted_run_resumes_bit_exactly() {
    let dataset = small_dataset();
    let graph = dataset.graph();
    let tmp = TempDir::new("bit_exact");
    let reference = uninterrupted_losses(&dataset);
    assert_eq!(reference.len(), 40);

    // First "process": halt deterministically after 25 steps, snapshotting
    // every step.
    let mut first_losses = {
        let mut rng = StdRng::seed_from_u64(SEED);
        let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
        let config = TrainConfig {
            checkpoint_dir: Some(tmp.0.clone()),
            checkpoint_every_secs: 0.0,
            halt_after_steps: Some(25),
            ..train_config()
        };
        let report = train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &config,
            &mut rng,
        )
        .expect("interrupted training");
        assert_eq!(report.outcome, TrainOutcome::Interrupted { step: 24 });
        report.steps.iter().map(|s| s.loss).collect::<Vec<_>>()
    };

    // Second "process": fresh RNG and model built exactly as before, then
    // resume — the snapshot overwrites both.
    let resumed_losses = {
        let mut rng = StdRng::seed_from_u64(SEED);
        let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
        let report = resume_from(
            tmp.0.clone(),
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &train_config(),
            &mut rng,
        )
        .expect("resumed training");
        assert_eq!(report.outcome, TrainOutcome::Completed);
        let losses: Vec<f32> = report.steps.iter().map(|s| s.loss).collect();
        assert_eq!(report.steps.first().map(|s| s.step), Some(25));
        // The resumed model's weights must be finite and usable.
        for p in model.parameters() {
            assert!(!p.value().has_non_finite());
        }
        losses
    };

    first_losses.extend(resumed_losses);
    assert_eq!(
        first_losses, reference,
        "interrupted + resumed loss curve must be bit-identical to the uninterrupted run"
    );
}

#[test]
fn resume_falls_back_when_newest_snapshot_is_corrupted() {
    let dataset = small_dataset();
    let graph = dataset.graph();
    let tmp = TempDir::new("fallback");

    {
        let mut rng = StdRng::seed_from_u64(SEED);
        let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
        let config = TrainConfig {
            checkpoint_dir: Some(tmp.0.clone()),
            checkpoint_every_secs: 0.0,
            checkpoint_keep_last: 10,
            halt_after_steps: Some(10),
            ..train_config()
        };
        train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &config,
            &mut rng,
        )
        .expect("interrupted training");
    }

    // Corrupt the newest snapshot file (bit flip mid-payload).
    let mut snapshots: Vec<PathBuf> = fs::read_dir(&tmp.0)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "hckpt"))
        .collect();
    snapshots.sort();
    assert!(snapshots.len() >= 2, "need at least two snapshots");
    let newest = snapshots.last().unwrap();
    let mut bytes = fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(newest, &bytes).unwrap();

    // Resume must skip the corrupt file and continue from the previous
    // valid snapshot (step 9) instead of erroring out.
    let mut rng = StdRng::seed_from_u64(SEED);
    let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
    let report = resume_from(
        tmp.0.clone(),
        &model,
        &dataset,
        &graph,
        &NeighborhoodSampler,
        &train_config(),
        &mut rng,
    )
    .expect("resume with corrupt newest snapshot");
    assert_eq!(report.outcome, TrainOutcome::Completed);
    assert_eq!(
        report.steps.first().map(|s| s.step),
        Some(9),
        "must fall back to the snapshot before the corrupted one"
    );
}

#[test]
fn resume_refuses_different_hyper_parameters() {
    let dataset = small_dataset();
    let graph = dataset.graph();
    let tmp = TempDir::new("fingerprint");

    {
        let mut rng = StdRng::seed_from_u64(SEED);
        let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
        let config = TrainConfig {
            checkpoint_dir: Some(tmp.0.clone()),
            checkpoint_every_secs: 0.0,
            halt_after_steps: Some(5),
            ..train_config()
        };
        train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &config,
            &mut rng,
        )
        .expect("interrupted training");
    }

    let mut rng = StdRng::seed_from_u64(SEED);
    let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
    let different = TrainConfig {
        base_lr: 9e-3, // not what the snapshot was trained with
        ..train_config()
    };
    let err = resume_from(
        tmp.0.clone(),
        &model,
        &dataset,
        &graph,
        &NeighborhoodSampler,
        &different,
        &mut rng,
    )
    .expect_err("fingerprint mismatch must refuse to resume");
    assert!(
        err.to_string().contains("hyper-parameters"),
        "unexpected error: {err}"
    );
}

#[test]
fn resume_on_empty_dir_is_a_fresh_run() {
    let dataset = small_dataset();
    let graph = dataset.graph();
    let tmp = TempDir::new("fresh");

    let mut rng = StdRng::seed_from_u64(SEED);
    let model = HireModel::new(&dataset, &small_model_config(), &mut rng);
    let config = TrainConfig {
        steps: 6,
        ..train_config()
    };
    let report = resume_from(
        tmp.0.clone(),
        &model,
        &dataset,
        &graph,
        &NeighborhoodSampler,
        &config,
        &mut rng,
    )
    .expect("fresh start under resume");
    assert_eq!(report.outcome, TrainOutcome::Completed);
    assert_eq!(report.steps.first().map(|s| s.step), Some(0));
    // And it left snapshots behind for the next resume.
    let count = fs::read_dir(&tmp.0)
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "hckpt"))
        .count();
    assert!(count >= 1);
}
