//! Property tests for the shared backoff utility: the one schedule used by
//! both training recovery (`hire_core::trainer`) and serving retries
//! (`hire_serve::Server::predict_with_retry` / the engine's model-tier
//! retry loop).

use hire_core::{Backoff, BackoffConfig};
use proptest::prelude::*;
use std::time::Duration;

fn config(base_ms: u64, factor: f64, max_ms: u64, jitter: f64) -> BackoffConfig {
    BackoffConfig {
        base: Duration::from_millis(base_ms),
        factor,
        max_delay: Duration::from_millis(max_ms),
        jitter,
    }
}

fn schedule(cfg: &BackoffConfig, seed: u64, len: usize) -> Vec<Duration> {
    let mut backoff = Backoff::new(cfg.clone(), seed);
    (0..len).map(|_| backoff.next_delay()).collect()
}

proptest! {
    #[test]
    fn same_seed_and_config_replay_the_same_schedule(
        seed in 0u64..u64::MAX,
        base in 1u64..20u64,
        factor in 1.0f64..4.0,
        max_ms in 1u64..200u64,
        jitter in 0.0f64..1.0,
    ) {
        let cfg = config(base, factor, max_ms, jitter);
        prop_assert_eq!(schedule(&cfg, seed, 16), schedule(&cfg, seed, 16));
    }

    #[test]
    fn every_delay_is_bounded_by_max_delay(
        seed in 0u64..u64::MAX,
        base in 1u64..50u64,
        factor in 1.0f64..8.0,
        max_ms in 1u64..100u64,
        jitter in 0.0f64..1.0,
    ) {
        let cfg = config(base, factor, max_ms, jitter);
        for (k, d) in schedule(&cfg, seed, 24).iter().enumerate() {
            prop_assert!(
                *d <= cfg.max_delay,
                "attempt {k}: delay {d:?} exceeds cap {:?}",
                cfg.max_delay
            );
        }
    }

    #[test]
    fn reset_restarts_the_attempt_ladder_not_the_jitter_stream(
        seed in 0u64..u64::MAX,
        base in 1u64..20u64,
        factor in 1.5f64..4.0,
    ) {
        // With jitter off, delays are a pure function of the attempt
        // index, so reset() must reproduce the ladder exactly.
        let cfg = config(base, factor, 10_000, 0.0);
        let mut backoff = Backoff::new(cfg.clone(), seed);
        let first: Vec<Duration> = (0..6).map(|_| backoff.next_delay()).collect();
        backoff.reset();
        let second: Vec<Duration> = (0..6).map(|_| backoff.next_delay()).collect();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn train_recovery_and_serve_retry_call_sites_share_one_schedule(
        seed in 0u64..u64::MAX,
        base in 1u64..20u64,
        factor in 1.0f64..4.0,
        max_ms in 1u64..200u64,
        jitter in 0.0f64..1.0,
    ) {
        // Both call sites construct `Backoff::new(config, seed)` and pull
        // `next_delay()` — there is exactly one implementation, so two
        // independently constructed instances must agree delay-for-delay.
        // (This is the regression guard for the dedup: if either site ever
        // grows its own arithmetic again, its schedule will drift.)
        let cfg = config(base, factor, max_ms, jitter);
        let as_serve_does = schedule(&cfg, seed, 12);
        let as_trainer_does = {
            let mut b = Backoff::new(cfg.clone(), seed);
            let mut out = Vec::new();
            for _ in 0..12 {
                out.push(b.next_delay());
            }
            out
        };
        prop_assert_eq!(as_serve_does, as_trainer_does);
    }

    #[test]
    fn geometric_scale_is_bit_identical_to_incremental_multiply(
        factor in 0.05f32..1.0,
        attempts in 0usize..64,
    ) {
        // The trainer historically tracked `lr_scale *= lr_backoff` across
        // recoveries; checkpoint resume recomputes it as
        // `Backoff::geometric(lr_backoff, total_recoveries)`. Bit equality
        // keeps resumed runs byte-identical to uninterrupted ones.
        let mut incremental = 1.0f32;
        for _ in 0..attempts {
            incremental *= factor;
        }
        prop_assert_eq!(
            Backoff::geometric(factor, attempts).to_bits(),
            incremental.to_bits()
        );
    }
}
