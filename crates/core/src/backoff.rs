//! Seeded, jittered exponential backoff.
//!
//! One utility shared by every retry-shaped path in the workspace:
//!
//! - **Training recovery** (`trainer`): after a divergence rollback the
//!   learning rate is scaled by [`Backoff::geometric`] — the same
//!   `factor^attempt` decay the retry delays follow, computed by repeated
//!   `f32` multiplication so resumed runs stay bit-identical.
//! - **Serve retries** (`hire-serve`): transient failures (lost workers,
//!   injected faults) are retried after [`Backoff::next_delay`] — an
//!   exponentially growing, `max_delay`-capped wait with deterministic
//!   SplitMix64 jitter, so two runs with the same seed retry at the same
//!   instants and a thundering herd with distinct seeds does not.
//!
//! Determinism is the point: the whole workspace is replayable under a
//! fixed seed, and retry timing must not be the one exception.

use std::time::Duration;

/// Advances a SplitMix64 state and returns the next 64 uniform bits. The
/// same mixer the context-sampling seeds and the chaos fault schedules
/// use, kept here so backoff jitter shares their replay guarantees.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shape of an exponential backoff schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base: Duration,
    /// Growth factor per attempt (≥ 1 for retries; the trainer's LR decay
    /// uses factors < 1 through [`Backoff::geometric`]).
    pub factor: f64,
    /// Hard cap on any single delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by
    /// `1 - jitter * u` with `u` uniform in `[0, 1)`, so jittered delays
    /// never exceed the un-jittered schedule (and stay under `max_delay`).
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(2),
            factor: 2.0,
            max_delay: Duration::from_millis(50),
            jitter: 0.5,
        }
    }
}

/// A seeded backoff schedule: call [`Backoff::next_delay`] once per retry.
#[derive(Debug, Clone)]
pub struct Backoff {
    config: BackoffConfig,
    state: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule whose jitter stream is derived from `seed`. Identical
    /// `(config, seed)` pairs produce identical delay sequences, at every
    /// call site.
    pub fn new(config: BackoffConfig, seed: u64) -> Self {
        Backoff {
            config,
            state: seed,
            attempt: 0,
        }
    }

    /// Retries taken so far (delays handed out).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next delay: `base * factor^attempt`, capped at `max_delay`,
    /// scaled down by the seeded jitter.
    pub fn next_delay(&mut self) -> Duration {
        let raw = self.config.base.as_secs_f64() * self.config.factor.powi(self.attempt as i32);
        let capped = raw.min(self.config.max_delay.as_secs_f64());
        let u = (splitmix64(&mut self.state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let jittered = capped * (1.0 - self.config.jitter.clamp(0.0, 1.0) * u);
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// Restarts the schedule (attempt counter only — the jitter stream
    /// keeps advancing so restarted schedules stay decorrelated).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Pure geometric decay `factor^attempts`, computed by repeated `f32`
    /// multiplication from 1.0 — bit-identical to applying `*= factor`
    /// once per attempt, which is what makes the trainer's recovery LR
    /// scale reproducible across checkpoint resume.
    pub fn geometric(factor: f32, attempts: usize) -> f32 {
        (0..attempts).fold(1.0f32, |scale, _| scale * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let config = BackoffConfig::default();
        let mut a = Backoff::new(config.clone(), 7);
        let mut b = Backoff::new(config, 7);
        for _ in 0..16 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_are_capped_and_grow_until_the_cap() {
        let config = BackoffConfig {
            base: Duration::from_millis(1),
            factor: 2.0,
            max_delay: Duration::from_millis(8),
            jitter: 0.0,
        };
        let mut backoff = Backoff::new(config, 0);
        let delays: Vec<Duration> = (0..6).map(|_| backoff.next_delay()).collect();
        assert_eq!(delays[0], Duration::from_millis(1));
        assert_eq!(delays[1], Duration::from_millis(2));
        assert_eq!(delays[2], Duration::from_millis(4));
        assert_eq!(delays[3], Duration::from_millis(8));
        assert_eq!(delays[4], Duration::from_millis(8), "capped at max_delay");
        assert_eq!(delays[5], Duration::from_millis(8));
    }

    #[test]
    fn geometric_matches_repeated_multiplication() {
        let factor = 0.5f32;
        let mut incremental = 1.0f32;
        for k in 0..8 {
            assert_eq!(Backoff::geometric(factor, k), incremental);
            incremental *= factor;
        }
    }
}
