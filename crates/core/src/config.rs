//! HIRE model configuration.

/// Hyper-parameters of the HIRE model.
///
/// [`HireConfig::paper_default`] reproduces § VI-A of the paper: 3 HIM
/// blocks, 8 heads x 16 dims per MHSA, 32x32 prediction contexts, 10 % of
/// observed ratings visible as input. [`HireConfig::fast`] is a scaled-down
/// configuration for CPU-budget experiments and tests; the architecture is
/// identical.
#[derive(Debug, Clone)]
pub struct HireConfig {
    /// Embedding dimension `f` for each attribute (and the rating channel).
    pub attr_dim: usize,
    /// Number of HIM blocks `K`.
    pub num_blocks: usize,
    /// Attention heads per MHSA layer.
    pub heads: usize,
    /// Dimension of each attention head.
    pub head_dim: usize,
    /// Users per prediction context (`n`).
    pub context_users: usize,
    /// Items per prediction context (`m`).
    pub context_items: usize,
    /// Fraction of observed in-context ratings revealed as input
    /// (paper: 0.1; the remaining 90 % are masked targets).
    pub input_ratio: f32,
    /// Enable the user-user attention layer (MBU). Disabled in ablations.
    pub enable_mbu: bool,
    /// Enable the item-item attention layer (MBI).
    pub enable_mbi: bool,
    /// Enable the attribute-attribute attention layer (MBA).
    pub enable_mba: bool,
    /// Residual connections around each attention layer. The paper does not
    /// spell these out; deep attention stacks need them to train (DESIGN.md
    /// §5). They preserve permutation equivariance.
    pub residual: bool,
    /// LayerNorm after each attention layer (same caveat as `residual`).
    pub layer_norm: bool,
}

impl HireConfig {
    /// The configuration from the paper's implementation details.
    pub fn paper_default() -> Self {
        HireConfig {
            attr_dim: 16,
            num_blocks: 3,
            heads: 8,
            head_dim: 16,
            context_users: 32,
            context_items: 32,
            input_ratio: 0.1,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        }
    }

    /// A CPU-friendly configuration with the same architecture (used by the
    /// scaled-down benchmark harness and tests).
    pub fn fast() -> Self {
        HireConfig {
            attr_dim: 8,
            num_blocks: 2,
            heads: 4,
            head_dim: 8,
            context_users: 16,
            context_items: 16,
            input_ratio: 0.1,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        }
    }

    /// Sets the number of HIM blocks (sensitivity analysis, Fig. 7a-c).
    pub fn with_blocks(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.num_blocks = k;
        self
    }

    /// Sets the context size (sensitivity analysis, Fig. 7d-f).
    pub fn with_context_size(mut self, n: usize, m: usize) -> Self {
        assert!(n >= 1 && m >= 1);
        self.context_users = n;
        self.context_items = m;
        self
    }

    /// Toggles attention layers (ablation study, Table VI).
    pub fn with_layers(mut self, mbu: bool, mbi: bool, mba: bool) -> Self {
        assert!(
            mbu || mbi || mba,
            "at least one attention layer must remain"
        );
        self.enable_mbu = mbu;
        self.enable_mbi = mbi;
        self.enable_mba = mba;
        self
    }
}

impl Default for HireConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6a() {
        let c = HireConfig::paper_default();
        assert_eq!(c.num_blocks, 3);
        assert_eq!(c.heads, 8);
        assert_eq!(c.head_dim, 16);
        assert_eq!(c.context_users, 32);
        assert_eq!(c.context_items, 32);
        assert!((c.input_ratio - 0.1).abs() < 1e-6);
    }

    #[test]
    fn builders_apply() {
        let c = HireConfig::fast()
            .with_blocks(4)
            .with_context_size(8, 12)
            .with_layers(true, false, true);
        assert_eq!(c.num_blocks, 4);
        assert_eq!(c.context_users, 8);
        assert_eq!(c.context_items, 12);
        assert!(!c.enable_mbi);
    }

    #[test]
    #[should_panic(expected = "at least one attention layer")]
    fn all_layers_off_panics() {
        HireConfig::fast().with_layers(false, false, false);
    }
}
