//! The Heterogeneous Interaction Module (HIM, § IV-C): three stacked
//! parameter-sharing MHSA layers modeling interactions between users (MBU),
//! between items (MBI) and between attributes (MBA).

use crate::config::HireConfig;
use hire_nn::{LayerNorm, Module, MultiHeadSelfAttention};
use hire_tensor::{NdArray, Tensor};
use rand::Rng;

/// Attention weights captured from one HIM block (for the Fig. 9 case
/// study). Empty arrays for disabled layers.
#[derive(Debug, Clone)]
pub struct HimAttention {
    /// MBU weights `[m, heads, n, n]` — user-user attention per item view.
    pub mbu: NdArray,
    /// MBI weights `[n, heads, m, m]` — item-item attention per user view.
    pub mbi: NdArray,
    /// MBA weights `[n*m, heads, h, h]` — attribute attention per pair.
    pub mba: NdArray,
}

/// One HIM block.
pub struct HimBlock {
    mbu: Option<MultiHeadSelfAttention>,
    mbi: Option<MultiHeadSelfAttention>,
    mba: Option<MultiHeadSelfAttention>,
    norm_mbu: Option<LayerNorm>,
    norm_mbi: Option<LayerNorm>,
    norm_mba: Option<LayerNorm>,
    residual: bool,
    num_attrs: usize,
    attr_dim: usize,
}

impl HimBlock {
    /// Builds a block for embeddings of `num_attrs * attr_dim` channels.
    pub fn new(config: &HireConfig, num_attrs: usize, rng: &mut impl Rng) -> Self {
        let e = num_attrs * config.attr_dim;
        let (heads, head_dim) = (config.heads, config.head_dim);
        let norm = |enabled: bool, dim: usize| enabled.then(|| LayerNorm::new(dim));
        HimBlock {
            mbu: config
                .enable_mbu
                .then(|| MultiHeadSelfAttention::new(e, heads, head_dim, rng)),
            mbi: config
                .enable_mbi
                .then(|| MultiHeadSelfAttention::new(e, heads, head_dim, rng)),
            mba: config
                .enable_mba
                .then(|| MultiHeadSelfAttention::new(config.attr_dim, heads, head_dim, rng)),
            norm_mbu: if config.enable_mbu {
                norm(config.layer_norm, e)
            } else {
                None
            },
            norm_mbi: if config.enable_mbi {
                norm(config.layer_norm, e)
            } else {
                None
            },
            norm_mba: if config.enable_mba {
                norm(config.layer_norm, e)
            } else {
                None
            },
            residual: config.residual,
            num_attrs,
            attr_dim: config.attr_dim,
        }
    }

    fn post(&self, x: &Tensor, y: Tensor, norm: &Option<LayerNorm>) -> Tensor {
        let z = if self.residual { x.add(&y) } else { y };
        match norm {
            Some(ln) => ln.forward(&z),
            None => z,
        }
    }

    /// Applies the block to `H ∈ R^{n×m×e}` (Eq. 10-15).
    pub fn forward(&self, h: &Tensor) -> Tensor {
        self.run(h, false).0
    }

    /// Applies the block and captures attention weights.
    pub fn forward_with_attention(&self, h: &Tensor) -> (Tensor, HimAttention) {
        self.run(h, true)
    }

    fn run(&self, h: &Tensor, keep: bool) -> (Tensor, HimAttention) {
        let dims = h.dims();
        assert_eq!(dims.len(), 3, "HIM input must be [n, m, e]");
        let (n, m, e) = (dims[0], dims[1], dims[2]);
        assert_eq!(
            e,
            self.num_attrs * self.attr_dim,
            "embedding width mismatch"
        );

        let empty = NdArray::zeros([0]);
        let mut attn = HimAttention {
            mbu: empty.clone(),
            mbi: empty.clone(),
            mba: empty,
        };

        // MBU: tokens = users, batch = items. H[:, j, :] per item view.
        let mut x = h.clone();
        if let Some(mbu) = &self.mbu {
            let per_item = x.permute(&[1, 0, 2]); // [m, n, e]
            let y = if keep {
                let out = mbu.forward_with_weights(&per_item);
                attn.mbu = out.weights;
                out.output
            } else {
                mbu.forward(&per_item)
            };
            let y = y.permute(&[1, 0, 2]); // back to [n, m, e]
            x = self.post(&x, y, &self.norm_mbu);
        }

        // MBI: tokens = items, batch = users. H[k, :, :] per user view.
        if let Some(mbi) = &self.mbi {
            let y = if keep {
                let out = mbi.forward_with_weights(&x);
                attn.mbi = out.weights;
                out.output
            } else {
                mbi.forward(&x)
            };
            x = self.post(&x, y, &self.norm_mbi);
        }

        // MBA: tokens = attributes, batch = all user-item pairs.
        if let Some(mba) = &self.mba {
            let reshaped = x.reshape([n * m, self.num_attrs, self.attr_dim]);
            let y = if keep {
                let out = mba.forward_with_weights(&reshaped);
                attn.mba = out.weights;
                out.output
            } else {
                mba.forward(&reshaped)
            };
            let y = y.reshape([n, m, e]);
            x = self.post(&x, y, &self.norm_mba);
        }

        (x, attn)
    }
}

impl Module for HimBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for mhsa in [&self.mbu, &self.mbi, &self.mba].into_iter().flatten() {
            p.extend(mhsa.parameters());
        }
        for norm in [&self.norm_mbu, &self.norm_mbi, &self.norm_mba]
            .into_iter()
            .flatten()
        {
            p.extend(norm.parameters());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config() -> HireConfig {
        HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 4,
            context_items: 3,
            input_ratio: 0.1,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        }
    }

    fn input(n: usize, m: usize, e: usize, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::constant(NdArray::randn([n, m, e], 0.0, 1.0, &mut rng))
    }

    #[test]
    fn forward_preserves_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let block = HimBlock::new(&config(), 5, &mut rng);
        let h = input(4, 3, 20, 1);
        assert_eq!(block.forward(&h).dims(), vec![4, 3, 20]);
    }

    #[test]
    fn attention_shapes_match_views() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let block = HimBlock::new(&config(), 5, &mut rng);
        let h = input(4, 3, 20, 2);
        let (_, attn) = block.forward_with_attention(&h);
        assert_eq!(
            attn.mbu.dims(),
            &[3, 2, 4, 4],
            "item views x heads x users^2"
        );
        assert_eq!(
            attn.mbi.dims(),
            &[4, 2, 3, 3],
            "user views x heads x items^2"
        );
        assert_eq!(attn.mba.dims(), &[12, 2, 5, 5], "pairs x heads x attrs^2");
    }

    #[test]
    fn ablated_layers_are_skipped() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cfg = config().with_layers(false, true, false);
        let block = HimBlock::new(&cfg, 5, &mut rng);
        let h = input(4, 3, 20, 3);
        let (_, attn) = block.forward_with_attention(&h);
        assert_eq!(attn.mbu.numel(), 0);
        assert!(attn.mbi.numel() > 0);
        assert_eq!(attn.mba.numel(), 0);
        // fewer params than the full block
        let full = HimBlock::new(&config(), 5, &mut rng);
        assert!(block.num_parameters() < full.num_parameters());
    }

    #[test]
    fn gradients_flow_through_block() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let block = HimBlock::new(&config(), 5, &mut rng);
        let h = input(4, 3, 20, 4);
        block.forward(&h).square().sum().backward();
        for (i, p) in block.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    /// Property 5.1: permuting users and items permutes the output the same
    /// way (per-block version; the full-model test lives in the model
    /// module).
    #[test]
    fn block_is_permutation_equivariant() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let block = HimBlock::new(&config(), 5, &mut rng);
        let h_val = NdArray::randn([4, 3, 20], 0.0, 1.0, &mut rng);
        let out = block.forward(&Tensor::constant(h_val.clone())).value();

        let user_perm = [2usize, 0, 3, 1];
        let item_perm = [1usize, 2, 0];
        let mut permuted = NdArray::zeros([4, 3, 20]);
        for (r, &pr) in user_perm.iter().enumerate() {
            for (c, &pc) in item_perm.iter().enumerate() {
                for d in 0..20 {
                    *permuted.at_mut(&[r, c, d]) = h_val.at(&[pr, pc, d]);
                }
            }
        }
        let out_p = block.forward(&Tensor::constant(permuted)).value();
        for (r, &pr) in user_perm.iter().enumerate() {
            for (c, &pc) in item_perm.iter().enumerate() {
                for d in 0..20 {
                    let a = out_p.at(&[r, c, d]);
                    let b = out.at(&[pr, pc, d]);
                    assert!(
                        (a - b).abs() < 1e-3,
                        "mismatch at ({r},{c},{d}): {a} vs {b}"
                    );
                }
            }
        }
    }
}
