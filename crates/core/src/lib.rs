//! # hire-core
//!
//! The paper's primary contribution: the **Heterogeneous Interaction Rating
//! nEtwork (HIRE)** for cold-start rating prediction.
//!
//! - [`HireConfig`] — hyper-parameters (paper defaults in
//!   [`HireConfig::paper_default`])
//! - [`ContextEncoder`] — Eq. (6)-(9): per-attribute embeddings assembled
//!   into the context tensor `H ∈ R^{n×m×e}`
//! - [`HimBlock`] — § IV-C: the three stacked MHSA layers (MBU, MBI, MBA)
//! - [`HireModel`] — encoder → K HIMs → `α · sigmoid(g(H))` decoder
//! - [`train`] — Algorithm 1 with LAMB + Lookahead + flat-then-anneal LR
//! - [`resume_from`] — bit-exact crash resume from durable snapshots
//!   (see `hire-ckpt`)
//! - [`train_hybrid`] — the lightweight bias + content [`HybridModel`]
//!   served as a degradation mid-tier by `hire-serve` (DESIGN.md §13)
//!
//! The model is permutation equivariant over context users and items
//! (Property 5.1) — enforced by tests in `him.rs`/`model.rs` and the
//! property suite under `tests/`.

pub mod backoff;
pub mod config;
pub mod encoder;
pub mod guard;
pub mod him;
pub mod hybrid;
pub mod model;
pub mod trainer;

pub use backoff::{Backoff, BackoffConfig};
pub use config::HireConfig;
pub use encoder::ContextEncoder;
pub use guard::{
    DivergenceReason, GuardConfig, NumericalGuard, ParameterCheckpoint, RecoveryEvent,
    TrainOutcome, TrainReport,
};
pub use him::{HimAttention, HimBlock};
pub use hybrid::{train_hybrid, HybridConfig, HybridModel};
pub use model::HireModel;
pub use trainer::{fine_tune, resume_from, train, train_guarded, StepStats, TrainConfig};
