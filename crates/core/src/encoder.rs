//! Context encoder: builds the initial embedding tensor `H ∈ R^{n×m×e}`
//! of Eq. (6)-(9) from a [`PredictionContext`].

use hire_data::{Dataset, PredictionContext};
use hire_nn::{Embedding, Module};
use hire_tensor::{NdArray, Tensor};
use rand::Rng;

/// Per-attribute embedding tables for users, items and ratings.
///
/// Each categorical attribute `k` owns a linear map from its one-hot
/// encoding to an `f`-dimensional feature — realized as an [`Embedding`]
/// gather (mathematically identical, see Eq. (7)-(9)). Entities without
/// attributes use their ID as the unique attribute, exactly as § IV-B
/// prescribes.
pub struct ContextEncoder {
    user_embeddings: Vec<Embedding>,
    item_embeddings: Vec<Embedding>,
    rating_embedding: Embedding,
    attr_dim: usize,
    rating_levels: usize,
    min_rating: f32,
}

impl ContextEncoder {
    /// Builds the encoder for a dataset's schema.
    pub fn new(dataset: &Dataset, attr_dim: usize, rng: &mut impl Rng) -> Self {
        let user_embeddings = if dataset.user_schema.is_id_only() {
            vec![Embedding::new(dataset.num_users, attr_dim, rng)]
        } else {
            dataset
                .user_schema
                .attributes()
                .iter()
                .map(|a| Embedding::new(a.cardinality, attr_dim, rng))
                .collect()
        };
        let item_embeddings = if dataset.item_schema.is_id_only() {
            vec![Embedding::new(dataset.num_items, attr_dim, rng)]
        } else {
            dataset
                .item_schema
                .attributes()
                .iter()
                .map(|a| Embedding::new(a.cardinality, attr_dim, rng))
                .collect()
        };
        ContextEncoder {
            user_embeddings,
            item_embeddings,
            rating_embedding: Embedding::new(dataset.rating_levels, attr_dim, rng),
            attr_dim,
            rating_levels: dataset.rating_levels,
            min_rating: dataset.min_rating,
        }
    }

    /// Number of user attributes `h_u` (1 for ID-only).
    pub fn num_user_attrs(&self) -> usize {
        self.user_embeddings.len()
    }

    /// Number of item attributes `h_i` (1 for ID-only).
    pub fn num_item_attrs(&self) -> usize {
        self.item_embeddings.len()
    }

    /// Total attribute count `h = h_u + h_i + 1` (the +1 is the rating
    /// channel).
    pub fn num_attrs(&self) -> usize {
        self.num_user_attrs() + self.num_item_attrs() + 1
    }

    /// Embedding width `e = h * f`.
    pub fn embed_dim(&self) -> usize {
        self.num_attrs() * self.attr_dim
    }

    /// Per-attribute feature width `f`.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Attribute codes for a user: schema codes, or `[user_id]` if ID-only.
    fn user_codes(dataset: &Dataset, user: usize) -> Vec<usize> {
        if dataset.user_schema.is_id_only() {
            vec![user]
        } else {
            dataset.user_attrs[user].clone()
        }
    }

    /// Attribute codes for an item (see [`Self::user_codes`]).
    fn item_codes(dataset: &Dataset, item: usize) -> Vec<usize> {
        if dataset.item_schema.is_id_only() {
            vec![item]
        } else {
            dataset.item_attrs[item].clone()
        }
    }

    /// Encodes a context into `H ∈ R^{n×m×e}` with
    /// `H[k,j,:] = [x_{u_k} ‖ x_{i_j} ‖ x_r]` (Eq. 6). Masked ratings (any
    /// cell where `input_mask` is 0) contribute a zero rating feature.
    pub fn encode(&self, ctx: &PredictionContext, dataset: &Dataset) -> Tensor {
        let n = ctx.n();
        let m = ctx.m();
        let f = self.attr_dim;

        // x_u: [n, h_u * f], one embedding per attribute, concatenated.
        let user_feats: Vec<Tensor> = self
            .user_embeddings
            .iter()
            .enumerate()
            .map(|(k, emb)| {
                let codes: Vec<usize> = ctx
                    .users
                    .iter()
                    .map(|&u| Self::user_codes(dataset, u)[k])
                    .collect();
                emb.forward(&codes)
            })
            .collect();
        let x_u = Tensor::concat_last(&user_feats); // [n, hu*f]

        let item_feats: Vec<Tensor> = self
            .item_embeddings
            .iter()
            .enumerate()
            .map(|(k, emb)| {
                let codes: Vec<usize> = ctx
                    .items
                    .iter()
                    .map(|&i| Self::item_codes(dataset, i)[k])
                    .collect();
                emb.forward(&codes)
            })
            .collect();
        let x_i = Tensor::concat_last(&item_feats); // [m, hi*f]

        // x_r: [n*m, f]; visible cells gather their level embedding, masked
        // cells are zeroed (Eq. 9 with e_r = 0 for masked ratings).
        let mut codes = Vec::with_capacity(n * m);
        for flat in 0..n * m {
            let visible = ctx.input_mask.as_slice()[flat] == 1.0;
            let code = if visible {
                let value = ctx.ratings.as_slice()[flat];
                ((value - self.min_rating).round() as usize).min(self.rating_levels - 1)
            } else {
                0 // placeholder row; multiplied by 0 below
            };
            codes.push(code);
        }
        let raw_r = self.rating_embedding.forward(&codes); // [n*m, f]
        let mut mask = NdArray::zeros([n * m, f]);
        for flat in 0..n * m {
            if ctx.input_mask.as_slice()[flat] == 1.0 {
                for j in 0..f {
                    mask.as_mut_slice()[flat * f + j] = 1.0;
                }
            }
        }
        let x_r = raw_r.mask(&mask).reshape([n, m, f]);

        // Broadcast x_u across columns and x_i across rows, then concat.
        let hu_f = self.num_user_attrs() * f;
        let hi_f = self.num_item_attrs() * f;
        let ones_u = Tensor::constant(NdArray::ones([n, m, hu_f]));
        let ones_i = Tensor::constant(NdArray::ones([n, m, hi_f]));
        let u_grid = x_u.reshape([n, 1, hu_f]).mul(&ones_u); // [n, m, hu*f]
        let i_grid = x_i.reshape([1, m, hi_f]).mul(&ones_i); // [n, m, hi*f]
        Tensor::concat_last(&[u_grid, i_grid, x_r])
    }
}

impl Module for ContextEncoder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self
            .user_embeddings
            .iter()
            .chain(&self.item_embeddings)
            .flat_map(|e| e.parameters())
            .collect();
        p.extend(self.rating_embedding.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use hire_graph::{NeighborhoodSampler, Rating};
    use rand::SeedableRng;

    fn setup() -> (Dataset, PredictionContext, ContextEncoder) {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(30, 25, (8, 15))
            .generate(42);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let seed = dataset.ratings[0];
        let ctx =
            hire_data::training_context(&graph, &NeighborhoodSampler, seed, 6, 5, 0.3, &mut rng)
                .expect("training context");
        let encoder = ContextEncoder::new(&dataset, 4, &mut rng);
        (dataset, ctx, encoder)
    }

    #[test]
    fn encode_shape_is_n_m_e() {
        let (dataset, ctx, encoder) = setup();
        // h = 4 user attrs + 4 item attrs + 1 rating = 9; e = 9*4 = 36
        assert_eq!(encoder.num_attrs(), 9);
        assert_eq!(encoder.embed_dim(), 36);
        let h = encoder.encode(&ctx, &dataset);
        assert_eq!(h.dims(), vec![6, 5, 36]);
    }

    #[test]
    fn masked_rating_features_are_zero() {
        let (dataset, ctx, encoder) = setup();
        let h = encoder.encode(&ctx, &dataset).value();
        let f = encoder.attr_dim();
        let e = encoder.embed_dim();
        for (flat, (&inp, &_r)) in ctx
            .input_mask
            .as_slice()
            .iter()
            .zip(ctx.ratings.as_slice())
            .enumerate()
        {
            let (row, col) = (flat / ctx.m(), flat % ctx.m());
            let rating_slice: Vec<f32> = (e - f..e).map(|d| h.at(&[row, col, d])).collect();
            if inp == 0.0 {
                assert!(
                    rating_slice.iter().all(|&x| x == 0.0),
                    "masked cell ({row},{col}) has nonzero rating feature"
                );
            } else {
                assert!(
                    rating_slice.iter().any(|&x| x != 0.0),
                    "visible cell ({row},{col}) lost its rating feature"
                );
            }
        }
    }

    #[test]
    fn same_user_shares_features_across_columns() {
        let (dataset, ctx, encoder) = setup();
        let h = encoder.encode(&ctx, &dataset).value();
        let f = encoder.attr_dim();
        let hu_f = encoder.num_user_attrs() * f;
        for d in 0..hu_f {
            let a = h.at(&[0, 0, d]);
            for col in 1..ctx.m() {
                assert_eq!(
                    h.at(&[0, col, d]),
                    a,
                    "user features must tile across items"
                );
            }
        }
    }

    #[test]
    fn id_only_dataset_uses_id_embeddings() {
        let dataset = SyntheticConfig::douban_like()
            .scaled(20, 25, (5, 10))
            .generate(7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let encoder = ContextEncoder::new(&dataset, 4, &mut rng);
        assert_eq!(encoder.num_user_attrs(), 1);
        assert_eq!(encoder.num_item_attrs(), 1);
        assert_eq!(encoder.num_attrs(), 3);
        let graph = dataset.graph();
        let ctx = hire_data::training_context(
            &graph,
            &NeighborhoodSampler,
            dataset.ratings[0],
            4,
            4,
            0.2,
            &mut rng,
        )
        .expect("training context");
        let h = encoder.encode(&ctx, &dataset);
        assert_eq!(h.dims(), vec![4, 4, 12]);
    }

    #[test]
    fn gradients_flow_to_embeddings() {
        let (dataset, ctx, encoder) = setup();
        let h = encoder.encode(&ctx, &dataset);
        h.square().sum().backward();
        // user/item embeddings always receive grad; the rating embedding
        // receives grad only if some input cell is visible
        let params = encoder.parameters();
        let with_grad = params.iter().filter(|p| p.grad().is_some()).count();
        assert!(
            with_grad >= params.len() - 1,
            "{with_grad}/{}",
            params.len()
        );
    }

    #[test]
    fn unused_rating_rows_get_no_gradient() {
        // A context with zero visible ratings: rating-embedding grad must be
        // all zeros (masked out).
        let dataset = SyntheticConfig::movielens_like()
            .scaled(10, 10, (3, 5))
            .generate(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let encoder = ContextEncoder::new(&dataset, 4, &mut rng);
        let visible = hire_graph::BipartiteGraph::empty(10, 10);
        let ctx = hire_data::test_context(
            &visible,
            &NeighborhoodSampler,
            &[Rating::new(0, 0, 3.0)],
            3,
            3,
            &mut rng,
        )
        .expect("test context");
        let h = encoder.encode(&ctx, &dataset);
        h.square().sum().backward();
        if let Some(g) = encoder.rating_embedding.table().grad() {
            assert_eq!(g.norm_l2(), 0.0);
        }
    }
}
