//! The hybrid mid-tier predictor: collaborative bias terms blended with
//! attribute/content features by a learned weighted head.
//!
//! This is the third rung of the serving degradation ladder (DESIGN.md
//! §13): when neither the full HIRE forward nor its quantized variant can
//! answer, the engine falls back to this model before resorting to raw
//! graph statistics. It follows the classic cold-start hybrid recipe —
//! a biased-baseline collaborative term (`μ + b_u + b_i`) plus a content
//! term from small per-attribute embeddings (`p_u · q_i`), combined by a
//! learned sigmoid gate — so cold entities with attributes still get a
//! personalized score even when their bias terms are untrained.
//!
//! Training is plain SGD with closed-form gradients (no autograd tape):
//! the model is a few thousand parameters, fits in milliseconds at repo
//! scale, and retrains deterministically from a seed. Prediction is
//! self-contained (`O(fields · dim)` per query, no context sampling, no
//! matmuls), which is exactly what a tier that answers when the model
//! tiers are down needs.
//!
//! ID-only schemas (Douban) degrade gracefully: each entity gets one
//! "attribute" that is its own ID, so the content term becomes a classic
//! latent-factor term.

use hire_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for [`train_hybrid`].
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Content embedding dimension per attribute field.
    pub dim: usize,
    /// SGD passes over the rating edges.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization on biases and embeddings.
    pub reg: f32,
    /// Shuffle/init seed; same seed + same dataset = identical model.
    pub seed: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            dim: 8,
            epochs: 12,
            lr: 0.05,
            reg: 0.02,
            seed: 0x4859_4252, // "HYBR"
        }
    }
}

/// Embedding rows for one entity side: each entity maps to one row index
/// per attribute field (ID-only sides get a single ID field).
#[derive(Debug, Clone)]
struct ContentSide {
    /// Per-entity resolved row indices, `[num_entities][num_fields]`.
    rows: Vec<Vec<usize>>,
    /// Flattened embedding table, `num_rows x dim`.
    table: Vec<f32>,
}

impl ContentSide {
    /// Builds the row mapping from attribute codes (or IDs when the
    /// schema is ID-only) and an embedding table initialized from a
    /// SplitMix64 stream — tiny uniform values, like an embedding init.
    fn new(attrs: &[Vec<usize>], cardinalities: &[usize], dim: usize, seed: u64) -> Self {
        let id_only = cardinalities.is_empty();
        let mut offsets = Vec::new();
        let mut total_rows = 0usize;
        if id_only {
            total_rows = attrs.len();
        } else {
            for &card in cardinalities {
                offsets.push(total_rows);
                total_rows += card;
            }
        }
        let rows: Vec<Vec<usize>> = attrs
            .iter()
            .enumerate()
            .map(|(e, codes)| {
                if id_only {
                    vec![e]
                } else {
                    codes
                        .iter()
                        .zip(&offsets)
                        .map(|(&c, &off)| off + c)
                        .collect()
                }
            })
            .collect();
        let mut state = seed;
        let table = (0..total_rows * dim)
            .map(|_| {
                state = splitmix64(state);
                // Uniform in [-0.05, 0.05).
                ((state >> 11) as f32 / (1u64 << 53) as f32 - 0.5) * 0.1
            })
            .collect();
        ContentSide { rows, table }
    }

    /// Sums the entity's field embeddings into `out` (length `dim`).
    fn vector_into(&self, entity: usize, dim: usize, out: &mut [f32]) {
        out.fill(0.0);
        for &r in &self.rows[entity] {
            for (o, &v) in out.iter_mut().zip(&self.table[r * dim..(r + 1) * dim]) {
                *o += v;
            }
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The trained hybrid predictor. Self-contained and `Send + Sync`: the
/// attribute row mappings are baked in at training time, so serving needs
/// only the `(user, item)` pair.
#[derive(Debug, Clone)]
pub struct HybridModel {
    global_mean: f32,
    user_bias: Vec<f32>,
    item_bias: Vec<f32>,
    users: ContentSide,
    items: ContentSide,
    /// Gate logit: `σ(gate)` weights the collaborative term,
    /// `1 − σ(gate)` the content term.
    gate: f32,
    dim: usize,
    min_rating: f32,
    max_rating: f32,
}

impl HybridModel {
    /// Predicts a rating for `(user, item)`, clamped to the dataset's
    /// rating range. Out-of-range entities get the pure global-mean
    /// prediction rather than a panic — the tier must never take a worker
    /// down.
    pub fn predict(&self, user: usize, item: usize) -> f32 {
        if user >= self.user_bias.len() || item >= self.item_bias.len() {
            return self.global_mean.clamp(self.min_rating, self.max_rating);
        }
        let mut p = vec![0.0f32; self.dim];
        let mut q = vec![0.0f32; self.dim];
        self.users.vector_into(user, self.dim, &mut p);
        self.items.vector_into(item, self.dim, &mut q);
        let dot: f32 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let collab = self.global_mean + self.user_bias[user] + self.item_bias[item];
        let content = self.global_mean + dot;
        let w = sigmoid(self.gate);
        (w * collab + (1.0 - w) * content).clamp(self.min_rating, self.max_rating)
    }

    /// Mean absolute error over a slice of `(user, item, rating)` triples.
    pub fn mae(&self, triples: &[(usize, usize, f32)]) -> f32 {
        if triples.is_empty() {
            return 0.0;
        }
        let sum: f32 = triples
            .iter()
            .map(|&(u, i, r)| (self.predict(u, i) - r).abs())
            .sum();
        sum / triples.len() as f32
    }

    /// The learned collaborative-vs-content mixing weight `σ(gate)`.
    pub fn collab_weight(&self) -> f32 {
        sigmoid(self.gate)
    }

    /// Parameter count (for reports).
    pub fn num_parameters(&self) -> usize {
        self.user_bias.len()
            + self.item_bias.len()
            + self.users.table.len()
            + self.items.table.len()
            + 1
    }
}

/// Trains a [`HybridModel`] on the dataset's observed ratings with
/// deterministic SGD: seeded init, seeded per-epoch shuffle, sequential
/// updates. Same dataset + same config ⇒ bit-identical model.
pub fn train_hybrid(dataset: &Dataset, config: &HybridConfig) -> HybridModel {
    let dim = config.dim.max(1);
    let user_cards: Vec<usize> = dataset
        .user_schema
        .attributes()
        .iter()
        .map(|a| a.cardinality)
        .collect();
    let item_cards: Vec<usize> = dataset
        .item_schema
        .attributes()
        .iter()
        .map(|a| a.cardinality)
        .collect();
    let global_mean = if dataset.ratings.is_empty() {
        (dataset.min_rating + dataset.max_rating()) * 0.5
    } else {
        dataset.ratings.iter().map(|r| r.value).sum::<f32>() / dataset.ratings.len() as f32
    };
    let mut model = HybridModel {
        global_mean,
        user_bias: vec![0.0; dataset.num_users],
        item_bias: vec![0.0; dataset.num_items],
        users: ContentSide::new(&dataset.user_attrs, &user_cards, dim, config.seed ^ 0x55),
        items: ContentSide::new(&dataset.item_attrs, &item_cards, dim, config.seed ^ 0xAA),
        gate: 0.0, // σ(0) = 0.5: start as an even blend
        dim,
        min_rating: dataset.min_rating,
        max_rating: dataset.max_rating(),
    };

    let mut order: Vec<usize> = (0..dataset.ratings.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut p = vec![0.0f32; dim];
    let mut q = vec![0.0f32; dim];
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &e in &order {
            let r = &dataset.ratings[e];
            let (u, i) = (r.user, r.item);
            model.users.vector_into(u, dim, &mut p);
            model.items.vector_into(i, dim, &mut q);
            let dot: f32 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let collab = model.global_mean + model.user_bias[u] + model.item_bias[i];
            let content = model.global_mean + dot;
            let w = sigmoid(model.gate);
            let pred = w * collab + (1.0 - w) * content;
            let err = pred - r.value;

            // Squared-error gradients, closed form.
            let lr = config.lr;
            let reg = config.reg;
            model.user_bias[u] -= lr * (w * err + reg * model.user_bias[u]);
            model.item_bias[i] -= lr * (w * err + reg * model.item_bias[i]);
            model.gate -= lr * err * (collab - content) * w * (1.0 - w);
            // Every field row of an entity receives the full vector
            // gradient (p is their sum, so ∂p/∂row is the identity).
            let gscale = lr * (1.0 - w) * err;
            for &row in &model.users.rows[u] {
                let slab = &mut model.users.table[row * dim..(row + 1) * dim];
                for (s, &qj) in slab.iter_mut().zip(&q) {
                    *s -= gscale * qj + lr * reg * *s;
                }
            }
            for &row in &model.items.rows[i] {
                let slab = &mut model.items.table[row * dim..(row + 1) * dim];
                for (s, &pj) in slab.iter_mut().zip(&p) {
                    *s -= gscale * pj + lr * reg * *s;
                }
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;

    fn small_dataset(seed: u64) -> Dataset {
        SyntheticConfig::movielens_like()
            .scaled(60, 50, (10, 20))
            .generate(seed)
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = small_dataset(3);
        let cfg = HybridConfig::default();
        let a = train_hybrid(&ds, &cfg);
        let b = train_hybrid(&ds, &cfg);
        assert_eq!(a.user_bias, b.user_bias);
        assert_eq!(a.items.table, b.items.table);
        assert_eq!(a.gate, b.gate);
        let c = train_hybrid(&ds, &HybridConfig { seed: 99, ..cfg });
        assert_ne!(a.user_bias, c.user_bias, "seeds must differ");
    }

    #[test]
    fn beats_global_mean_on_training_edges() {
        let ds = small_dataset(7);
        let model = train_hybrid(&ds, &HybridConfig::default());
        let triples: Vec<(usize, usize, f32)> = ds
            .ratings
            .iter()
            .map(|r| (r.user, r.item, r.value))
            .collect();
        let hybrid_mae = model.mae(&triples);
        let mean = ds.ratings.iter().map(|r| r.value).sum::<f32>() / ds.ratings.len() as f32;
        let mean_mae: f32 = ds
            .ratings
            .iter()
            .map(|r| (mean - r.value).abs())
            .sum::<f32>()
            / ds.ratings.len() as f32;
        assert!(
            hybrid_mae < mean_mae,
            "hybrid {hybrid_mae} must beat global mean {mean_mae}"
        );
    }

    #[test]
    fn predictions_stay_in_rating_range_and_handle_unknown_entities() {
        let ds = small_dataset(11);
        let model = train_hybrid(&ds, &HybridConfig::default());
        for u in 0..ds.num_users {
            for i in (0..ds.num_items).step_by(7) {
                let p = model.predict(u, i);
                assert!(p >= ds.min_rating && p <= ds.max_rating(), "{p}");
            }
        }
        let oob = model.predict(ds.num_users + 5, ds.num_items + 5);
        assert!(oob >= ds.min_rating && oob <= ds.max_rating());
    }

    #[test]
    fn id_only_schema_trains_latent_factors() {
        let ds = SyntheticConfig::douban_like()
            .scaled(50, 40, (8, 16))
            .generate(5);
        assert!(ds.user_schema.is_id_only() || !ds.user_attrs.iter().any(|a| !a.is_empty()));
        let model = train_hybrid(&ds, &HybridConfig::default());
        let p = model.predict(3, 4);
        assert!(p >= ds.min_rating && p <= ds.max_rating());
        assert!(model.num_parameters() > ds.num_users + ds.num_items);
    }
}
