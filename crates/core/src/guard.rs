//! Numerical-health guard for the training loop.
//!
//! Watches the per-step loss and gradient statistics for NaN/Inf values and
//! EMA-based loss explosions, keeps periodic in-memory parameter
//! checkpoints, and drives the recovery policy: roll back to the last good
//! snapshot, scale the learning rate down, and retry — a bounded number of
//! times before the run is declared aborted.

use hire_tensor::{NdArray, Tensor};

/// Settings for divergence detection and recovery.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// EMA smoothing factor for the loss baseline (closer to 1 = slower).
    pub ema_beta: f32,
    /// A finite loss above `divergence_factor * ema` counts as suspicious.
    pub divergence_factor: f32,
    /// Consecutive suspicious steps before a loss explosion triggers
    /// recovery. Non-finite losses/gradients trigger immediately.
    pub patience: usize,
    /// Steps between parameter checkpoints.
    pub checkpoint_every: usize,
    /// Recoveries allowed before the run is aborted (weights stay at the
    /// last good snapshot).
    pub max_recoveries: usize,
    /// Learning-rate multiplier applied at each recovery (paper-style
    /// halving by default).
    pub lr_backoff: f32,
    /// Steps before the EMA baseline is trusted for explosion detection.
    pub warmup_steps: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            ema_beta: 0.9,
            divergence_factor: 4.0,
            patience: 3,
            checkpoint_every: 10,
            max_recoveries: 4,
            lr_backoff: 0.5,
            warmup_steps: 5,
        }
    }
}

/// Why the guard declared a step divergent.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceReason {
    /// The mini-batch loss was NaN or infinite.
    NonFiniteLoss,
    /// Gradient entries were NaN or infinite (count of zeroed entries).
    NonFiniteGradient {
        /// Number of non-finite gradient entries that were zeroed.
        entries: usize,
    },
    /// The loss exploded relative to its EMA baseline for `patience`
    /// consecutive steps.
    LossExplosion {
        /// The offending loss value.
        loss: f32,
        /// The EMA baseline at the time.
        ema: f32,
    },
}

impl std::fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss => write!(f, "non-finite loss"),
            DivergenceReason::NonFiniteGradient { entries } => {
                write!(f, "{entries} non-finite gradient entries")
            }
            DivergenceReason::LossExplosion { loss, ema } => {
                write!(f, "loss {loss:.4} exploded above EMA baseline {ema:.4}")
            }
        }
    }
}

/// Record of one rollback performed during training.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Step at which divergence was detected.
    pub step: usize,
    /// What triggered the rollback.
    pub reason: DivergenceReason,
    /// Step of the checkpoint that was restored (0 = initial weights).
    pub restored_step: usize,
    /// Learning-rate scale in effect *after* the rollback.
    pub lr_scale: f32,
}

/// How a training run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainOutcome {
    /// All steps ran (possibly after recoveries).
    Completed,
    /// The recovery budget was exhausted; weights are at the last good
    /// checkpoint.
    Aborted {
        /// Step at which the run gave up.
        step: usize,
    },
    /// The run stopped early because [`crate::TrainConfig::halt_after_steps`]
    /// was reached. Training state was checkpointed and can be resumed with
    /// [`crate::resume_from`].
    Interrupted {
        /// Last step executed before the halt.
        step: usize,
    },
}

/// Everything a training run produced: per-step statistics, the recoveries
/// performed, and how the run ended.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-step statistics (steps consumed by failed attempts included, so
    /// the trace shows what the guard saw).
    pub steps: Vec<crate::trainer::StepStats>,
    /// Rollbacks performed, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Terminal state of the run.
    pub outcome: TrainOutcome,
}

impl TrainReport {
    /// Loss of the last recorded healthy step, if any step ran.
    pub fn final_loss(&self) -> Option<f32> {
        self.steps
            .iter()
            .rev()
            .map(|s| s.loss)
            .find(|l| l.is_finite())
    }
}

/// In-memory snapshot of parameter values.
#[derive(Debug, Clone)]
pub struct ParameterCheckpoint {
    step: usize,
    values: Vec<NdArray>,
}

impl ParameterCheckpoint {
    /// Copies the current value of every parameter.
    pub fn capture(step: usize, params: &[Tensor]) -> Self {
        ParameterCheckpoint {
            step,
            values: params.iter().map(|p| p.value()).collect(),
        }
    }

    /// Rebuilds a checkpoint from raw values (e.g. loaded from a durable
    /// snapshot on resume).
    pub fn from_values(step: usize, values: Vec<NdArray>) -> Self {
        ParameterCheckpoint { step, values }
    }

    /// Writes the snapshot back into the parameters.
    pub fn restore(&self, params: &[Tensor]) {
        for (p, v) in params.iter().zip(&self.values) {
            p.set_value(v.clone());
        }
    }

    /// Step at which the snapshot was taken.
    pub fn step(&self) -> usize {
        self.step
    }

    /// The checkpointed parameter values.
    pub fn values(&self) -> &[NdArray] {
        &self.values
    }
}

/// Stateful health monitor fed once per training step.
#[derive(Debug)]
pub struct NumericalGuard {
    cfg: GuardConfig,
    ema: Option<f32>,
    healthy_steps: usize,
    suspicious_streak: usize,
}

impl NumericalGuard {
    /// Creates a guard with the given settings.
    pub fn new(cfg: GuardConfig) -> Self {
        NumericalGuard {
            cfg,
            ema: None,
            healthy_steps: 0,
            suspicious_streak: 0,
        }
    }

    /// Feeds one step's loss and the count of non-finite gradient entries;
    /// returns the divergence reason if recovery should run now.
    pub fn observe(
        &mut self,
        loss: f32,
        nonfinite_grad_entries: usize,
    ) -> Option<DivergenceReason> {
        if !loss.is_finite() {
            return Some(DivergenceReason::NonFiniteLoss);
        }
        if nonfinite_grad_entries > 0 {
            return Some(DivergenceReason::NonFiniteGradient {
                entries: nonfinite_grad_entries,
            });
        }
        let warmed_up = self.healthy_steps >= self.cfg.warmup_steps;
        if let (true, Some(ema)) = (warmed_up, self.ema) {
            if loss > self.cfg.divergence_factor * (ema + 1e-3) {
                self.suspicious_streak += 1;
                if self.suspicious_streak >= self.cfg.patience {
                    return Some(DivergenceReason::LossExplosion { loss, ema });
                }
                // Suspicious but within patience: do not fold the spike into
                // the baseline.
                return None;
            }
        }
        self.suspicious_streak = 0;
        self.healthy_steps += 1;
        self.ema = Some(match self.ema {
            None => loss,
            Some(e) => self.cfg.ema_beta * e + (1.0 - self.cfg.ema_beta) * loss,
        });
        None
    }

    /// Clears the baseline after a rollback (the restored weights produce
    /// different losses than the diverged ones).
    pub fn reset(&mut self) {
        self.ema = None;
        self.healthy_steps = 0;
        self.suspicious_streak = 0;
    }

    /// Copies out `(ema, healthy_steps, suspicious_streak)` for durable
    /// checkpointing.
    pub fn export_state(&self) -> (Option<f32>, usize, usize) {
        (self.ema, self.healthy_steps, self.suspicious_streak)
    }

    /// Restores state captured by [`NumericalGuard::export_state`] so a
    /// resumed run sees the same baseline as the uninterrupted one.
    pub fn import_state(
        &mut self,
        ema: Option<f32>,
        healthy_steps: usize,
        suspicious_streak: usize,
    ) {
        self.ema = ema;
        self.healthy_steps = healthy_steps;
        self.suspicious_streak = suspicious_streak;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_loss_triggers_immediately() {
        let mut g = NumericalGuard::new(GuardConfig::default());
        assert_eq!(
            g.observe(f32::NAN, 0),
            Some(DivergenceReason::NonFiniteLoss)
        );
        assert_eq!(
            g.observe(f32::INFINITY, 0),
            Some(DivergenceReason::NonFiniteLoss)
        );
    }

    #[test]
    fn nonfinite_gradients_trigger_immediately() {
        let mut g = NumericalGuard::new(GuardConfig::default());
        assert_eq!(
            g.observe(1.0, 3),
            Some(DivergenceReason::NonFiniteGradient { entries: 3 })
        );
    }

    #[test]
    fn loss_explosion_requires_patience() {
        let cfg = GuardConfig {
            patience: 2,
            warmup_steps: 3,
            ..GuardConfig::default()
        };
        let mut g = NumericalGuard::new(cfg);
        for _ in 0..5 {
            assert_eq!(g.observe(1.0, 0), None);
        }
        // one spike: suspicious, not yet divergent
        assert_eq!(g.observe(100.0, 0), None);
        // second consecutive spike: divergent
        match g.observe(100.0, 0) {
            Some(DivergenceReason::LossExplosion { loss, .. }) => assert_eq!(loss, 100.0),
            other => panic!("expected LossExplosion, got {other:?}"),
        }
    }

    #[test]
    fn spikes_within_patience_do_not_poison_the_baseline() {
        let cfg = GuardConfig {
            patience: 3,
            warmup_steps: 2,
            ..GuardConfig::default()
        };
        let mut g = NumericalGuard::new(cfg);
        for _ in 0..4 {
            g.observe(1.0, 0);
        }
        let before = g.ema;
        g.observe(500.0, 0); // suspicious
        assert_eq!(g.ema, before, "spike folded into EMA");
        g.observe(1.0, 0); // healthy again resets the streak
        assert_eq!(g.suspicious_streak, 0);
    }

    #[test]
    fn guard_state_export_import_round_trips() {
        let mut g = NumericalGuard::new(GuardConfig::default());
        for _ in 0..7 {
            g.observe(2.0, 0);
        }
        let (ema, healthy, streak) = g.export_state();
        assert_eq!(healthy, 7);
        let mut fresh = NumericalGuard::new(GuardConfig::default());
        fresh.import_state(ema, healthy, streak);
        assert_eq!(fresh.export_state(), (ema, healthy, streak));
    }

    #[test]
    fn checkpoint_from_values_round_trips() {
        let p = Tensor::parameter(NdArray::from_vec([2], vec![5.0, 6.0]));
        let original = ParameterCheckpoint::capture(3, &[p.clone()]);
        let rebuilt = ParameterCheckpoint::from_values(3, original.values().to_vec());
        p.set_value(NdArray::from_vec([2], vec![0.0, 0.0]));
        rebuilt.restore(&[p.clone()]);
        assert_eq!(p.value().as_slice(), &[5.0, 6.0]);
        assert_eq!(rebuilt.step(), 3);
    }

    #[test]
    fn checkpoint_round_trip() {
        let p = Tensor::parameter(NdArray::from_vec([2], vec![1.0, 2.0]));
        let ckpt = ParameterCheckpoint::capture(7, &[p.clone()]);
        p.set_value(NdArray::from_vec([2], vec![9.0, 9.0]));
        ckpt.restore(&[p.clone()]);
        assert_eq!(p.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(ckpt.step(), 7);
    }
}
