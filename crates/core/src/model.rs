//! The full HIRE model: encoder → K HIM blocks → rating decoder (Fig. 3).

use crate::config::HireConfig;
use crate::encoder::ContextEncoder;
use crate::him::{HimAttention, HimBlock};
use hire_data::{Dataset, PredictionContext};
use hire_nn::{Linear, Module};
use hire_tensor::{NdArray, Tensor};
use rand::Rng;

/// The Heterogeneous Interaction Rating nEtwork.
pub struct HireModel {
    encoder: ContextEncoder,
    blocks: Vec<HimBlock>,
    decoder: Linear,
    /// Output scale α of Eq. (16): predictions are `α · sigmoid(g(H))`.
    alpha: f32,
    config: HireConfig,
}

impl HireModel {
    /// Builds a HIRE model for a dataset's schema and rating scale.
    pub fn new(dataset: &Dataset, config: &HireConfig, rng: &mut impl Rng) -> Self {
        let encoder = ContextEncoder::new(dataset, config.attr_dim, rng);
        let num_attrs = encoder.num_attrs();
        let blocks = (0..config.num_blocks)
            .map(|_| HimBlock::new(config, num_attrs, rng))
            .collect();
        let decoder = Linear::new(encoder.embed_dim(), 1, rng);
        HireModel {
            encoder,
            blocks,
            decoder,
            alpha: dataset.max_rating(),
            config: config.clone(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &HireConfig {
        &self.config
    }

    /// The context encoder (exposed for inspection).
    pub fn encoder(&self) -> &ContextEncoder {
        &self.encoder
    }

    /// Forward pass producing the predicted rating matrix `[n, m]`
    /// (autograd-tracked; use [`Self::predict`] for inference).
    pub fn forward(&self, ctx: &PredictionContext, dataset: &Dataset) -> Tensor {
        let mut h = self.encoder.encode(ctx, dataset);
        for block in &self.blocks {
            h = block.forward(&h);
        }
        self.decode(h, ctx)
    }

    /// Forward pass that also captures every block's attention weights
    /// (Fig. 9 case study).
    pub fn forward_with_attention(
        &self,
        ctx: &PredictionContext,
        dataset: &Dataset,
    ) -> (Tensor, Vec<HimAttention>) {
        let mut h = self.encoder.encode(ctx, dataset);
        let mut attns = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (next, attn) = block.forward_with_attention(&h);
            h = next;
            attns.push(attn);
        }
        (self.decode(h, ctx), attns)
    }

    fn decode(&self, h: Tensor, ctx: &PredictionContext) -> Tensor {
        let n = ctx.n();
        let m = ctx.m();
        // g_θ: R^e -> R, then α · sigmoid (Eq. 16)
        self.decoder
            .forward(&h)
            .reshape([n, m])
            .sigmoid()
            .mul_scalar(self.alpha)
    }

    /// Inference: predicted rating matrix as a plain array.
    pub fn predict(&self, ctx: &PredictionContext, dataset: &Dataset) -> NdArray {
        self.forward(ctx, dataset).value()
    }

    /// Masked MSE training loss for one context (Eq. 17): mean squared
    /// error over the target cells.
    pub fn context_loss(&self, ctx: &PredictionContext, dataset: &Dataset) -> Tensor {
        let pred = self.forward(ctx, dataset);
        pred.mse_masked(&ctx.ratings, &ctx.target_mask)
    }

    /// Overwrites every parameter from a flat value list in
    /// [`Module::parameters`] order — the inverse of exporting
    /// `parameters().iter().map(|p| p.value())`. Used to warm-start a live
    /// model from frozen serving weights before fine-tuning. Count and
    /// shape mismatches are typed errors and leave already-written
    /// parameters as they are (callers discard the model on error).
    pub fn load_parameters(&self, values: &[NdArray]) -> hire_error::HireResult<()> {
        let params = self.parameters();
        if params.len() != values.len() {
            return Err(hire_error::HireError::invalid_data(
                "HireModel",
                format!(
                    "parameter count mismatch: model has {}, got {}",
                    params.len(),
                    values.len()
                ),
            ));
        }
        for (idx, (p, v)) in params.iter().zip(values).enumerate() {
            if p.value().dims() != v.dims() {
                return Err(hire_error::HireError::invalid_data(
                    "HireModel",
                    format!(
                        "parameter {idx} shape mismatch: model {:?}, got {:?}",
                        p.value().dims(),
                        v.dims()
                    ),
                ));
            }
            p.set_value(v.clone());
        }
        Ok(())
    }
}

impl Module for HireModel {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.encoder.parameters();
        for b in &self.blocks {
            p.extend(b.parameters());
        }
        p.extend(self.decoder.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::{training_context, SyntheticConfig};
    use hire_graph::NeighborhoodSampler;
    use rand::SeedableRng;

    fn small_config() -> HireConfig {
        HireConfig {
            attr_dim: 4,
            num_blocks: 2,
            heads: 2,
            head_dim: 4,
            context_users: 5,
            context_items: 4,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        }
    }

    fn setup() -> (Dataset, PredictionContext, HireModel) {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(30, 25, (8, 15))
            .generate(5);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ctx = training_context(
            &graph,
            &NeighborhoodSampler,
            dataset.ratings[0],
            5,
            4,
            0.2,
            &mut rng,
        )
        .expect("training context");
        let model = HireModel::new(&dataset, &small_config(), &mut rng);
        (dataset, ctx, model)
    }

    #[test]
    fn predictions_are_in_rating_range() {
        let (dataset, ctx, model) = setup();
        let pred = model.predict(&ctx, &dataset);
        assert_eq!(pred.dims(), &[5, 4]);
        assert!(pred.min_all() >= 0.0);
        assert!(pred.max_all() <= dataset.max_rating());
    }

    #[test]
    fn flexible_context_sizes_at_test_time() {
        // § V-A: "the size of matrix can be decided by the number of new
        // users and items and can be flexible."
        let (dataset, _, model) = setup();
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for (n, m) in [(3, 7), (8, 2), (1, 5)] {
            let ctx = training_context(
                &graph,
                &NeighborhoodSampler,
                dataset.ratings[1],
                n,
                m,
                0.2,
                &mut rng,
            )
            .expect("training context");
            let pred = model.predict(&ctx, &dataset);
            assert_eq!(pred.dims(), &[n, m]);
        }
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (dataset, ctx, model) = setup();
        let loss = model.context_loss(&ctx, &dataset);
        let v = loss.item();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
    }

    #[test]
    fn backward_reaches_every_parameter_family() {
        let (dataset, ctx, model) = setup();
        let loss = model.context_loss(&ctx, &dataset);
        loss.backward();
        let total = model.parameters().len();
        let with_grad = model
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        // rating embedding may legitimately see no visible cell
        assert!(
            with_grad >= total - 1,
            "{with_grad}/{total} params got grads"
        );
    }

    #[test]
    fn attention_capture_has_one_entry_per_block() {
        let (dataset, ctx, model) = setup();
        let (_, attns) = model.forward_with_attention(&ctx, &dataset);
        assert_eq!(attns.len(), 2);
        assert_eq!(attns[0].mbu.dims()[0], ctx.m());
        assert_eq!(attns[0].mbi.dims()[0], ctx.n());
    }

    /// Property 5.1 for the full model: permuting context users/items
    /// permutes the predicted rating matrix identically.
    #[test]
    fn model_is_permutation_equivariant() {
        let (dataset, ctx, model) = setup();
        let pred = model.predict(&ctx, &dataset);

        let user_perm = [3usize, 1, 4, 0, 2];
        let item_perm = [2usize, 0, 3, 1];
        let permuted = PredictionContext {
            users: user_perm.iter().map(|&r| ctx.users[r]).collect(),
            items: item_perm.iter().map(|&c| ctx.items[c]).collect(),
            ratings: permute_2d(&ctx.ratings, &user_perm, &item_perm),
            input_mask: permute_2d(&ctx.input_mask, &user_perm, &item_perm),
            target_mask: permute_2d(&ctx.target_mask, &user_perm, &item_perm),
        };
        let pred_p = model.predict(&permuted, &dataset);
        for (r, &pr) in user_perm.iter().enumerate() {
            for (c, &pc) in item_perm.iter().enumerate() {
                let a = pred_p.at(&[r, c]);
                let b = pred.at(&[pr, pc]);
                assert!((a - b).abs() < 1e-3, "({r},{c}): {a} vs {b}");
            }
        }
    }

    fn permute_2d(a: &NdArray, rows: &[usize], cols: &[usize]) -> NdArray {
        let mut out = NdArray::zeros([rows.len(), cols.len()]);
        for (r, &pr) in rows.iter().enumerate() {
            for (c, &pc) in cols.iter().enumerate() {
                *out.at_mut(&[r, c]) = a.at(&[pr, pc]);
            }
        }
        out
    }
}
