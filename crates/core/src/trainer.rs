//! Training loop implementing Algorithm 1 with the paper's optimizer stack
//! (LAMB + Lookahead, flat-then-anneal LR, gradient clipping at 1.0),
//! supervised by a numerical-health guard (see [`crate::guard`]).

use crate::guard::{
    GuardConfig, NumericalGuard, ParameterCheckpoint, RecoveryEvent, TrainOutcome, TrainReport,
};
use crate::model::HireModel;
use hire_data::{training_context, Dataset};
use hire_error::{HireError, HireResult};
use hire_graph::{BipartiteGraph, ContextSampler, Rating};
use hire_nn::Module;
use hire_optim::{clip_grad_norm, FlatThenAnneal, Lamb, Lookahead, LrSchedule, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Training-run settings (model hyper-parameters live in
/// [`crate::HireConfig`]).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total optimization steps.
    pub steps: usize,
    /// Prediction contexts per mini-batch (Algorithm 1, line 4).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3; higher is appropriate for the
    /// scaled-down runs).
    pub base_lr: f32,
    /// Global-norm gradient clip threshold (paper: 1.0).
    pub grad_clip: f32,
}

impl TrainConfig {
    /// The paper's published training hyper-parameters.
    pub fn paper_default() -> Self {
        TrainConfig {
            steps: 1000,
            batch_size: 8,
            base_lr: 1e-3,
            grad_clip: 1.0,
        }
    }

    /// A quick configuration for tests and smoke benchmarks.
    pub fn fast() -> Self {
        TrainConfig {
            steps: 120,
            batch_size: 4,
            base_lr: 3e-3,
            grad_clip: 1.0,
        }
    }
}

/// Record of one training step.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// 0-based step index.
    pub step: usize,
    /// Mini-batch MSE loss.
    pub loss: f32,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
    /// Learning rate used.
    pub lr: f32,
}

/// Trains `model` on contexts sampled from `graph` (the training-visible
/// graph) with the default [`GuardConfig`], returning a [`TrainReport`].
/// Deterministic under a fixed `rng`.
pub fn train(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    config: &TrainConfig,
    rng: &mut impl Rng,
) -> HireResult<TrainReport> {
    train_guarded(
        model,
        dataset,
        graph,
        sampler,
        config,
        &GuardConfig::default(),
        rng,
    )
}

/// [`train`] with explicit guard settings.
///
/// Each step the guard inspects the mini-batch loss and the gradient
/// statistics. On divergence (non-finite loss/gradients, or a sustained
/// loss explosion relative to the EMA baseline) the parameters are rolled
/// back to the last healthy checkpoint, the learning rate is scaled by
/// `guard.lr_backoff`, and the optimizer state is rebuilt. After
/// `guard.max_recoveries` rollbacks the run stops with
/// [`TrainOutcome::Aborted`] — the weights stay at the last good snapshot,
/// so callers always receive a usable (finite) model.
pub fn train_guarded(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    config: &TrainConfig,
    guard_config: &GuardConfig,
    rng: &mut impl Rng,
) -> HireResult<TrainReport> {
    let edges: Vec<Rating> = graph.edges().collect();
    if edges.is_empty() {
        return Err(HireError::invalid_data(
            "train",
            "training graph has no edges",
        ));
    }
    let params = model.parameters();
    let mut optimizer = Lookahead::paper_default(Lamb::paper_default(params.clone()));
    let schedule = FlatThenAnneal {
        base_lr: config.base_lr,
        total_steps: config.steps,
        flat_frac: 0.7,
    };
    let n = model.config().context_users;
    let m = model.config().context_items;
    let input_ratio = model.config().input_ratio;

    let mut guard = NumericalGuard::new(guard_config.clone());
    let mut checkpoint = ParameterCheckpoint::capture(0, &params);
    let mut lr_scale = 1.0f32;
    let mut steps = Vec::with_capacity(config.steps);
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut outcome = TrainOutcome::Completed;

    for step in 0..config.steps {
        optimizer.zero_grad();
        // Algorithm 1 line 4: draw a mini-batch of prediction contexts.
        let mut batch_loss: Option<hire_tensor::Tensor> = None;
        for _ in 0..config.batch_size {
            let seed = *edges.choose(rng).expect("non-empty edges");
            let ctx = training_context(graph, sampler, seed, n, m, input_ratio, rng)?;
            if ctx.num_targets() == 0 {
                continue;
            }
            let loss = model.context_loss(&ctx, dataset);
            batch_loss = Some(match batch_loss {
                None => loss,
                Some(acc) => acc.add(&loss),
            });
        }
        let Some(total) = batch_loss else { continue };
        let loss = total.mul_scalar(1.0 / config.batch_size as f32);
        let loss_value = loss.item();
        loss.backward();
        let clip = clip_grad_norm(&params, config.grad_clip);
        let lr = schedule.lr(step) * lr_scale;
        steps.push(StepStats {
            step,
            loss: loss_value,
            grad_norm: clip.pre_clip_norm,
            lr,
        });

        if let Some(reason) = guard.observe(loss_value, clip.nonfinite_entries) {
            // Roll back, shrink the LR, and rebuild the optimizer: its
            // moment estimates were computed from the diverged trajectory.
            checkpoint.restore(&params);
            lr_scale *= guard_config.lr_backoff;
            optimizer = Lookahead::paper_default(Lamb::paper_default(params.clone()));
            guard.reset();
            recoveries.push(RecoveryEvent {
                step,
                reason,
                restored_step: checkpoint.step(),
                lr_scale,
            });
            if recoveries.len() > guard_config.max_recoveries {
                outcome = TrainOutcome::Aborted { step };
                break;
            }
            continue;
        }

        optimizer.step(lr);
        if (step + 1) % guard_config.checkpoint_every == 0 {
            checkpoint = ParameterCheckpoint::capture(step + 1, &params);
        }
    }
    Ok(TrainReport {
        steps,
        recoveries,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HireConfig;
    use hire_data::SyntheticConfig;
    use hire_graph::NeighborhoodSampler;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_loss() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(40, 30, (10, 20))
            .generate(2);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 6,
            context_items: 6,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let model = HireModel::new(&dataset, &config, &mut rng);
        let tc = TrainConfig {
            steps: 60,
            batch_size: 2,
            base_lr: 3e-3,
            grad_clip: 1.0,
        };
        let report = train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &tc,
            &mut rng,
        )
        .expect("training");
        assert_eq!(report.outcome, crate::guard::TrainOutcome::Completed);
        assert!(report.recoveries.is_empty(), "healthy run must not recover");
        let history = report.steps;
        assert!(!history.is_empty());
        let first: f32 = history[..10].iter().map(|s| s.loss).sum::<f32>() / 10.0;
        let last: f32 = history[history.len() - 10..]
            .iter()
            .map(|s| s.loss)
            .sum::<f32>()
            / 10.0;
        assert!(
            last < first * 0.9,
            "loss did not decrease: first={first:.4} last={last:.4}"
        );
        // all stats well-formed
        for s in &history {
            assert!(s.loss.is_finite() && s.grad_norm.is_finite() && s.lr > 0.0);
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(30, 25, (8, 12))
            .generate(3);
        let graph = dataset.graph();
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 4,
            context_items: 4,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let tc = TrainConfig {
            steps: 10,
            batch_size: 2,
            base_lr: 1e-3,
            grad_clip: 1.0,
        };
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let model = HireModel::new(&dataset, &config, &mut rng);
            train(
                &model,
                &dataset,
                &graph,
                &NeighborhoodSampler,
                &tc,
                &mut rng,
            )
            .expect("training")
            .steps
            .iter()
            .map(|s| s.loss)
            .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn empty_training_graph_is_a_typed_error() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(10, 10, (3, 5))
            .generate(0);
        let empty = hire_graph::BipartiteGraph::empty(10, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig::fast();
        let model = HireModel::new(&dataset, &config, &mut rng);
        let err = train(
            &model,
            &dataset,
            &empty,
            &NeighborhoodSampler,
            &TrainConfig::fast(),
            &mut rng,
        )
        .expect_err("empty graph must error");
        assert!(err.to_string().contains("no edges"));
    }

    #[test]
    fn absurd_learning_rate_triggers_recovery_and_stays_finite() {
        // The divergence-recovery acceptance test: an absurd base LR blows
        // up training; the guard must roll back at least once and the model
        // must come out with finite weights and a finite loss.
        let dataset = SyntheticConfig::movielens_like()
            .scaled(40, 30, (10, 20))
            .generate(2);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 6,
            context_items: 6,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let model = HireModel::new(&dataset, &config, &mut rng);
        let tc = TrainConfig {
            steps: 60,
            batch_size: 2,
            base_lr: 50.0,
            grad_clip: 1.0,
        };
        let report = train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &tc,
            &mut rng,
        )
        .expect("guarded training must not error out");
        assert!(
            !report.recoveries.is_empty(),
            "LR 50 must trigger at least one recovery; outcome {:?}",
            report.outcome
        );
        for (a, b) in report
            .recoveries
            .iter()
            .zip(report.recoveries.iter().skip(1))
        {
            assert!(b.lr_scale < a.lr_scale, "LR must shrink across recoveries");
        }
        let final_loss = report.final_loss().expect("at least one finite-loss step");
        assert!(final_loss.is_finite());
        for p in model.parameters() {
            assert!(
                !p.value().has_non_finite(),
                "weights poisoned after recovery"
            );
        }
    }
}
