//! Training loop implementing Algorithm 1 with the paper's optimizer stack
//! (LAMB + Lookahead, flat-then-anneal LR, gradient clipping at 1.0).

use crate::model::HireModel;
use hire_data::{training_context, Dataset};
use hire_graph::{BipartiteGraph, ContextSampler, Rating};
use hire_nn::Module;
use hire_optim::{clip_grad_norm, FlatThenAnneal, Lamb, Lookahead, LrSchedule, Optimizer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Training-run settings (model hyper-parameters live in
/// [`crate::HireConfig`]).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total optimization steps.
    pub steps: usize,
    /// Prediction contexts per mini-batch (Algorithm 1, line 4).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3; higher is appropriate for the
    /// scaled-down runs).
    pub base_lr: f32,
    /// Global-norm gradient clip threshold (paper: 1.0).
    pub grad_clip: f32,
}

impl TrainConfig {
    /// The paper's published training hyper-parameters.
    pub fn paper_default() -> Self {
        TrainConfig { steps: 1000, batch_size: 8, base_lr: 1e-3, grad_clip: 1.0 }
    }

    /// A quick configuration for tests and smoke benchmarks.
    pub fn fast() -> Self {
        TrainConfig { steps: 120, batch_size: 4, base_lr: 3e-3, grad_clip: 1.0 }
    }
}

/// Record of one training step.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// 0-based step index.
    pub step: usize,
    /// Mini-batch MSE loss.
    pub loss: f32,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
    /// Learning rate used.
    pub lr: f32,
}

/// Trains `model` on contexts sampled from `graph` (the training-visible
/// graph), returning per-step statistics. Deterministic under a fixed `rng`.
pub fn train(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    config: &TrainConfig,
    rng: &mut impl Rng,
) -> Vec<StepStats> {
    let edges: Vec<Rating> = graph.edges().collect();
    assert!(!edges.is_empty(), "training graph has no edges");
    let params = model.parameters();
    let mut optimizer = Lookahead::paper_default(Lamb::paper_default(params.clone()));
    let schedule = FlatThenAnneal {
        base_lr: config.base_lr,
        total_steps: config.steps,
        flat_frac: 0.7,
    };
    let n = model.config().context_users;
    let m = model.config().context_items;
    let input_ratio = model.config().input_ratio;

    let mut history = Vec::with_capacity(config.steps);
    for step in 0..config.steps {
        optimizer.zero_grad();
        // Algorithm 1 line 4: draw a mini-batch of prediction contexts.
        let mut batch_loss: Option<hire_tensor::Tensor> = None;
        for _ in 0..config.batch_size {
            let seed = *edges.choose(rng).expect("non-empty edges");
            let ctx = training_context(graph, sampler, seed, n, m, input_ratio, rng);
            if ctx.num_targets() == 0 {
                continue;
            }
            let loss = model.context_loss(&ctx, dataset);
            batch_loss = Some(match batch_loss {
                None => loss,
                Some(acc) => acc.add(&loss),
            });
        }
        let Some(total) = batch_loss else { continue };
        let loss = total.mul_scalar(1.0 / config.batch_size as f32);
        let loss_value = loss.item();
        loss.backward();
        let grad_norm = clip_grad_norm(&params, config.grad_clip);
        let lr = schedule.lr(step);
        optimizer.step(lr);
        history.push(StepStats { step, loss: loss_value, grad_norm, lr });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HireConfig;
    use hire_data::SyntheticConfig;
    use hire_graph::NeighborhoodSampler;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_loss() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(40, 30, (10, 20))
            .generate(2);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 6,
            context_items: 6,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let model = HireModel::new(&dataset, &config, &mut rng);
        let tc = TrainConfig { steps: 60, batch_size: 2, base_lr: 3e-3, grad_clip: 1.0 };
        let history = train(&model, &dataset, &graph, &NeighborhoodSampler, &tc, &mut rng);
        assert!(!history.is_empty());
        let first: f32 = history[..10].iter().map(|s| s.loss).sum::<f32>() / 10.0;
        let last: f32 = history[history.len() - 10..]
            .iter()
            .map(|s| s.loss)
            .sum::<f32>()
            / 10.0;
        assert!(
            last < first * 0.9,
            "loss did not decrease: first={first:.4} last={last:.4}"
        );
        // all stats well-formed
        for s in &history {
            assert!(s.loss.is_finite() && s.grad_norm.is_finite() && s.lr > 0.0);
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(30, 25, (8, 12))
            .generate(3);
        let graph = dataset.graph();
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 4,
            context_items: 4,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let tc = TrainConfig { steps: 10, batch_size: 2, base_lr: 1e-3, grad_clip: 1.0 };
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let model = HireModel::new(&dataset, &config, &mut rng);
            train(&model, &dataset, &graph, &NeighborhoodSampler, &tc, &mut rng)
                .iter()
                .map(|s| s.loss)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
