//! Training loop implementing Algorithm 1 with the paper's optimizer stack
//! (LAMB + Lookahead, flat-then-anneal LR, gradient clipping at 1.0),
//! supervised by a numerical-health guard (see [`crate::guard`]) and — when
//! a checkpoint directory is configured — durably snapshotted for bit-exact
//! crash resume (see `hire-ckpt` and `DESIGN.md` §8).

use crate::guard::{
    GuardConfig, NumericalGuard, ParameterCheckpoint, RecoveryEvent, TrainOutcome, TrainReport,
};
use crate::model::HireModel;
use hire_ckpt::{fingerprint, CheckpointStore, GuardSnapshot, OptimizerSnapshot, TrainSnapshot};
use hire_data::{training_context, Dataset};
use hire_error::{HireError, HireResult};
use hire_graph::{BipartiteGraph, ContextSampler, Rating};
use hire_nn::Module;
use hire_optim::{clip_grad_norm, FlatThenAnneal, Lamb, Lookahead, LrSchedule, Optimizer};
use hire_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::{Rng, StateRng};
use std::path::PathBuf;
use std::time::Instant;

/// Training-run settings (model hyper-parameters live in
/// [`crate::HireConfig`]).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total optimization steps.
    pub steps: usize,
    /// Prediction contexts per mini-batch (Algorithm 1, line 4).
    pub batch_size: usize,
    /// Base learning rate (paper: 1e-3; higher is appropriate for the
    /// scaled-down runs).
    pub base_lr: f32,
    /// Global-norm gradient clip threshold (paper: 1.0).
    pub grad_clip: f32,
    /// Directory for durable training snapshots. `None` (the default)
    /// disables durable checkpointing; the in-memory rollback checkpoints
    /// of the divergence guard are unaffected.
    pub checkpoint_dir: Option<PathBuf>,
    /// Minimum seconds between durable snapshots. `0.0` snapshots after
    /// every step (useful in tests). Ignored without `checkpoint_dir`.
    pub checkpoint_every_secs: f64,
    /// How many snapshot files to retain in `checkpoint_dir`.
    pub checkpoint_keep_last: usize,
    /// When set with `checkpoint_dir`, training resumes from the newest
    /// valid snapshot in the directory (fresh start if there is none).
    pub resume: bool,
    /// Stop with [`TrainOutcome::Interrupted`] after this many steps *of
    /// this run* (deterministic interruption for crash/resume tests).
    pub halt_after_steps: Option<usize>,
}

impl TrainConfig {
    /// The paper's published training hyper-parameters.
    pub fn paper_default() -> Self {
        TrainConfig {
            steps: 1000,
            batch_size: 8,
            base_lr: 1e-3,
            grad_clip: 1.0,
            checkpoint_dir: None,
            checkpoint_every_secs: 30.0,
            checkpoint_keep_last: 3,
            resume: false,
            halt_after_steps: None,
        }
    }

    /// A quick configuration for tests and smoke benchmarks.
    pub fn fast() -> Self {
        TrainConfig {
            steps: 120,
            batch_size: 4,
            base_lr: 3e-3,
            grad_clip: 1.0,
            ..Self::paper_default()
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Fingerprint of the hyper-parameters a snapshot was produced under.
/// Resuming under different hyper-parameters is refused — the trajectory
/// would silently diverge from the uninterrupted run. Checkpoint cadence
/// and the halt setting are deliberately excluded: they legitimately differ
/// between an interrupted run and its resume.
fn config_fingerprint(config: &TrainConfig, guard: &GuardConfig) -> u64 {
    fingerprint([
        config.steps as u64,
        config.batch_size as u64,
        config.base_lr.to_bits() as u64,
        config.grad_clip.to_bits() as u64,
        guard.ema_beta.to_bits() as u64,
        guard.divergence_factor.to_bits() as u64,
        guard.patience as u64,
        guard.checkpoint_every as u64,
        guard.max_recoveries as u64,
        guard.lr_backoff.to_bits() as u64,
        guard.warmup_steps as u64,
    ])
}

/// Record of one training step.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// 0-based step index.
    pub step: usize,
    /// Mini-batch MSE loss.
    pub loss: f32,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
    /// Learning rate used.
    pub lr: f32,
}

/// Trains `model` on contexts sampled from `graph` (the training-visible
/// graph) with the default [`GuardConfig`], returning a [`TrainReport`].
/// Deterministic under a fixed `rng`.
pub fn train(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    config: &TrainConfig,
    rng: &mut (impl Rng + StateRng),
) -> HireResult<TrainReport> {
    train_guarded(
        model,
        dataset,
        graph,
        sampler,
        config,
        &GuardConfig::default(),
        rng,
    )
}

/// Resumes (or starts) a training run whose durable snapshots live in
/// `dir`, using the default [`GuardConfig`].
///
/// The newest snapshot that passes integrity validation is loaded —
/// truncated or bit-flipped files are skipped with a logged warning — and
/// training continues from its exact state: parameters, optimizer moments,
/// Lookahead slow weights, guard baseline, learning-rate scale, and RNG
/// stream. The caller builds `model` and seeds `rng` exactly as for a fresh
/// run; the snapshot then overwrites both, so the resumed trajectory is
/// bit-identical to the uninterrupted one. If the directory holds no valid
/// snapshot, training starts fresh (writing snapshots into `dir`).
///
/// Fails if the snapshot was produced under different hyper-parameters
/// (config fingerprint mismatch) or does not line up with the model.
pub fn resume_from(
    dir: impl Into<PathBuf>,
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    config: &TrainConfig,
    rng: &mut (impl Rng + StateRng),
) -> HireResult<TrainReport> {
    let mut config = config.clone();
    config.checkpoint_dir = Some(dir.into());
    config.resume = true;
    train_guarded(
        model,
        dataset,
        graph,
        sampler,
        &config,
        &GuardConfig::default(),
        rng,
    )
}

/// [`train`] with explicit guard settings.
///
/// Each step the guard inspects the mini-batch loss and the gradient
/// statistics. On divergence (non-finite loss/gradients, or a sustained
/// loss explosion relative to the EMA baseline) the parameters are rolled
/// back to the last healthy checkpoint, the learning rate is scaled by
/// `guard.lr_backoff`, and the optimizer state is rebuilt. After
/// `guard.max_recoveries` rollbacks the run stops with
/// [`TrainOutcome::Aborted`] — the weights stay at the last good snapshot,
/// so callers always receive a usable (finite) model.
pub fn train_guarded(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    config: &TrainConfig,
    guard_config: &GuardConfig,
    rng: &mut (impl Rng + StateRng),
) -> HireResult<TrainReport> {
    let edges: Vec<Rating> = graph.edges().collect();
    if edges.is_empty() {
        return Err(HireError::invalid_data(
            "train",
            "training graph has no edges",
        ));
    }
    train_impl(
        model,
        dataset,
        graph,
        sampler,
        edges,
        config,
        guard_config,
        rng,
    )
}

/// Fine-tunes an already-trained model on a specific set of *seed edges*
/// (e.g. ratings that arrived after the model was frozen), while contexts
/// are still sampled from the full live `graph` — so each step sees the
/// new edge embedded in its real neighborhood, not in isolation.
///
/// This is `train_guarded` with the mini-batch seed pool restricted:
/// everything else (guard rollback, LR backoff, durable snapshots,
/// determinism under a fixed `rng`) behaves identically. Every seed edge
/// must be present in `graph` bounds; an empty slice is a typed error.
#[allow(clippy::too_many_arguments)]
pub fn fine_tune(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    seed_edges: &[Rating],
    config: &TrainConfig,
    guard_config: &GuardConfig,
    rng: &mut (impl Rng + StateRng),
) -> HireResult<TrainReport> {
    if seed_edges.is_empty() {
        return Err(HireError::invalid_data(
            "fine_tune",
            "no seed edges to fine-tune on",
        ));
    }
    for edge in seed_edges {
        if edge.user >= graph.num_users() || edge.item >= graph.num_items() {
            return Err(HireError::invalid_data(
                "fine_tune",
                format!(
                    "seed edge ({}, {}) out of graph bounds {}x{}",
                    edge.user,
                    edge.item,
                    graph.num_users(),
                    graph.num_items()
                ),
            ));
        }
    }
    train_impl(
        model,
        dataset,
        graph,
        sampler,
        seed_edges.to_vec(),
        config,
        guard_config,
        rng,
    )
}

/// Shared training loop: mini-batch seeds are drawn from `edges`, contexts
/// from `graph`.
#[allow(clippy::too_many_arguments)]
fn train_impl(
    model: &HireModel,
    dataset: &Dataset,
    graph: &BipartiteGraph,
    sampler: &dyn ContextSampler,
    edges: Vec<Rating>,
    config: &TrainConfig,
    guard_config: &GuardConfig,
    rng: &mut (impl Rng + StateRng),
) -> HireResult<TrainReport> {
    let params = model.parameters();
    let fp = config_fingerprint(config, guard_config);
    let store = match &config.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open(dir, config.checkpoint_keep_last)?),
        None => None,
    };

    let mut optimizer = Lookahead::paper_default(Lamb::paper_default(params.clone()));
    let schedule = FlatThenAnneal {
        base_lr: config.base_lr,
        total_steps: config.steps,
        flat_frac: 0.7,
    };
    let n = model.config().context_users;
    let m = model.config().context_items;
    let input_ratio = model.config().input_ratio;

    let mut guard = NumericalGuard::new(guard_config.clone());
    let mut checkpoint = ParameterCheckpoint::capture(0, &params);
    let mut lr_scale = 1.0f32;
    let mut prior_recoveries = 0usize;
    let mut start_step = 0usize;

    if config.resume {
        let store = store.as_ref().ok_or_else(|| {
            HireError::invalid_argument("resume", "resume requires checkpoint_dir to be set")
        })?;
        if let Some(found) = store.load_latest()? {
            let snap = found.snapshot;
            let label = found.path.display().to_string();
            if snap.config_fingerprint != fp {
                return Err(HireError::corrupt_checkpoint(
                    label,
                    "snapshot was produced under different hyper-parameters; refusing to resume",
                ));
            }
            if snap.params.len() != params.len() {
                return Err(HireError::corrupt_checkpoint(
                    label,
                    format!(
                        "snapshot has {} parameter tensors but the model has {}",
                        snap.params.len(),
                        params.len()
                    ),
                ));
            }
            for (p, v) in params.iter().zip(&snap.params) {
                if p.value().dims() != v.dims() {
                    return Err(HireError::corrupt_checkpoint(
                        label,
                        "snapshot parameter shapes do not match the model",
                    ));
                }
                p.set_value(v.clone());
            }
            checkpoint =
                ParameterCheckpoint::from_values(snap.rollback_step as usize, snap.rollback_params);
            optimizer.inner_mut().import_moments(
                snap.optimizer.lamb_m,
                snap.optimizer.lamb_v,
                snap.optimizer.lamb_t,
            )?;
            optimizer.import_slow(snap.optimizer.slow_weights, snap.optimizer.lookahead_steps)?;
            guard.import_state(
                snap.guard.ema,
                snap.guard.healthy_steps as usize,
                snap.guard.suspicious_streak as usize,
            );
            lr_scale = snap.guard.lr_scale;
            prior_recoveries = snap.guard.recoveries as usize;
            if !rng.import_state(&snap.rng_words) {
                return Err(HireError::corrupt_checkpoint(
                    label,
                    "snapshot RNG state does not match this generator",
                ));
            }
            start_step = snap.completed_steps as usize;
        }
        // No valid snapshot: first run under --resume starts fresh.
    }

    let mut steps = Vec::with_capacity(config.steps.saturating_sub(start_step));
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut outcome = TrainOutcome::Completed;
    let mut last_save = Instant::now();

    // A durable baseline before the first step, so a crash inside step 1
    // still leaves something to resume from.
    if let (Some(store), 0) = (&store, start_step) {
        store.save(&snapshot_now(
            0,
            fp,
            &params,
            &checkpoint,
            &optimizer,
            &guard,
            lr_scale,
            prior_recoveries,
            rng,
        ))?;
    }

    for step in start_step..config.steps {
        optimizer.zero_grad();
        // Algorithm 1 line 4: draw a mini-batch of prediction contexts.
        let mut batch_loss: Option<hire_tensor::Tensor> = None;
        for _ in 0..config.batch_size {
            let seed = *edges.choose(rng).expect("non-empty edges");
            let ctx = training_context(graph, sampler, seed, n, m, input_ratio, rng)?;
            if ctx.num_targets() == 0 {
                continue;
            }
            let loss = model.context_loss(&ctx, dataset);
            batch_loss = Some(match batch_loss {
                None => loss,
                Some(acc) => acc.add(&loss),
            });
        }
        if let Some(total) = batch_loss {
            let loss = total.mul_scalar(1.0 / config.batch_size as f32);
            let loss_value = loss.item();
            loss.backward();
            let clip = clip_grad_norm(&params, config.grad_clip);
            let lr = schedule.lr(step) * lr_scale;
            steps.push(StepStats {
                step,
                loss: loss_value,
                grad_norm: clip.pre_clip_norm,
                lr,
            });

            if let Some(reason) = guard.observe(loss_value, clip.nonfinite_entries) {
                // Roll back, shrink the LR, and rebuild the optimizer: its
                // moment estimates were computed from the diverged trajectory.
                // The LR follows the shared backoff's geometric decay —
                // `lr_backoff^total_recoveries` — which is bit-identical to
                // multiplying the (possibly resumed) scale once per event.
                checkpoint.restore(&params);
                lr_scale = crate::backoff::Backoff::geometric(
                    guard_config.lr_backoff,
                    prior_recoveries + recoveries.len() + 1,
                );
                optimizer = Lookahead::paper_default(Lamb::paper_default(params.clone()));
                guard.reset();
                recoveries.push(RecoveryEvent {
                    step,
                    reason,
                    restored_step: checkpoint.step(),
                    lr_scale,
                });
                // The budget spans the whole run, including recoveries
                // performed before an interruption.
                if prior_recoveries + recoveries.len() > guard_config.max_recoveries {
                    outcome = TrainOutcome::Aborted { step };
                }
            } else {
                optimizer.step(lr);
                if (step + 1) % guard_config.checkpoint_every == 0 {
                    checkpoint = ParameterCheckpoint::capture(step + 1, &params);
                }
            }
        }

        let completed = step + 1;
        if matches!(outcome, TrainOutcome::Completed) {
            if let Some(halt) = config.halt_after_steps {
                if completed - start_step >= halt && completed < config.steps {
                    outcome = TrainOutcome::Interrupted { step };
                }
            }
        }
        let stopping = !matches!(outcome, TrainOutcome::Completed);
        if let Some(store) = &store {
            // Snapshots land at iteration boundaries — the RNG state is the
            // one the *next* step will see, which is what makes the resumed
            // trajectory bit-identical.
            let due = stopping
                || completed == config.steps
                || config.checkpoint_every_secs <= 0.0
                || last_save.elapsed().as_secs_f64() >= config.checkpoint_every_secs;
            if due {
                store.save(&snapshot_now(
                    completed,
                    fp,
                    &params,
                    &checkpoint,
                    &optimizer,
                    &guard,
                    lr_scale,
                    prior_recoveries + recoveries.len(),
                    rng,
                ))?;
                last_save = Instant::now();
            }
        }
        if stopping {
            break;
        }
    }
    Ok(TrainReport {
        steps,
        recoveries,
        outcome,
    })
}

/// Captures the complete live training state at a step boundary.
#[allow(clippy::too_many_arguments)]
fn snapshot_now(
    completed: usize,
    fp: u64,
    params: &[Tensor],
    checkpoint: &ParameterCheckpoint,
    optimizer: &Lookahead<Lamb>,
    guard: &NumericalGuard,
    lr_scale: f32,
    total_recoveries: usize,
    rng: &impl StateRng,
) -> TrainSnapshot {
    let (lamb_m, lamb_v, lamb_t) = optimizer.inner().export_moments();
    let (slow_weights, lookahead_steps) = optimizer.export_slow();
    let (ema, healthy_steps, suspicious_streak) = guard.export_state();
    TrainSnapshot {
        completed_steps: completed as u64,
        config_fingerprint: fp,
        params: params.iter().map(|p| p.value()).collect(),
        rollback_step: checkpoint.step() as u64,
        rollback_params: checkpoint.values().to_vec(),
        optimizer: OptimizerSnapshot {
            lamb_m,
            lamb_v,
            lamb_t,
            slow_weights,
            lookahead_steps,
        },
        guard: GuardSnapshot {
            ema,
            healthy_steps: healthy_steps as u64,
            suspicious_streak: suspicious_streak as u64,
            lr_scale,
            recoveries: total_recoveries as u32,
        },
        rng_words: rng.export_state(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HireConfig;
    use hire_data::SyntheticConfig;
    use hire_graph::NeighborhoodSampler;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_loss() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(40, 30, (10, 20))
            .generate(2);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 6,
            context_items: 6,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let model = HireModel::new(&dataset, &config, &mut rng);
        let tc = TrainConfig {
            steps: 60,
            batch_size: 2,
            base_lr: 3e-3,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        };
        let report = train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &tc,
            &mut rng,
        )
        .expect("training");
        assert_eq!(report.outcome, crate::guard::TrainOutcome::Completed);
        assert!(report.recoveries.is_empty(), "healthy run must not recover");
        let history = report.steps;
        assert!(!history.is_empty());
        let first: f32 = history[..10].iter().map(|s| s.loss).sum::<f32>() / 10.0;
        let last: f32 = history[history.len() - 10..]
            .iter()
            .map(|s| s.loss)
            .sum::<f32>()
            / 10.0;
        assert!(
            last < first * 0.9,
            "loss did not decrease: first={first:.4} last={last:.4}"
        );
        // all stats well-formed
        for s in &history {
            assert!(s.loss.is_finite() && s.grad_norm.is_finite() && s.lr > 0.0);
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(30, 25, (8, 12))
            .generate(3);
        let graph = dataset.graph();
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 4,
            context_items: 4,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let tc = TrainConfig {
            steps: 10,
            batch_size: 2,
            base_lr: 1e-3,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        };
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let model = HireModel::new(&dataset, &config, &mut rng);
            train(
                &model,
                &dataset,
                &graph,
                &NeighborhoodSampler,
                &tc,
                &mut rng,
            )
            .expect("training")
            .steps
            .iter()
            .map(|s| s.loss)
            .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn empty_training_graph_is_a_typed_error() {
        let dataset = SyntheticConfig::movielens_like()
            .scaled(10, 10, (3, 5))
            .generate(0);
        let empty = hire_graph::BipartiteGraph::empty(10, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig::fast();
        let model = HireModel::new(&dataset, &config, &mut rng);
        let err = train(
            &model,
            &dataset,
            &empty,
            &NeighborhoodSampler,
            &TrainConfig::fast(),
            &mut rng,
        )
        .expect_err("empty graph must error");
        assert!(err.to_string().contains("no edges"));
    }

    #[test]
    fn absurd_learning_rate_triggers_recovery_and_stays_finite() {
        // The divergence-recovery acceptance test: an absurd base LR blows
        // up training; the guard must roll back at least once and the model
        // must come out with finite weights and a finite loss.
        let dataset = SyntheticConfig::movielens_like()
            .scaled(40, 30, (10, 20))
            .generate(2);
        let graph = dataset.graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = HireConfig {
            attr_dim: 4,
            num_blocks: 1,
            heads: 2,
            head_dim: 4,
            context_users: 6,
            context_items: 6,
            input_ratio: 0.2,
            enable_mbu: true,
            enable_mbi: true,
            enable_mba: true,
            residual: true,
            layer_norm: true,
        };
        let model = HireModel::new(&dataset, &config, &mut rng);
        let tc = TrainConfig {
            steps: 60,
            batch_size: 2,
            base_lr: 50.0,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        };
        let report = train(
            &model,
            &dataset,
            &graph,
            &NeighborhoodSampler,
            &tc,
            &mut rng,
        )
        .expect("guarded training must not error out");
        assert!(
            !report.recoveries.is_empty(),
            "LR 50 must trigger at least one recovery; outcome {:?}",
            report.outcome
        );
        for (a, b) in report
            .recoveries
            .iter()
            .zip(report.recoveries.iter().skip(1))
        {
            assert!(b.lr_scale < a.lr_scale, "LR must shrink across recoveries");
        }
        let final_loss = report.final_loss().expect("at least one finite-loss step");
        assert!(final_loss.is_finite());
        for p in model.parameters() {
            assert!(
                !p.value().has_non_finite(),
                "weights poisoned after recovery"
            );
        }
    }
}
