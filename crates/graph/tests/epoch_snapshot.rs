//! Epoch-pinned snapshot invariants under concurrent writers (ISSUE 8,
//! satellite 3): a reader pinned to epoch E never observes a post-E edge,
//! no matter how many commits land while it holds the pin.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use hire_graph::{BipartiteGraph, EpochSource, EpochedGraph, Rating};

fn base_graph(users: usize, items: usize) -> BipartiteGraph {
    let ratings: Vec<Rating> = (0..users).map(|u| Rating::new(u, u % items, 3.0)).collect();
    BipartiteGraph::from_ratings(users, items, &ratings)
}

/// Edge committed at epoch e (1-based): user `e - 1` rates item
/// `(e - 1 + 1) % items` — distinct from every base edge.
fn edge_for_epoch(e: u64, items: usize) -> Rating {
    let u = (e - 1) as usize;
    Rating::new(u, (u + 1) % items, 5.0)
}

#[test]
fn reader_pinned_to_epoch_e_never_observes_post_e_edge() {
    let users = 64;
    let items = 16;
    let g = Arc::new(EpochedGraph::new(base_graph(users, items)));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let g = Arc::clone(&g);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            for e in 1..=users as u64 {
                let committed = g.commit_edges(&[edge_for_epoch(e, items)]);
                assert_eq!(committed, e, "epochs advance by exactly one per commit");
            }
            stop.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let g = Arc::clone(&g);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut max_seen = 0u64;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let pin = g.pin();
                    let e = pin.epoch();
                    assert!(e >= max_seen, "pinned epochs are monotone per reader");
                    max_seen = max_seen.max(e);
                    // Every edge committed at an epoch <= E is visible...
                    for past in 1..=e {
                        let r = edge_for_epoch(past, items);
                        assert_eq!(
                            pin.rating(r.user, r.item),
                            Some(r.value),
                            "edge committed at epoch {past} missing from pin at {e}"
                        );
                    }
                    // ...and no edge committed after E is, even though the
                    // writer keeps committing while we hold this pin.
                    for future in (e + 1)..=users as u64 {
                        let r = edge_for_epoch(future, items);
                        assert_eq!(
                            pin.rating(r.user, r.item),
                            None,
                            "pin at epoch {e} observes post-E edge from epoch {future}"
                        );
                    }
                    assert_eq!(pin.num_ratings(), users + e as usize);
                    if done {
                        break;
                    }
                }
            })
        })
        .collect();

    writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }
    assert_eq!(g.epoch(), users as u64);
    // A stale pin taken before the last commits still answers from its era.
    let final_pin = g.pin();
    assert!(final_pin.is_current(&*g));
}

#[test]
fn concurrent_commits_lose_no_edges() {
    let items = 8;
    let g = Arc::new(EpochedGraph::new(BipartiteGraph::empty(64, items)));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let g = Arc::clone(&g);
            thread::spawn(move || {
                for k in 0..16usize {
                    let u = t * 16 + k;
                    g.commit_edges(&[Rating::new(u, u % items, 1.0)]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("committer");
    }
    assert_eq!(g.epoch(), 64);
    let pin = g.pin();
    assert_eq!(pin.num_ratings(), 64);
    for u in 0..64 {
        assert_eq!(pin.rating(u, u % items), Some(1.0));
    }
}
