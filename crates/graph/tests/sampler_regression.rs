//! Pins `NeighborhoodSampler` bit-for-bit against the pre-CSR, pre-HashSet
//! implementation.
//!
//! Two things changed under the sampler and both must be invisible:
//! - `BipartiteGraph` adjacency moved from `Vec<Vec<(usize, f32)>>` to a
//!   shared CSR buffer, and
//! - the BFS hop dedup moved from an O(frontier²) `Vec::contains` scan to a
//!   HashSet (insertion order preserved).
//!
//! Neither may alter the vectors handed to `shuffle`, so the RNG stream —
//! and therefore every sampled context — must match the legacy
//! implementation exactly, seed for seed.

use hire_graph::{BipartiteGraph, ContextSampler, ContextSelection, NeighborhoodSampler, Rating};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

// ---------------------------------------------------------------------
// Verbatim copy of the legacy sampler (before the CSR/HashSet change),
// kept here as the regression oracle.
// ---------------------------------------------------------------------

fn legacy_dedup_seeds(seeds: &[usize], budget: usize) -> Vec<usize> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &s in seeds {
        if seen.insert(s) {
            out.push(s);
        }
    }
    assert!(out.len() <= budget);
    out
}

fn legacy_fill_random(
    selected: &mut Vec<usize>,
    budget: usize,
    total: usize,
    rng: &mut dyn rand::RngCore,
) {
    if selected.len() >= budget || total == 0 {
        return;
    }
    let chosen: HashSet<usize> = selected.iter().copied().collect();
    let mut pool: Vec<usize> = (0..total).filter(|x| !chosen.contains(x)).collect();
    pool.shuffle(rng);
    for x in pool {
        if selected.len() >= budget {
            break;
        }
        selected.push(x);
    }
}

fn legacy_sample(
    graph: &BipartiteGraph,
    seed_users: &[usize],
    seed_items: &[usize],
    n: usize,
    m: usize,
    rng: &mut dyn rand::RngCore,
) -> ContextSelection {
    let mut users = legacy_dedup_seeds(seed_users, n);
    let mut items = legacy_dedup_seeds(seed_items, m);
    let user_set: HashSet<usize> = users.iter().copied().collect();
    let item_set: HashSet<usize> = items.iter().copied().collect();
    let mut user_set = user_set;
    let mut item_set = item_set;

    let mut frontier_users: Vec<usize> = users.clone();
    let mut frontier_items: Vec<usize> = items.clone();

    while (users.len() < n || items.len() < m)
        && (!frontier_users.is_empty() || !frontier_items.is_empty())
    {
        let mut next_items: Vec<usize> = Vec::new();
        for &u in &frontier_users {
            for &(i, _) in graph.user_neighbors(u) {
                if !item_set.contains(&i) && !next_items.contains(&i) {
                    next_items.push(i);
                }
            }
        }
        let mut next_users: Vec<usize> = Vec::new();
        for &i in &frontier_items {
            for &(u, _) in graph.item_neighbors(i) {
                if !user_set.contains(&u) && !next_users.contains(&u) {
                    next_users.push(u);
                }
            }
        }

        let item_budget = m - items.len();
        if next_items.len() > item_budget {
            next_items.shuffle(rng);
            next_items.truncate(item_budget);
        }
        let user_budget = n - users.len();
        if next_users.len() > user_budget {
            next_users.shuffle(rng);
            next_users.truncate(user_budget);
        }

        for &i in &next_items {
            item_set.insert(i);
            items.push(i);
        }
        for &u in &next_users {
            user_set.insert(u);
            users.push(u);
        }
        frontier_users = next_users;
        frontier_items = next_items;
    }

    legacy_fill_random(&mut users, n, graph.num_users(), rng);
    legacy_fill_random(&mut items, m, graph.num_items(), rng);
    ContextSelection { users, items }
}

// ---------------------------------------------------------------------
// Regression tests
// ---------------------------------------------------------------------

/// Random bipartite graph with `density` edge probability and ratings in
/// 1..=5.
fn random_graph(num_users: usize, num_items: usize, density: f64, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..num_users {
        for i in 0..num_items {
            if rng.gen_bool(density) {
                edges.push(Rating::new(u, i, rng.gen_range(1..=5) as f32));
            }
        }
    }
    BipartiteGraph::from_ratings(num_users, num_items, &edges)
}

#[test]
fn sampled_contexts_match_legacy_bit_for_bit() {
    for graph_seed in 0..4u64 {
        let graph = random_graph(40, 35, 0.08, graph_seed);
        for sample_seed in 0..16u64 {
            let mut rng_new = StdRng::seed_from_u64(sample_seed);
            let mut rng_old = StdRng::seed_from_u64(sample_seed);
            let seed_user = (sample_seed as usize * 7) % 40;
            let seed_item = (sample_seed as usize * 11) % 35;
            let new =
                NeighborhoodSampler.sample(&graph, &[seed_user], &[seed_item], 8, 6, &mut rng_new);
            let old = legacy_sample(&graph, &[seed_user], &[seed_item], 8, 6, &mut rng_old);
            assert_eq!(
                new, old,
                "graph seed {graph_seed}, sample seed {sample_seed}"
            );
        }
    }
}

#[test]
fn sampled_contexts_match_legacy_on_sparse_and_dense_graphs() {
    // Sparse graph: BFS dries up and the random fill-in must consume the
    // same RNG stream. Dense graph: every hop overflows its budget and the
    // shuffle order must match.
    for (density, n, m) in [(0.01, 10, 10), (0.6, 6, 5)] {
        let graph = random_graph(30, 30, density, 99);
        for sample_seed in 100..110u64 {
            let mut rng_new = StdRng::seed_from_u64(sample_seed);
            let mut rng_old = StdRng::seed_from_u64(sample_seed);
            let new = NeighborhoodSampler.sample(&graph, &[3], &[4], n, m, &mut rng_new);
            let old = legacy_sample(&graph, &[3], &[4], n, m, &mut rng_old);
            assert_eq!(new, old, "density {density}, sample seed {sample_seed}");
        }
    }
}

#[test]
fn rng_streams_stay_aligned_after_sampling() {
    // Stronger than equal outputs: the samplers must consume *exactly* the
    // same number of RNG draws, or downstream consumers sharing the rng
    // (context construction shuffles) would diverge.
    let graph = random_graph(25, 25, 0.15, 7);
    let mut rng_new = StdRng::seed_from_u64(42);
    let mut rng_old = StdRng::seed_from_u64(42);
    for k in 0..8usize {
        let _ = NeighborhoodSampler.sample(&graph, &[k], &[k], 7, 7, &mut rng_new);
        let _ = legacy_sample(&graph, &[k], &[k], 7, 7, &mut rng_old);
        assert_eq!(
            rng_new.gen::<u64>(),
            rng_old.gen::<u64>(),
            "RNG streams diverged after sample {k}"
        );
    }
}
