//! Epoch-pinned, copy-on-write graph snapshots.
//!
//! The serving path needs two guarantees from the rating graph:
//!
//! 1. a reader that pinned a snapshot keeps an immutable view forever —
//!    a concurrent `insert_rating` never blocks it and never mutates what
//!    it sees;
//! 2. a memoized result computed against epoch E must not be cached if the
//!    graph moved past E while the computation ran (the PR-4 guard).
//!
//! [`EpochedGraph`] provides both: the current snapshot is an
//! `Arc<BipartiteGraph>` behind a short-critical-section `RwLock`, writers
//! build the successor snapshot *outside* that lock (copy-on-write via the
//! merge-based [`BipartiteGraph::with_extra_edges`]) and install it with a
//! brief write-locked pointer swap plus an epoch bump. Readers
//! [`pin`](EpochedGraph::pin) a [`PinnedGraph`] — the `Arc` and the epoch it
//! was installed under, read atomically — and old snapshots are reclaimed by
//! plain `Arc` reference counting once the last pin drops (no deferred
//! reclamation machinery needed).
//!
//! The [`EpochSource`] trait abstracts "what epoch is the graph at now" so
//! the single-engine serve path and the sharded per-shard snapshots share
//! one guard implementation instead of copy-pasting the
//! sample-then-recheck-epoch logic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::bipartite::{BipartiteGraph, Rating};

/// Source of a monotonically increasing graph epoch: bumped exactly once
/// per committed mutation. Implementors must guarantee that any edge
/// visible through a snapshot pinned at epoch E was committed at some
/// epoch ≤ E.
pub trait EpochSource: Send + Sync {
    /// The current epoch.
    fn epoch(&self) -> u64;
}

impl<E: EpochSource + ?Sized> EpochSource for Arc<E> {
    fn epoch(&self) -> u64 {
        (**self).epoch()
    }
}

impl<E: EpochSource + ?Sized> EpochSource for &E {
    fn epoch(&self) -> u64 {
        (**self).epoch()
    }
}

/// An immutable graph snapshot plus the epoch it was installed under.
/// Dereferences to [`BipartiteGraph`]; holding one never blocks writers.
#[derive(Debug, Clone)]
pub struct PinnedGraph {
    graph: Arc<BipartiteGraph>,
    epoch: u64,
}

impl PinnedGraph {
    /// The pinned snapshot.
    pub fn graph(&self) -> &Arc<BipartiteGraph> {
        &self.graph
    }

    /// The epoch this snapshot was installed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `source` has not moved past this snapshot's epoch — the
    /// condition under which results computed against it may be memoized.
    pub fn is_current(&self, source: &dyn EpochSource) -> bool {
        source.epoch() == self.epoch
    }
}

impl std::ops::Deref for PinnedGraph {
    type Target = BipartiteGraph;

    fn deref(&self) -> &BipartiteGraph {
        &self.graph
    }
}

/// Copy-on-write, epoch-pinned graph: see the module docs.
#[derive(Debug)]
pub struct EpochedGraph {
    slot: RwLock<Arc<BipartiteGraph>>,
    epoch: AtomicU64,
    /// Serializes writers so concurrent commits can't build successors from
    /// the same base and lose edges. Readers never touch this lock.
    writer: Mutex<()>,
}

impl EpochedGraph {
    /// Wraps a graph at epoch 0.
    pub fn new(graph: BipartiteGraph) -> Self {
        Self::from_arc(Arc::new(graph))
    }

    /// Wraps an already-shared snapshot at epoch 0. Shards built over the
    /// same base graph share one CSR allocation this way.
    pub fn from_arc(graph: Arc<BipartiteGraph>) -> Self {
        EpochedGraph {
            slot: RwLock::new(graph),
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Pins the current snapshot together with its epoch (read atomically
    /// with respect to [`Self::commit_edges`]).
    pub fn pin(&self) -> PinnedGraph {
        let slot = self.slot.read().unwrap_or_else(|p| p.into_inner());
        let graph = Arc::clone(&slot);
        let epoch = self.epoch.load(Ordering::Acquire);
        PinnedGraph { graph, epoch }
    }

    /// The current snapshot without the epoch (cheap `Arc` clone).
    pub fn latest(&self) -> Arc<BipartiteGraph> {
        Arc::clone(&self.slot.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Commits `extra` edges: builds the successor snapshot copy-on-write
    /// *outside* the reader lock, installs it with a brief write-locked
    /// pointer swap, and bumps the epoch. Returns the new epoch. Readers
    /// pinned to older epochs keep their snapshots untouched; duplicate
    /// edges follow [`BipartiteGraph::with_extra_edges`] semantics (the
    /// existing rating wins).
    pub fn commit_edges(&self, extra: &[Rating]) -> u64 {
        let _writers = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let base = self.latest();
        let next = Arc::new(base.with_extra_edges(extra));
        let mut slot = self.slot.write().unwrap_or_else(|p| p.into_inner());
        *slot = next;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

impl EpochSource for EpochedGraph {
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_ratings(3, 3, &[Rating::new(0, 0, 5.0), Rating::new(1, 1, 3.0)])
    }

    #[test]
    fn pin_epoch_and_commit() {
        let g = EpochedGraph::new(toy());
        let pin0 = g.pin();
        assert_eq!(pin0.epoch(), 0);
        assert!(pin0.is_current(&g));
        let e = g.commit_edges(&[Rating::new(2, 2, 4.0)]);
        assert_eq!(e, 1);
        assert_eq!(g.epoch(), 1);
        assert!(!pin0.is_current(&g));
        // The old pin never sees the post-E edge; the new pin does.
        assert_eq!(pin0.rating(2, 2), None);
        assert_eq!(g.pin().rating(2, 2), Some(4.0));
    }

    #[test]
    fn existing_edge_wins_on_commit() {
        let g = EpochedGraph::new(toy());
        g.commit_edges(&[Rating::new(0, 0, 1.0)]);
        assert_eq!(g.pin().rating(0, 0), Some(5.0));
        assert_eq!(g.epoch(), 1);
    }

    #[test]
    fn shared_base_diverges_independently() {
        let base = Arc::new(toy());
        let a = EpochedGraph::from_arc(Arc::clone(&base));
        let b = EpochedGraph::from_arc(Arc::clone(&base));
        a.commit_edges(&[Rating::new(2, 0, 2.0)]);
        assert_eq!(a.pin().rating(2, 0), Some(2.0));
        assert_eq!(b.pin().rating(2, 0), None);
        assert_eq!(b.epoch(), 0);
        // b still shares the original allocation.
        assert!(Arc::ptr_eq(b.pin().graph(), &base));
    }
}
