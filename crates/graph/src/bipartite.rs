//! The user-item bipartite rating graph.

/// A rated edge in the bipartite graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index.
    pub user: usize,
    /// Item index.
    pub item: usize,
    /// Observed rating value.
    pub value: f32,
}

impl Rating {
    /// Convenience constructor.
    pub fn new(user: usize, item: usize, value: f32) -> Self {
        Rating { user, item, value }
    }
}

/// Compressed sparse row adjacency: one flat, contiguous `(neighbor,
/// rating)` buffer plus per-node offsets. Node `v`'s neighbors live in
/// `entries[offsets[v]..offsets[v + 1]]`, sorted by neighbor index.
///
/// Compared to the previous `Vec<Vec<(usize, f32)>>` layout, every
/// neighborhood scan walks one shared allocation instead of chasing a
/// pointer per node — the access pattern of repeated BFS context sampling
/// (`NeighborhoodSampler`), which touches many small neighborhoods per
/// query.
#[derive(Debug, Clone)]
struct CsrAdjacency {
    offsets: Vec<usize>,
    entries: Vec<(usize, f32)>,
}

impl CsrAdjacency {
    /// Builds from per-node edge lists, sorting each node's neighbors and
    /// dropping duplicate neighbors (keeping the first occurrence, matching
    /// the pre-CSR behavior of stable sort + `dedup_by_key`).
    fn build(num_nodes: usize, edges: impl Iterator<Item = (usize, usize, f32)>) -> Self {
        let mut per_node: Vec<Vec<(usize, f32)>> = vec![Vec::new(); num_nodes];
        for (node, neighbor, value) in edges {
            per_node[node].push((neighbor, value));
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        for adj in &mut per_node {
            adj.sort_by_key(|&(x, _)| x);
            adj.dedup_by_key(|&mut (x, _)| x);
            entries.extend_from_slice(adj);
            offsets.push(entries.len());
        }
        CsrAdjacency { offsets, entries }
    }

    fn neighbors(&self, node: usize) -> &[(usize, f32)] {
        &self.entries[self.offsets[node]..self.offsets[node + 1]]
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Merges `extra` edges (already deduplicated against this adjacency and
    /// within themselves) into a new adjacency in one pass over the flat
    /// entry buffer — two allocations total, no per-node lists. `extra` is
    /// `(node, neighbor, value)` triples.
    fn merged(&self, num_nodes: usize, extra: &[(usize, usize, f32)]) -> CsrAdjacency {
        let mut ex: Vec<(usize, usize, f32)> = extra.to_vec();
        ex.sort_by_key(|&(n, nb, _)| (n, nb));
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut entries = Vec::with_capacity(self.entries.len() + ex.len());
        offsets.push(0);
        let mut ei = 0;
        for node in 0..num_nodes {
            let old = self.neighbors(node);
            let mut oi = 0;
            while ei < ex.len() && ex[ei].0 == node {
                let (_, nb, v) = ex[ei];
                while oi < old.len() && old[oi].0 < nb {
                    entries.push(old[oi]);
                    oi += 1;
                }
                entries.push((nb, v));
                ei += 1;
            }
            entries.extend_from_slice(&old[oi..]);
            offsets.push(entries.len());
        }
        CsrAdjacency { offsets, entries }
    }

    /// Finishes a two-pass streaming build: `offsets` are prefix-summed
    /// degree counts (length `num_nodes + 1`) and `entries` the filled,
    /// per-node-unsorted buffer. Stable-sorts each row and compacts
    /// duplicate neighbors in place (first occurrence kept), matching
    /// [`CsrAdjacency::build`] exactly.
    fn finish_filled(mut offsets: Vec<usize>, mut entries: Vec<(usize, f32)>) -> CsrAdjacency {
        let num_nodes = offsets.len() - 1;
        let mut write = 0;
        for node in 0..num_nodes {
            let start = offsets[node];
            let end = offsets[node + 1];
            entries[start..end].sort_by_key(|&(x, _)| x);
            let row_start = write;
            let mut last: Option<usize> = None;
            for i in start..end {
                let e = entries[i];
                if last == Some(e.0) {
                    continue;
                }
                last = Some(e.0);
                entries[write] = e;
                write += 1;
            }
            offsets[node] = row_start;
        }
        offsets[num_nodes] = write;
        entries.truncate(write);
        CsrAdjacency { offsets, entries }
    }
}

/// User-item bipartite graph with ratings on the edges, stored as CSR
/// (compressed sparse row) adjacency on both sides for O(log d) rating
/// lookup, O(1) neighbor-slice access, and cache-friendly repeated
/// neighborhood scans.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    num_users: usize,
    num_items: usize,
    /// Per user: sorted `(item, rating)` pairs, CSR-packed.
    user_adj: CsrAdjacency,
    /// Per item: sorted `(user, rating)` pairs, CSR-packed.
    item_adj: CsrAdjacency,
    num_ratings: usize,
}

impl BipartiteGraph {
    /// Builds a graph from an edge list. Duplicate `(user, item)` pairs keep
    /// the first occurrence's rating. Panics on out-of-range indices.
    pub fn from_ratings(num_users: usize, num_items: usize, ratings: &[Rating]) -> Self {
        for r in ratings {
            assert!(
                r.user < num_users,
                "user {} out of range {num_users}",
                r.user
            );
            assert!(
                r.item < num_items,
                "item {} out of range {num_items}",
                r.item
            );
        }
        let user_adj =
            CsrAdjacency::build(num_users, ratings.iter().map(|r| (r.user, r.item, r.value)));
        let item_adj =
            CsrAdjacency::build(num_items, ratings.iter().map(|r| (r.item, r.user, r.value)));
        let num_ratings = user_adj.len();
        BipartiteGraph {
            num_users,
            num_items,
            user_adj,
            item_adj,
            num_ratings,
        }
    }

    /// Empty graph with the given vertex counts.
    pub fn empty(num_users: usize, num_items: usize) -> Self {
        Self::from_ratings(num_users, num_items, &[])
    }

    /// Number of user vertices.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of item vertices.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of rated edges.
    pub fn num_ratings(&self) -> usize {
        self.num_ratings
    }

    /// Items rated by `user`, with ratings, sorted by item index.
    pub fn user_neighbors(&self, user: usize) -> &[(usize, f32)] {
        self.user_adj.neighbors(user)
    }

    /// Users who rated `item`, with ratings, sorted by user index.
    pub fn item_neighbors(&self, item: usize) -> &[(usize, f32)] {
        self.item_adj.neighbors(item)
    }

    /// The rating of `user` on `item`, if observed.
    pub fn rating(&self, user: usize, item: usize) -> Option<f32> {
        let adj = self.user_adj.neighbors(user);
        adj.binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|ix| adj[ix].1)
    }

    /// Degree of a user (number of rated items).
    pub fn user_degree(&self, user: usize) -> usize {
        self.user_adj.neighbors(user).len()
    }

    /// Degree of an item (number of raters).
    pub fn item_degree(&self, item: usize) -> usize {
        self.item_adj.neighbors(item).len()
    }

    /// Mean rating over all edges; `None` for an empty graph.
    pub fn mean_rating(&self) -> Option<f32> {
        if self.num_ratings == 0 {
            return None;
        }
        let sum: f64 = self.user_adj.entries.iter().map(|&(_, r)| r as f64).sum();
        Some((sum / self.num_ratings as f64) as f32)
    }

    /// Density: observed edges / possible edges.
    pub fn density(&self) -> f32 {
        let possible = self.num_users * self.num_items;
        if possible == 0 {
            0.0
        } else {
            self.num_ratings as f32 / possible as f32
        }
    }

    /// Iterates over all rated edges.
    pub fn edges(&self) -> impl Iterator<Item = Rating> + '_ {
        (0..self.num_users).flat_map(move |u| {
            self.user_adj
                .neighbors(u)
                .iter()
                .map(move |&(i, r)| Rating::new(u, i, r))
        })
    }

    /// Returns a new graph containing this graph's edges plus `extra`.
    ///
    /// Duplicate pairs keep the first occurrence — an existing edge's rating
    /// wins over an extra for the same `(user, item)`, and among extras the
    /// earliest wins (identical to rebuilding via [`Self::from_ratings`]).
    /// Implemented as a single merge pass over both CSR sides rather than a
    /// full re-sort, so extending a large graph by a handful of edges costs
    /// O(E) copying but no per-node allocations — the copy-on-write path
    /// behind [`crate::EpochedGraph::commit_edges`].
    pub fn with_extra_edges(&self, extra: &[Rating]) -> BipartiteGraph {
        let mut add: Vec<Rating> = Vec::with_capacity(extra.len());
        for r in extra {
            assert!(
                r.user < self.num_users,
                "user {} out of range {}",
                r.user,
                self.num_users
            );
            assert!(
                r.item < self.num_items,
                "item {} out of range {}",
                r.item,
                self.num_items
            );
            if self.rating(r.user, r.item).is_none()
                && !add.iter().any(|a| a.user == r.user && a.item == r.item)
            {
                add.push(*r);
            }
        }
        let user_extra: Vec<(usize, usize, f32)> =
            add.iter().map(|r| (r.user, r.item, r.value)).collect();
        let item_extra: Vec<(usize, usize, f32)> =
            add.iter().map(|r| (r.item, r.user, r.value)).collect();
        let user_adj = self.user_adj.merged(self.num_users, &user_extra);
        let item_adj = self.item_adj.merged(self.num_items, &item_extra);
        let num_ratings = user_adj.len();
        BipartiteGraph {
            num_users: self.num_users,
            num_items: self.num_items,
            user_adj,
            item_adj,
            num_ratings,
        }
    }

    /// Two-pass, allocation-conscious build for large graphs. `stream` is
    /// invoked exactly twice with an emit callback and must produce the
    /// identical edge sequence both times (e.g. by re-seeding a generator) —
    /// pass one counts degrees, pass two fills preallocated flat CSR buffers
    /// directly, so no per-node `Vec` or intermediate `Vec<Rating>` is ever
    /// materialized. Duplicate `(user, item)` pairs keep the first
    /// occurrence, bit-identical to [`Self::from_ratings`] over the same
    /// sequence.
    pub fn from_edge_stream(
        num_users: usize,
        num_items: usize,
        mut stream: impl FnMut(&mut dyn FnMut(Rating)),
    ) -> Self {
        let mut udeg = vec![0usize; num_users];
        let mut ideg = vec![0usize; num_items];
        let mut count = 0usize;
        stream(&mut |r: Rating| {
            assert!(
                r.user < num_users,
                "user {} out of range {num_users}",
                r.user
            );
            assert!(
                r.item < num_items,
                "item {} out of range {num_items}",
                r.item
            );
            udeg[r.user] += 1;
            ideg[r.item] += 1;
            count += 1;
        });
        let prefix = |deg: &[usize]| {
            let mut off = Vec::with_capacity(deg.len() + 1);
            let mut acc = 0usize;
            off.push(0);
            for &d in deg {
                acc += d;
                off.push(acc);
            }
            off
        };
        let uoff = prefix(&udeg);
        let ioff = prefix(&ideg);
        let mut ucur: Vec<usize> = uoff[..num_users].to_vec();
        let mut icur: Vec<usize> = ioff[..num_items].to_vec();
        drop(udeg);
        drop(ideg);
        let mut uent = vec![(0usize, 0f32); count];
        let mut ient = vec![(0usize, 0f32); count];
        let mut seen = 0usize;
        stream(&mut |r: Rating| {
            assert!(seen < count, "edge stream grew between passes");
            uent[ucur[r.user]] = (r.item, r.value);
            ucur[r.user] += 1;
            ient[icur[r.item]] = (r.user, r.value);
            icur[r.item] += 1;
            seen += 1;
        });
        assert_eq!(seen, count, "edge stream must replay identically");
        let user_adj = CsrAdjacency::finish_filled(uoff, uent);
        let item_adj = CsrAdjacency::finish_filled(ioff, ient);
        let num_ratings = user_adj.len();
        debug_assert_eq!(num_ratings, item_adj.len());
        BipartiteGraph {
            num_users,
            num_items,
            user_adj,
            item_adj,
            num_ratings,
        }
    }
}

/// Undirected user-user social graph (used by the GraphRec baseline on the
/// Douban-style dataset).
#[derive(Debug, Clone)]
pub struct SocialGraph {
    adj: Vec<Vec<usize>>,
}

impl SocialGraph {
    /// Builds from undirected friendship pairs; self-loops are ignored and
    /// duplicates removed.
    pub fn from_edges(num_users: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_users];
        for &(a, b) in edges {
            assert!(a < num_users && b < num_users, "social edge out of range");
            if a == b {
                continue;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        SocialGraph { adj }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.adj.len()
    }

    /// Friends of `user`, sorted.
    pub fn friends(&self, user: usize) -> &[usize] {
        &self.adj[user]
    }

    /// Total undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_ratings(
            3,
            4,
            &[
                Rating::new(0, 0, 5.0),
                Rating::new(0, 1, 3.0),
                Rating::new(1, 1, 4.0),
                Rating::new(2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn adjacency_both_sides() {
        let g = toy();
        assert_eq!(g.user_neighbors(0), &[(0, 5.0), (1, 3.0)]);
        assert_eq!(g.item_neighbors(1), &[(0, 3.0), (1, 4.0)]);
        assert_eq!(g.user_degree(2), 1);
        assert_eq!(g.item_degree(2), 0);
        assert_eq!(g.num_ratings(), 4);
    }

    #[test]
    fn rating_lookup() {
        let g = toy();
        assert_eq!(g.rating(0, 1), Some(3.0));
        assert_eq!(g.rating(1, 0), None);
        assert_eq!(g.rating(2, 3), Some(1.0));
    }

    #[test]
    fn duplicate_edges_deduped() {
        let g =
            BipartiteGraph::from_ratings(1, 1, &[Rating::new(0, 0, 1.0), Rating::new(0, 0, 5.0)]);
        assert_eq!(g.num_ratings(), 1);
    }

    #[test]
    fn stats() {
        let g = toy();
        assert!((g.mean_rating().unwrap() - 3.25).abs() < 1e-6);
        assert!((g.density() - 4.0 / 12.0).abs() < 1e-6);
        assert!(BipartiteGraph::empty(2, 2).mean_rating().is_none());
    }

    #[test]
    fn edges_roundtrip() {
        let g = toy();
        let edges: Vec<Rating> = g.edges().collect();
        let g2 = BipartiteGraph::from_ratings(3, 4, &edges);
        assert_eq!(g2.num_ratings(), g.num_ratings());
        assert_eq!(g2.rating(0, 0), Some(5.0));
    }

    #[test]
    fn with_extra_edges_adds() {
        let g = toy().with_extra_edges(&[Rating::new(2, 0, 2.0)]);
        assert_eq!(g.rating(2, 0), Some(2.0));
        assert_eq!(g.num_ratings(), 5);
    }

    #[test]
    fn with_extra_edges_matches_full_rebuild() {
        let g = toy();
        let extra = [
            Rating::new(2, 0, 2.0),
            Rating::new(0, 0, 9.0), // duplicate of existing edge: old value wins
            Rating::new(1, 2, 4.5),
            Rating::new(1, 2, 1.0), // duplicate within extras: first wins
        ];
        let merged = g.with_extra_edges(&extra);
        let mut all: Vec<Rating> = g.edges().collect();
        all.extend_from_slice(&extra);
        let rebuilt = BipartiteGraph::from_ratings(3, 4, &all);
        assert_eq!(merged.num_ratings(), rebuilt.num_ratings());
        for u in 0..3 {
            assert_eq!(merged.user_neighbors(u), rebuilt.user_neighbors(u));
        }
        for i in 0..4 {
            assert_eq!(merged.item_neighbors(i), rebuilt.item_neighbors(i));
        }
        assert_eq!(merged.rating(0, 0), Some(5.0));
        assert_eq!(merged.rating(1, 2), Some(4.5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_extra_edges_checks_ranges() {
        toy().with_extra_edges(&[Rating::new(7, 0, 1.0)]);
    }

    #[test]
    fn edge_stream_matches_from_ratings() {
        let ratings = [
            Rating::new(0, 1, 3.0),
            Rating::new(2, 3, 1.0),
            Rating::new(0, 0, 5.0),
            Rating::new(0, 1, 4.0), // duplicate pair: first occurrence kept
            Rating::new(1, 1, 4.0),
        ];
        let streamed = BipartiteGraph::from_edge_stream(3, 4, |emit| {
            for &r in &ratings {
                emit(r);
            }
        });
        let direct = BipartiteGraph::from_ratings(3, 4, &ratings);
        assert_eq!(streamed.num_ratings(), direct.num_ratings());
        for u in 0..3 {
            assert_eq!(streamed.user_neighbors(u), direct.user_neighbors(u));
        }
        for i in 0..4 {
            assert_eq!(streamed.item_neighbors(i), direct.item_neighbors(i));
        }
        assert_eq!(streamed.rating(0, 1), Some(3.0));
    }

    #[test]
    fn social_graph_basic() {
        let s = SocialGraph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3)]);
        assert_eq!(s.friends(1), &[0, 3]);
        assert_eq!(s.friends(2), &[] as &[usize]);
        assert_eq!(s.num_edges(), 2);
    }
}
