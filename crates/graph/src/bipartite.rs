//! The user-item bipartite rating graph.

/// A rated edge in the bipartite graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index.
    pub user: usize,
    /// Item index.
    pub item: usize,
    /// Observed rating value.
    pub value: f32,
}

impl Rating {
    /// Convenience constructor.
    pub fn new(user: usize, item: usize, value: f32) -> Self {
        Rating { user, item, value }
    }
}

/// Compressed sparse row adjacency: one flat, contiguous `(neighbor,
/// rating)` buffer plus per-node offsets. Node `v`'s neighbors live in
/// `entries[offsets[v]..offsets[v + 1]]`, sorted by neighbor index.
///
/// Compared to the previous `Vec<Vec<(usize, f32)>>` layout, every
/// neighborhood scan walks one shared allocation instead of chasing a
/// pointer per node — the access pattern of repeated BFS context sampling
/// (`NeighborhoodSampler`), which touches many small neighborhoods per
/// query.
#[derive(Debug, Clone)]
struct CsrAdjacency {
    offsets: Vec<usize>,
    entries: Vec<(usize, f32)>,
}

impl CsrAdjacency {
    /// Builds from per-node edge lists, sorting each node's neighbors and
    /// dropping duplicate neighbors (keeping the first occurrence, matching
    /// the pre-CSR behavior of stable sort + `dedup_by_key`).
    fn build(num_nodes: usize, edges: impl Iterator<Item = (usize, usize, f32)>) -> Self {
        let mut per_node: Vec<Vec<(usize, f32)>> = vec![Vec::new(); num_nodes];
        for (node, neighbor, value) in edges {
            per_node[node].push((neighbor, value));
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        for adj in &mut per_node {
            adj.sort_by_key(|&(x, _)| x);
            adj.dedup_by_key(|&mut (x, _)| x);
            entries.extend_from_slice(adj);
            offsets.push(entries.len());
        }
        CsrAdjacency { offsets, entries }
    }

    fn neighbors(&self, node: usize) -> &[(usize, f32)] {
        &self.entries[self.offsets[node]..self.offsets[node + 1]]
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// User-item bipartite graph with ratings on the edges, stored as CSR
/// (compressed sparse row) adjacency on both sides for O(log d) rating
/// lookup, O(1) neighbor-slice access, and cache-friendly repeated
/// neighborhood scans.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    num_users: usize,
    num_items: usize,
    /// Per user: sorted `(item, rating)` pairs, CSR-packed.
    user_adj: CsrAdjacency,
    /// Per item: sorted `(user, rating)` pairs, CSR-packed.
    item_adj: CsrAdjacency,
    num_ratings: usize,
}

impl BipartiteGraph {
    /// Builds a graph from an edge list. Duplicate `(user, item)` pairs keep
    /// the first occurrence's rating. Panics on out-of-range indices.
    pub fn from_ratings(num_users: usize, num_items: usize, ratings: &[Rating]) -> Self {
        for r in ratings {
            assert!(
                r.user < num_users,
                "user {} out of range {num_users}",
                r.user
            );
            assert!(
                r.item < num_items,
                "item {} out of range {num_items}",
                r.item
            );
        }
        let user_adj =
            CsrAdjacency::build(num_users, ratings.iter().map(|r| (r.user, r.item, r.value)));
        let item_adj =
            CsrAdjacency::build(num_items, ratings.iter().map(|r| (r.item, r.user, r.value)));
        let num_ratings = user_adj.len();
        BipartiteGraph {
            num_users,
            num_items,
            user_adj,
            item_adj,
            num_ratings,
        }
    }

    /// Empty graph with the given vertex counts.
    pub fn empty(num_users: usize, num_items: usize) -> Self {
        Self::from_ratings(num_users, num_items, &[])
    }

    /// Number of user vertices.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of item vertices.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of rated edges.
    pub fn num_ratings(&self) -> usize {
        self.num_ratings
    }

    /// Items rated by `user`, with ratings, sorted by item index.
    pub fn user_neighbors(&self, user: usize) -> &[(usize, f32)] {
        self.user_adj.neighbors(user)
    }

    /// Users who rated `item`, with ratings, sorted by user index.
    pub fn item_neighbors(&self, item: usize) -> &[(usize, f32)] {
        self.item_adj.neighbors(item)
    }

    /// The rating of `user` on `item`, if observed.
    pub fn rating(&self, user: usize, item: usize) -> Option<f32> {
        let adj = self.user_adj.neighbors(user);
        adj.binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|ix| adj[ix].1)
    }

    /// Degree of a user (number of rated items).
    pub fn user_degree(&self, user: usize) -> usize {
        self.user_adj.neighbors(user).len()
    }

    /// Degree of an item (number of raters).
    pub fn item_degree(&self, item: usize) -> usize {
        self.item_adj.neighbors(item).len()
    }

    /// Mean rating over all edges; `None` for an empty graph.
    pub fn mean_rating(&self) -> Option<f32> {
        if self.num_ratings == 0 {
            return None;
        }
        let sum: f64 = self.user_adj.entries.iter().map(|&(_, r)| r as f64).sum();
        Some((sum / self.num_ratings as f64) as f32)
    }

    /// Density: observed edges / possible edges.
    pub fn density(&self) -> f32 {
        let possible = self.num_users * self.num_items;
        if possible == 0 {
            0.0
        } else {
            self.num_ratings as f32 / possible as f32
        }
    }

    /// Iterates over all rated edges.
    pub fn edges(&self) -> impl Iterator<Item = Rating> + '_ {
        (0..self.num_users).flat_map(move |u| {
            self.user_adj
                .neighbors(u)
                .iter()
                .map(move |&(i, r)| Rating::new(u, i, r))
        })
    }

    /// Returns a new graph containing this graph's edges plus `extra`.
    pub fn with_extra_edges(&self, extra: &[Rating]) -> BipartiteGraph {
        let mut all: Vec<Rating> = self.edges().collect();
        all.extend_from_slice(extra);
        BipartiteGraph::from_ratings(self.num_users, self.num_items, &all)
    }
}

/// Undirected user-user social graph (used by the GraphRec baseline on the
/// Douban-style dataset).
#[derive(Debug, Clone)]
pub struct SocialGraph {
    adj: Vec<Vec<usize>>,
}

impl SocialGraph {
    /// Builds from undirected friendship pairs; self-loops are ignored and
    /// duplicates removed.
    pub fn from_edges(num_users: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_users];
        for &(a, b) in edges {
            assert!(a < num_users && b < num_users, "social edge out of range");
            if a == b {
                continue;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        SocialGraph { adj }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.adj.len()
    }

    /// Friends of `user`, sorted.
    pub fn friends(&self, user: usize) -> &[usize] {
        &self.adj[user]
    }

    /// Total undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_ratings(
            3,
            4,
            &[
                Rating::new(0, 0, 5.0),
                Rating::new(0, 1, 3.0),
                Rating::new(1, 1, 4.0),
                Rating::new(2, 3, 1.0),
            ],
        )
    }

    #[test]
    fn adjacency_both_sides() {
        let g = toy();
        assert_eq!(g.user_neighbors(0), &[(0, 5.0), (1, 3.0)]);
        assert_eq!(g.item_neighbors(1), &[(0, 3.0), (1, 4.0)]);
        assert_eq!(g.user_degree(2), 1);
        assert_eq!(g.item_degree(2), 0);
        assert_eq!(g.num_ratings(), 4);
    }

    #[test]
    fn rating_lookup() {
        let g = toy();
        assert_eq!(g.rating(0, 1), Some(3.0));
        assert_eq!(g.rating(1, 0), None);
        assert_eq!(g.rating(2, 3), Some(1.0));
    }

    #[test]
    fn duplicate_edges_deduped() {
        let g =
            BipartiteGraph::from_ratings(1, 1, &[Rating::new(0, 0, 1.0), Rating::new(0, 0, 5.0)]);
        assert_eq!(g.num_ratings(), 1);
    }

    #[test]
    fn stats() {
        let g = toy();
        assert!((g.mean_rating().unwrap() - 3.25).abs() < 1e-6);
        assert!((g.density() - 4.0 / 12.0).abs() < 1e-6);
        assert!(BipartiteGraph::empty(2, 2).mean_rating().is_none());
    }

    #[test]
    fn edges_roundtrip() {
        let g = toy();
        let edges: Vec<Rating> = g.edges().collect();
        let g2 = BipartiteGraph::from_ratings(3, 4, &edges);
        assert_eq!(g2.num_ratings(), g.num_ratings());
        assert_eq!(g2.rating(0, 0), Some(5.0));
    }

    #[test]
    fn with_extra_edges_adds() {
        let g = toy().with_extra_edges(&[Rating::new(2, 0, 2.0)]);
        assert_eq!(g.rating(2, 0), Some(2.0));
        assert_eq!(g.num_ratings(), 5);
    }

    #[test]
    fn social_graph_basic() {
        let s = SocialGraph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3)]);
        assert_eq!(s.friends(1), &[0, 3]);
        assert_eq!(s.friends(2), &[] as &[usize]);
        assert_eq!(s.num_edges(), 2);
    }
}
