//! Prediction-context construction strategies (§ IV-B and § VI-E of the
//! paper): neighborhood-based BFS sampling (the default), uniform random
//! sampling, and feature-similarity sampling.

use crate::bipartite::BipartiteGraph;
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// The users and items selected for one prediction context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSelection {
    /// Selected user indices (seeds first, in seed order).
    pub users: Vec<usize>,
    /// Selected item indices (seeds first, in seed order).
    pub items: Vec<usize>,
}

/// A strategy for selecting `n` users and `m` items around seed entities.
///
/// Implementations must include all seeds, return no duplicates, and return
/// exactly `n` users / `m` items whenever the graph has that many (assuming
/// `n`/`m` are at least the seed counts).
pub trait ContextSampler {
    /// Samples a context around the given seed users/items.
    fn sample(
        &self,
        graph: &BipartiteGraph,
        seed_users: &[usize],
        seed_items: &[usize],
        n: usize,
        m: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ContextSelection;

    /// Human-readable strategy name (used in benchmark output).
    fn name(&self) -> &'static str;
}

fn dedup_seeds(seeds: &[usize], budget: usize) -> Vec<usize> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &s in seeds {
        if seen.insert(s) {
            out.push(s);
        }
    }
    assert!(
        out.len() <= budget,
        "seed count {} exceeds budget {budget}",
        out.len()
    );
    out
}

/// Fills `selected` up to `budget` with uniformly random fresh indices from
/// `0..total`.
fn fill_random(
    selected: &mut Vec<usize>,
    budget: usize,
    total: usize,
    rng: &mut dyn rand::RngCore,
) {
    if selected.len() >= budget || total == 0 {
        return;
    }
    let chosen: HashSet<usize> = selected.iter().copied().collect();
    let mut pool: Vec<usize> = (0..total).filter(|x| !chosen.contains(x)).collect();
    pool.shuffle(rng);
    for x in pool {
        if selected.len() >= budget {
            break;
        }
        selected.push(x);
    }
}

// ----------------------------------------------------------------------
// Neighborhood sampling (paper default)
// ----------------------------------------------------------------------

/// BFS from the seed set over the bipartite graph, hop by hop, taking whole
/// neighborhoods when they fit the remaining budget and uniform subsets
/// otherwise. Falls back to uniform sampling when the frontier empties
/// before the budget is exhausted (disconnected cold entities).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborhoodSampler;

impl ContextSampler for NeighborhoodSampler {
    fn sample(
        &self,
        graph: &BipartiteGraph,
        seed_users: &[usize],
        seed_items: &[usize],
        n: usize,
        m: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ContextSelection {
        let mut users = dedup_seeds(seed_users, n);
        let mut items = dedup_seeds(seed_items, m);
        let mut user_set: HashSet<usize> = users.iter().copied().collect();
        let mut item_set: HashSet<usize> = items.iter().copied().collect();

        let mut frontier_users: Vec<usize> = users.clone();
        let mut frontier_items: Vec<usize> = items.clone();

        while (users.len() < n || items.len() < m)
            && (!frontier_users.is_empty() || !frontier_items.is_empty())
        {
            // One hop: neighbors of frontier users are items, and vice
            // versa. Hop membership is tracked in a HashSet (`next_*_seen`)
            // instead of a linear scan of the hop vector, so a hop over a
            // dense frontier costs O(neighbors) rather than O(neighbors²);
            // the vector still records first-seen order, which keeps the
            // shuffle inputs — and therefore the RNG stream and the sampled
            // contexts — identical to the pre-optimization implementation.
            let mut next_items: Vec<usize> = Vec::new();
            let mut next_items_seen: HashSet<usize> = HashSet::new();
            for &u in &frontier_users {
                for &(i, _) in graph.user_neighbors(u) {
                    if !item_set.contains(&i) && next_items_seen.insert(i) {
                        next_items.push(i);
                    }
                }
            }
            let mut next_users: Vec<usize> = Vec::new();
            let mut next_users_seen: HashSet<usize> = HashSet::new();
            for &i in &frontier_items {
                for &(u, _) in graph.item_neighbors(i) {
                    if !user_set.contains(&u) && next_users_seen.insert(u) {
                        next_users.push(u);
                    }
                }
            }

            // Subsample to the remaining budget when the hop overflows it.
            let item_budget = m - items.len();
            if next_items.len() > item_budget {
                next_items.shuffle(rng);
                next_items.truncate(item_budget);
            }
            let user_budget = n - users.len();
            if next_users.len() > user_budget {
                next_users.shuffle(rng);
                next_users.truncate(user_budget);
            }

            for &i in &next_items {
                item_set.insert(i);
                items.push(i);
            }
            for &u in &next_users {
                user_set.insert(u);
                users.push(u);
            }
            frontier_users = next_users;
            frontier_items = next_items;
        }

        // Disconnected remainder: fill uniformly so the context is full.
        fill_random(&mut users, n, graph.num_users(), rng);
        fill_random(&mut items, m, graph.num_items(), rng);
        ContextSelection { users, items }
    }

    fn name(&self) -> &'static str {
        "neighborhood"
    }
}

// ----------------------------------------------------------------------
// Random sampling (ablation)
// ----------------------------------------------------------------------

/// Uniformly random users/items (plus the seeds).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSampler;

impl ContextSampler for RandomSampler {
    fn sample(
        &self,
        graph: &BipartiteGraph,
        seed_users: &[usize],
        seed_items: &[usize],
        n: usize,
        m: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ContextSelection {
        let mut users = dedup_seeds(seed_users, n);
        let mut items = dedup_seeds(seed_items, m);
        fill_random(&mut users, n, graph.num_users(), rng);
        fill_random(&mut items, m, graph.num_items(), rng);
        ContextSelection { users, items }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

// ----------------------------------------------------------------------
// Feature-similarity sampling (ablation)
// ----------------------------------------------------------------------

/// Selects the users/items with the highest cosine similarity of attribute
/// features to the seed entities (§ VI-E).
pub struct FeatureSimilaritySampler {
    user_features: Vec<Vec<f32>>,
    item_features: Vec<Vec<f32>>,
}

impl FeatureSimilaritySampler {
    /// Creates the sampler from per-entity feature vectors.
    pub fn new(user_features: Vec<Vec<f32>>, item_features: Vec<Vec<f32>>) -> Self {
        FeatureSimilaritySampler {
            user_features,
            item_features,
        }
    }

    fn top_similar(
        features: &[Vec<f32>],
        seeds: &[usize],
        selected: &mut Vec<usize>,
        budget: usize,
    ) {
        if selected.len() >= budget || seeds.is_empty() {
            return;
        }
        let chosen: HashSet<usize> = selected.iter().copied().collect();
        let mut scored: Vec<(f32, usize)> = (0..features.len())
            .filter(|x| !chosen.contains(x))
            .map(|x| {
                let best = seeds
                    .iter()
                    .map(|&s| cosine(&features[s], &features[x]))
                    .fold(f32::NEG_INFINITY, f32::max);
                (best, x)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (_, x) in scored {
            if selected.len() >= budget {
                break;
            }
            selected.push(x);
        }
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

impl ContextSampler for FeatureSimilaritySampler {
    fn sample(
        &self,
        graph: &BipartiteGraph,
        seed_users: &[usize],
        seed_items: &[usize],
        n: usize,
        m: usize,
        rng: &mut dyn rand::RngCore,
    ) -> ContextSelection {
        let mut users = dedup_seeds(seed_users, n);
        let mut items = dedup_seeds(seed_items, m);
        let seed_u = users.clone();
        let seed_i = items.clone();
        Self::top_similar(&self.user_features, &seed_u, &mut users, n);
        Self::top_similar(&self.item_features, &seed_i, &mut items, m);
        // No seeds on one side, or not enough entities: random fallback.
        fill_random(&mut users, n, graph.num_users(), rng);
        fill_random(&mut items, m, graph.num_items(), rng);
        ContextSelection { users, items }
    }

    fn name(&self) -> &'static str {
        "feature-similarity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::Rating;
    use rand::SeedableRng;

    /// The paper's Example 1 graph: users {u0,u1,u2}, items {i0,i1},
    /// edges u1-i1, u2-i1, u1-i0. Seed = (u0, i1), n = m = 2.
    fn example1() -> BipartiteGraph {
        BipartiteGraph::from_ratings(
            3,
            2,
            &[
                Rating::new(1, 1, 4.0),
                Rating::new(2, 1, 3.0),
                Rating::new(1, 0, 5.0),
            ],
        )
    }

    #[test]
    fn neighborhood_follows_paper_example() {
        let g = example1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let sel = NeighborhoodSampler.sample(&g, &[0], &[1], 2, 2, &mut rng);
        assert_eq!(sel.users.len(), 2);
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.users[0], 0, "seed user first");
        assert_eq!(sel.items[0], 1, "seed item first");
        // the extra user must be a neighbor of i1 (u1 or u2)
        assert!(sel.users[1] == 1 || sel.users[1] == 2);
        // the extra item is i0 (only remaining item)
        assert_eq!(sel.items[1], 0);
    }

    #[test]
    fn budgets_are_exact_when_graph_is_large_enough() {
        let g = example1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for sampler in [&NeighborhoodSampler as &dyn ContextSampler, &RandomSampler] {
            let sel = sampler.sample(&g, &[0], &[0], 3, 2, &mut rng);
            assert_eq!(sel.users.len(), 3, "{}", sampler.name());
            assert_eq!(sel.items.len(), 2, "{}", sampler.name());
            // uniqueness
            let us: HashSet<_> = sel.users.iter().collect();
            let is: HashSet<_> = sel.items.iter().collect();
            assert_eq!(us.len(), 3);
            assert_eq!(is.len(), 2);
        }
    }

    #[test]
    fn disconnected_seed_falls_back_to_random() {
        // u0 has no edges at all; context must still fill.
        let g = BipartiteGraph::from_ratings(4, 4, &[Rating::new(1, 1, 3.0)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sel = NeighborhoodSampler.sample(&g, &[0], &[], 3, 3, &mut rng);
        assert_eq!(sel.users.len(), 3);
        assert_eq!(sel.items.len(), 3);
    }

    #[test]
    fn duplicate_seeds_are_deduped() {
        let g = example1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sel = RandomSampler.sample(&g, &[0, 0, 0], &[1, 1], 2, 2, &mut rng);
        assert_eq!(sel.users.len(), 2);
        assert_eq!(sel.items.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds budget")]
    fn too_many_seeds_panics() {
        let g = example1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        NeighborhoodSampler.sample(&g, &[0, 1, 2], &[], 2, 2, &mut rng);
    }

    #[test]
    fn feature_similarity_prefers_similar_entities() {
        let g = BipartiteGraph::empty(4, 4);
        let uf = vec![
            vec![1.0, 0.0], // seed
            vec![0.9, 0.1], // most similar
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
        ];
        let features = FeatureSimilaritySampler::new(uf, vec![vec![1.0]; 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sel = features.sample(&g, &[0], &[0], 2, 1, &mut rng);
        assert_eq!(sel.users, vec![0, 1]);
    }

    #[test]
    fn samplers_report_names() {
        assert_eq!(NeighborhoodSampler.name(), "neighborhood");
        assert_eq!(RandomSampler.name(), "random");
        assert_eq!(
            FeatureSimilaritySampler::new(vec![], vec![]).name(),
            "feature-similarity"
        );
    }
}
