//! # hire-graph
//!
//! Graph substrate of the HIRE reproduction: the user-item bipartite rating
//! graph ([`BipartiteGraph`]), the user-user social graph ([`SocialGraph`],
//! for the GraphRec baseline), and the three prediction-context sampling
//! strategies of § IV-B / § VI-E:
//!
//! - [`NeighborhoodSampler`] — BFS from the seed pair (the paper's default)
//! - [`RandomSampler`] — uniform sampling ablation
//! - [`FeatureSimilaritySampler`] — cosine-similarity ablation

//!
//! Serving-side concurrency lives in [`epoch`]: copy-on-write, epoch-pinned
//! CSR snapshots ([`EpochedGraph`] / [`PinnedGraph`]) and the shared
//! [`EpochSource`] guard abstraction (DESIGN.md §14).

pub mod bipartite;
pub mod epoch;
pub mod sampler;

pub use bipartite::{BipartiteGraph, Rating, SocialGraph};
pub use epoch::{EpochSource, EpochedGraph, PinnedGraph};
pub use sampler::{
    ContextSampler, ContextSelection, FeatureSimilaritySampler, NeighborhoodSampler, RandomSampler,
};
