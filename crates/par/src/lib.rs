//! A vendored, dependency-free work-stealing thread pool for the compute
//! stack (`hire-tensor` kernels, serving forwards, benchmark fan-out).
//!
//! # Design
//!
//! A [`ThreadPool`] owns `threads - 1` worker threads; the thread that calls
//! [`ThreadPool::parallel_for`] participates as the final lane, so
//! `threads == 1` means *no* workers and every call degrades to inline
//! sequential execution. Work items are ranges of a caller-provided index
//! space, pushed round-robin onto per-worker deques; a worker pops its own
//! deque LIFO and steals FIFO from its siblings when empty, and the caller
//! drains tasks of *its own scope* from every deque while it waits —
//! classic work stealing with plain `Mutex<VecDeque>` deques (chunk counts
//! are small, so lock traffic is negligible next to kernel work). The
//! caller deliberately never executes a foreign scope's task: doing so
//! could park a latency-sensitive caller (e.g. a serving thread between
//! deadline checks) behind an arbitrarily long chunk from an unrelated
//! scope such as a benchmark's model-training fan-out.
//!
//! # Determinism contract
//!
//! Chunk boundaries depend **only** on `(len, grain)` — never on the thread
//! count, the pool, or timing. Every index `i < len` lands in exactly the
//! chunk `[i - i % grain, min(len, i - i % grain + grain))`. Callers that
//! write disjoint output regions per index are therefore bit-exact for any
//! thread count, and callers that reduce combine per-chunk partials in
//! ascending chunk order ([`ThreadPool::parallel_map_chunks`]) get the same
//! floating-point operation sequence on 1 thread and on N.
//!
//! # Panic propagation
//!
//! A panic inside a task is caught on the executing thread, stashed, and
//! re-raised on the *calling* thread once every task of the scope has
//! finished. Workers survive: the pool is never poisoned and subsequent
//! calls run normally.
//!
//! # Nesting
//!
//! A `parallel_for` issued from inside a pool task runs inline on the
//! executing thread (no new tasks are queued), so nested data parallelism
//! can never deadlock and outer-level parallelism wins.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on configured threads; guards against absurd `HIRE_THREADS`.
const MAX_THREADS: usize = 256;

// ---------------------------------------------------------------------------
// Scope state: one per parallel_for call, lives on the caller's stack.
// ---------------------------------------------------------------------------

/// Type-erased task body: executes indices `[start, end)`.
type TaskFn<'a> = dyn Fn(usize, usize) + Sync + 'a;

struct ScopeState {
    /// Borrow of the caller's closure, lifetime-erased. Valid because the
    /// caller blocks in `run_scope` until it observes `done == true` under
    /// `done_lock` — which the last task sets *after* its final access to
    /// this struct (see `run_task` / `run_scope` for the full argument).
    func: *const TaskFn<'static>,
    /// Tasks not yet finished (executed or panicked).
    pending: AtomicUsize,
    /// First panic payload raised by a task, re-raised by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag, flipped by the last task while holding the lock.
    /// The caller's *only* exit condition: it must never return based on
    /// the bare `pending` atomic, or it could free this stack frame while
    /// the last task is still between its `fetch_sub` and the notify here.
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `func` is only dereferenced while the owning `run_scope` frame is
// blocked waiting on `pending`; all other fields are thread-safe primitives.
unsafe impl Sync for ScopeState {}

/// One queued unit of work: a chunk of some live scope's index space.
#[derive(Clone, Copy)]
struct Task {
    scope: *const ScopeState,
    start: usize,
    end: usize,
}

// SAFETY: the pointed-to ScopeState outlives the task (see ScopeState).
unsafe impl Send for Task {}

thread_local! {
    /// Set while this thread is executing a pool task — makes nested
    /// `parallel_for` calls run inline instead of re-entering the queues.
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Scoped pool override installed by [`with_pool`].
    static ACTIVE_POOL: std::cell::RefCell<Vec<Arc<ThreadPool>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs one task, recording a panic into its scope instead of unwinding the
/// executing thread, and signals the scope when it was the last task.
fn run_task(task: Task) {
    // SAFETY: the scope (and the closure it borrows) is kept alive by the
    // caller of `run_scope`, which only returns after observing
    // `done == true` under `done_lock`. Non-last tasks never touch the
    // scope after their `fetch_sub` (and `done` stays false until the last
    // one), and the last task's lock/set/notify/unlock sequence below
    // happens-before the caller's exit — so no task can dereference the
    // scope after the caller frees it.
    let scope = unsafe { &*task.scope };
    let func = unsafe { &*scope.func };
    let was_in_task = IN_TASK.with(|f| f.replace(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| func(task.start, task.end)));
    IN_TASK.with(|f| f.set(was_in_task));
    if let Err(payload) = outcome {
        let mut slot = scope.panic.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if scope.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = scope.done_lock.lock().unwrap_or_else(|p| p.into_inner());
        *done = true;
        scope.done_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

struct Shared {
    /// One deque per worker thread. The caller pushes round-robin and
    /// steals from the front; worker `i` pops `queues[i]` from the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin push cursor.
    push_cursor: AtomicUsize,
    /// Sleep/wake rendezvous for idle workers.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops from the back of this worker's own deque (LIFO).
    fn pop_own(&self, idx: usize) -> Option<Task> {
        self.queues[idx]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
    }

    /// Steals from the front of sibling deques (FIFO), starting after
    /// `idx` so victims rotate.
    fn steal(&self, idx: usize) -> Option<Task> {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (idx + off) % n;
            if let Some(task) = self.queues[victim]
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
            {
                return Some(task);
            }
        }
        None
    }

    /// Steal scan used by the caller in `run_scope`: removes the
    /// front-most queued task belonging to `scope`, skipping foreign
    /// scopes' tasks. The caller must only help with its own scope — a
    /// latency-sensitive caller (e.g. a serving thread between deadline
    /// checks) that picked up an arbitrary task could be parked behind an
    /// unrelated multi-second chunk, blowing its documented latency bound.
    fn steal_scope(&self, scope: *const ScopeState) -> Option<Task> {
        for q in &self.queues {
            let mut q = q.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(pos) = q.iter().position(|t| std::ptr::eq(t.scope, scope)) {
                return q.remove(pos);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q.lock().unwrap_or_else(|p| p.into_inner()).is_empty())
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.pop_own(idx).or_else(|| shared.steal(idx)) {
            run_task(task);
            continue;
        }
        // Nothing runnable: sleep until a push or shutdown. Re-checking
        // under the sleep lock closes the missed-wakeup race (pushers
        // notify while holding it).
        let guard = shared.sleep_lock.lock().unwrap_or_else(|p| p.into_inner());
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.has_work() {
            continue;
        }
        drop(
            shared
                .sleep_cv
                .wait(guard)
                .unwrap_or_else(|p| p.into_inner()),
        );
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A fixed-size work-stealing thread pool. See the crate docs for the
/// determinism and panic contracts.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

/// Builder for [`ThreadPool`] (explicit size, or `HIRE_THREADS`/hardware
/// defaults).
#[derive(Debug, Default, Clone)]
pub struct PoolBuilder {
    threads: Option<usize>,
}

impl PoolBuilder {
    /// A builder using the environment/hardware default thread count.
    pub fn new() -> Self {
        PoolBuilder::default()
    }

    /// Sets an explicit thread count (clamped to `1..=256`).
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.clamp(1, MAX_THREADS));
        self
    }

    /// Builds the pool.
    pub fn build(self) -> ThreadPool {
        ThreadPool::new(self.threads.unwrap_or_else(default_threads))
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes (the calling thread counts
    /// as one, so `threads - 1` workers are spawned; `threads <= 1` spawns
    /// none and runs everything inline).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.clamp(1, MAX_THREADS);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            push_cursor: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hire-par-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total lanes (callers + workers) this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every chunk of `0..len`, chunks of size `grain` (the
    /// last one ragged). Chunk boundaries depend only on `(len, grain)`.
    /// Blocks until all chunks finished; re-raises the first task panic.
    pub fn parallel_for(&self, len: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
        let grain = grain.max(1);
        if len == 0 {
            return;
        }
        let inline = self.handles.is_empty() || len <= grain || IN_TASK.with(|t| t.get());
        if inline {
            let mut start = 0;
            while start < len {
                let end = (start + grain).min(len);
                f(start..end);
                start = end;
            }
            return;
        }
        let body = move |s: usize, e: usize| f(s..e);
        self.run_scope(len, grain, &body);
    }

    /// [`Self::parallel_for`] collecting one value per chunk, in ascending
    /// chunk order — the deterministic-ordered-reduction primitive: fold
    /// the returned vector sequentially and the float operation sequence is
    /// identical for every thread count.
    pub fn parallel_map_chunks<T: Send>(
        &self,
        len: usize,
        grain: usize,
        f: impl Fn(Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        let grain = grain.max(1);
        let chunks = len.div_ceil(grain);
        let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        self.parallel_for(len, grain, |range| {
            let idx = range.start / grain;
            *slots[idx].lock().unwrap_or_else(|p| p.into_inner()) = Some(f(range));
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every chunk ran")
            })
            .collect()
    }

    /// Runs two closures, potentially in parallel, returning both results.
    /// Panics in either branch propagate to the caller after both finish
    /// or are abandoned.
    pub fn join<A: Send, B: Send>(
        &self,
        fa: impl FnOnce() -> A + Send,
        fb: impl FnOnce() -> B + Send,
    ) -> (A, B) {
        let fa = Mutex::new(Some(fa));
        let fb = Mutex::new(Some(fb));
        let ra: Mutex<Option<A>> = Mutex::new(None);
        let rb: Mutex<Option<B>> = Mutex::new(None);
        self.parallel_for(2, 1, |range| {
            for i in range {
                if i == 0 {
                    let f = fa.lock().unwrap().take().expect("branch a runs once");
                    *ra.lock().unwrap() = Some(f());
                } else {
                    let f = fb.lock().unwrap().take().expect("branch b runs once");
                    *rb.lock().unwrap() = Some(f());
                }
            }
        });
        let a = ra.into_inner().unwrap().expect("branch a finished");
        let b = rb.into_inner().unwrap().expect("branch b finished");
        (a, b)
    }

    /// Pushes the scope's chunks and participates until every one finished.
    fn run_scope(&self, len: usize, grain: usize, body: &(dyn Fn(usize, usize) + Sync)) {
        let chunks = len.div_ceil(grain);
        // SAFETY: lifetime erasure only — the scope (and `body`) stay alive
        // until this function returns, and it cannot return while any task
        // holds the pointer (the `done`-flag wait below blocks until the
        // last task's final scope access has happened-before our exit).
        let func: *const TaskFn<'static> =
            unsafe { std::mem::transmute::<*const TaskFn<'_>, *const TaskFn<'static>>(body) };
        let scope = ScopeState {
            func,
            pending: AtomicUsize::new(chunks),
            panic: Mutex::new(None),
            done_lock: Mutex::new(false),
            done_cv: Condvar::new(),
        };
        {
            // Enqueue round-robin, then wake everyone once.
            let nq = self.shared.queues.len();
            let base = self.shared.push_cursor.fetch_add(chunks, Ordering::Relaxed);
            let mut start = 0;
            let mut c = 0usize;
            while start < len {
                let end = (start + grain).min(len);
                let task = Task {
                    scope: &scope,
                    start,
                    end,
                };
                self.shared.queues[(base + c) % nq]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push_back(task);
                start = end;
                c += 1;
            }
            let _g = self
                .shared
                .sleep_lock
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            self.shared.sleep_cv.notify_all();
        }
        // Participate: run this scope's queued chunks ourselves. Foreign
        // scopes' tasks are left to the workers on purpose (see
        // `Shared::steal_scope`). Tasks are enqueued exactly once and never
        // re-queued, so once none of ours remain in the deques the
        // stragglers are already executing on workers.
        while let Some(task) = self.shared.steal_scope(&scope) {
            run_task(task);
        }
        // Block until the last task flips `done` under the lock. Exiting
        // *only* on this flag — never on the bare `pending` atomic — is
        // what makes freeing `scope` sound: the last task's unlock
        // happens-before our lock acquisition observes `done == true`, and
        // that task touches nothing of the scope after its unlock, so no
        // task can still dereference this stack frame once we return.
        let mut done = scope.done_lock.lock().unwrap_or_else(|p| p.into_inner());
        while !*done {
            done = scope.done_cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
        drop(done);
        let payload = scope.panic.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self
                .shared
                .sleep_lock
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            self.shared.sleep_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool + scoped overrides
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

/// Parses a `HIRE_THREADS` value: `None`/empty/`"0"` mean "hardware
/// default"; garbage degrades to the hardware default rather than
/// panicking; valid counts are clamped to `1..=256`.
pub fn threads_from_env_value(value: Option<&str>) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match value.map(str::trim) {
        None | Some("") | Some("0") => hw(),
        Some(s) => match s.parse::<usize>() {
            Ok(n) => n.clamp(1, MAX_THREADS),
            Err(_) => hw(),
        },
    }
}

/// Thread count the global pool will use: `HIRE_THREADS` if set, else the
/// hardware parallelism.
pub fn default_threads() -> usize {
    threads_from_env_value(std::env::var("HIRE_THREADS").ok().as_deref())
}

/// The process-wide pool, created on first use from [`default_threads`].
pub fn global() -> &'static Arc<ThreadPool> {
    GLOBAL.get_or_init(|| Arc::new(ThreadPool::new(default_threads())))
}

/// Fixes the global pool's size before its first use (e.g. a `--threads`
/// CLI flag). Fails if the global pool already exists with a different
/// size.
pub fn set_global_threads(threads: usize) -> Result<(), usize> {
    let threads = threads.clamp(1, MAX_THREADS);
    let pool = GLOBAL.get_or_init(|| Arc::new(ThreadPool::new(threads)));
    if pool.threads() == threads {
        Ok(())
    } else {
        Err(pool.threads())
    }
}

/// Runs `f` with `pool` as the calling thread's active pool: every
/// [`parallel_for`]/[`parallel_map_chunks`]/[`join`] free function reached
/// from `f` (on this thread) uses it instead of the global pool. Supports
/// nesting; used by thread-sweep benchmarks and 1-vs-N determinism tests.
pub fn with_pool<R>(pool: &Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    ACTIVE_POOL.with(|stack| stack.borrow_mut().push(pool.clone()));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            ACTIVE_POOL.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// The calling thread's active pool: the innermost [`with_pool`] override,
/// else the global pool.
pub fn active_pool() -> Arc<ThreadPool> {
    ACTIVE_POOL
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| global().clone())
}

/// [`ThreadPool::parallel_for`] on the active pool.
pub fn parallel_for(len: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    active_pool().parallel_for(len, grain, f)
}

/// [`ThreadPool::parallel_map_chunks`] on the active pool.
pub fn parallel_map_chunks<T: Send>(
    len: usize,
    grain: usize,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    active_pool().parallel_map_chunks(len, grain, f)
}

/// [`ThreadPool::join`] on the active pool.
pub fn join<A: Send, B: Send>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    active_pool().join(fa, fb)
}

/// A raw mutable pointer that asserts `Send + Sync`, for kernels whose
/// tasks write provably disjoint regions of one output buffer. The caller
/// is responsible for the disjointness argument.
#[derive(Debug, Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);

// SAFETY: asserted by the constructor site — tasks write disjoint regions.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Reconstitutes a mutable sub-slice `[offset, offset + len)`.
    ///
    /// # Safety
    /// The region must be in bounds of the original allocation and not
    /// aliased by any concurrently accessed region.
    #[allow(clippy::mut_from_ref)] // the whole point: Copy handle, disjoint writes
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(1000, 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let same_thread = Mutex::new(true);
        pool.parallel_for(100, 8, |_range| {
            if std::thread::current().id() != caller {
                *same_thread.lock().unwrap() = false;
            }
        });
        assert!(*same_thread.lock().unwrap());
    }

    #[test]
    fn map_chunks_is_in_chunk_order() {
        let pool = ThreadPool::new(3);
        let starts = pool.parallel_map_chunks(25, 4, |range| range.start);
        assert_eq!(starts, vec![0, 4, 8, 12, 16, 20, 24]);
    }

    #[test]
    fn join_returns_both_branches() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    /// Regression for a use-after-free race in scope completion: the
    /// caller used to exit `run_scope` on the bare `pending` atomic, which
    /// could free the stack-allocated `ScopeState` while the last worker
    /// was still between its `fetch_sub` and the `done_cv` notify. Rapid
    /// scope turnover from many threads at once makes that window manifest
    /// as corrupted sums, hangs, or crashes.
    #[test]
    fn concurrent_scope_completion_stress() {
        let pool = ThreadPool::new(4);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..200usize {
                        let len = 17 + (t + i) % 13;
                        let total = AtomicU64::new(0);
                        pool.parallel_for(len, 2, |range| {
                            for j in range {
                                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
                            }
                        });
                        let expect = (len * (len + 1) / 2) as u64;
                        assert_eq!(total.load(Ordering::Relaxed), expect);
                    }
                });
            }
        });
    }

    /// A caller waiting on its own scope must never execute a foreign
    /// scope's task — picking one up could park a latency-sensitive caller
    /// (e.g. a serving thread) behind an arbitrarily long chunk from an
    /// unrelated fan-out. Two callers share one worker here; each logs the
    /// threads its chunks ran on, and neither may appear in the other's log.
    #[test]
    fn caller_never_runs_foreign_scope_tasks() {
        use std::time::Duration;
        let pool = ThreadPool::new(2);
        let a_log: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        let b_log: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        let run = |log: &Mutex<Vec<std::thread::ThreadId>>| {
            pool.parallel_for(8, 1, |_range| {
                log.lock().unwrap().push(std::thread::current().id());
                std::thread::sleep(Duration::from_millis(2));
            });
            std::thread::current().id()
        };
        let (a_id, b_id) = std::thread::scope(|s| {
            let ha = s.spawn(|| run(&a_log));
            let hb = s.spawn(|| run(&b_log));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert!(
            !a_log.lock().unwrap().contains(&b_id),
            "caller B executed a task of scope A"
        );
        assert!(
            !b_log.lock().unwrap().contains(&a_id),
            "caller A executed a task of scope B"
        );
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(threads_from_env_value(Some("3")), 3);
        assert_eq!(threads_from_env_value(Some(" 8 ")), 8);
        assert_eq!(threads_from_env_value(Some("1")), 1);
        assert_eq!(threads_from_env_value(Some("100000")), MAX_THREADS);
        let hw = threads_from_env_value(None);
        assert!(hw >= 1);
        assert_eq!(threads_from_env_value(Some("")), hw);
        assert_eq!(threads_from_env_value(Some("0")), hw);
        assert_eq!(threads_from_env_value(Some("banana")), hw);
    }
}
