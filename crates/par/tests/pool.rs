//! Behavioural contracts of the `hire-par` pool: panic propagation without
//! poisoning, nested calls, inline degradation, and ragged-chunk coverage.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hire_par::{with_pool, ThreadPool};
use proptest::prelude::*;

#[test]
fn panic_in_task_propagates_without_poisoning_pool() {
    let pool = ThreadPool::new(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_for(100, 3, |range| {
            if range.contains(&42) {
                panic!("boom at 42");
            }
        });
    }));
    let payload = result.expect_err("task panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom at 42"), "payload preserved, got: {msg}");

    // The pool is not poisoned: subsequent scopes run to completion.
    let count = AtomicUsize::new(0);
    pool.parallel_for(1000, 7, |range| {
        count.fetch_add(range.len(), Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 1000);
}

#[test]
fn only_first_panic_is_reraised_and_all_chunks_settle() {
    let pool = ThreadPool::new(4);
    for _ in 0..20 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, 1, |_range| panic!("every chunk panics"));
        }));
        assert!(result.is_err());
    }
    // Still operational afterwards.
    let count = AtomicUsize::new(0);
    pool.parallel_for(64, 1, |range| {
        count.fetch_add(range.len(), Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 64);
}

#[test]
fn nested_parallel_for_does_not_deadlock() {
    let pool = ThreadPool::new(4);
    let count = AtomicUsize::new(0);
    pool.parallel_for(8, 1, |outer| {
        for _ in outer {
            // Nested calls run inline on the executing thread.
            pool.parallel_for(100, 9, |inner| {
                count.fetch_add(inner.len(), Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 800);
}

#[test]
fn nested_join_does_not_deadlock() {
    let pool = ThreadPool::new(2);
    let (a, b) = pool.join(
        || pool.join(|| 1usize, || 2usize),
        || pool.join(|| 3usize, || 4usize),
    );
    assert_eq!((a, b), ((1, 2), (3, 4)));
}

#[test]
fn single_thread_env_degrades_to_inline() {
    // HIRE_THREADS=1 builds a 1-lane pool; everything runs on the caller.
    assert_eq!(hire_par::threads_from_env_value(Some("1")), 1);
    let pool = ThreadPool::new(hire_par::threads_from_env_value(Some("1")));
    let caller = std::thread::current().id();
    let off_thread = AtomicUsize::new(0);
    pool.parallel_for(500, 13, |_range| {
        if std::thread::current().id() != caller {
            off_thread.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(off_thread.load(Ordering::Relaxed), 0);
}

#[test]
fn with_pool_overrides_free_functions() {
    let one = Arc::new(ThreadPool::new(1));
    let four = Arc::new(ThreadPool::new(4));
    with_pool(&one, || {
        assert_eq!(hire_par::active_pool().threads(), 1);
        with_pool(&four, || {
            assert_eq!(hire_par::active_pool().threads(), 4);
        });
        assert_eq!(hire_par::active_pool().threads(), 1);
    });
}

#[test]
fn map_chunks_matches_serial_fold_bitwise() {
    // The canonical ordered-reduction pattern: per-chunk f64 partial sums
    // folded in chunk order must equal the serial loop bit-for-bit.
    let data: Vec<f32> = (0..10_007)
        .map(|i| ((i * 37 % 1000) as f32) * 0.137 - 31.0)
        .collect();
    let serial: f64 = {
        let mut acc = 0.0f64;
        for chunk in data.chunks(64) {
            let mut part = 0.0f64;
            for &x in chunk {
                part += (x as f64) * (x as f64);
            }
            acc += part;
        }
        acc
    };
    for threads in [1, 2, 4, 7] {
        let pool = ThreadPool::new(threads);
        let parts = pool.parallel_map_chunks(data.len(), 64, |range| {
            let mut part = 0.0f64;
            for &x in &data[range] {
                part += (x as f64) * (x as f64);
            }
            part
        });
        let total: f64 = parts.iter().sum();
        assert_eq!(
            total.to_bits(),
            serial.to_bits(),
            "ordered reduction differs at {threads} threads"
        );
    }
}

#[test]
fn concurrent_scopes_from_multiple_caller_threads() {
    let pool = Arc::new(ThreadPool::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let count = AtomicUsize::new(0);
                pool.parallel_for(5000, 11, |range| {
                    count.fetch_add(range.len(), Ordering::Relaxed);
                });
                count.load(Ordering::Relaxed)
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 5000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every index in `0..len` is visited exactly once for arbitrary ragged
    /// (len, grain) combinations, and chunk boundaries are the fixed
    /// `(len, grain)` grid regardless of thread count.
    #[test]
    fn ragged_chunks_cover_exactly(len in 0usize..3000, grain in 1usize..130, threads in 1usize..6) {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let boundaries = Mutex::new(Vec::new());
        pool.parallel_for(len, grain, |range| {
            boundaries.lock().unwrap().push((range.start, range.end));
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let mut b = boundaries.into_inner().unwrap();
        b.sort_unstable();
        // Boundaries are the fixed (len, grain) grid: starts on multiples
        // of grain, every chunk full except possibly the last.
        let expected: Vec<(usize, usize)> = (0..len)
            .step_by(grain)
            .map(|s| (s, (s + grain).min(len)))
            .collect();
        prop_assert_eq!(b, expected);
    }
}
