//! Behavioural tests: every optimizer must minimize simple objectives.

use hire_nn::{Activation, Mlp, Module};
use hire_optim::{
    clip_grad_norm, Adam, ConstantLr, FlatThenAnneal, Lamb, Lookahead, LrSchedule, Optimizer, Sgd,
};
use hire_tensor::{NdArray, Tensor};
use rand::SeedableRng;

/// Minimizes f(w) = ||w - c||^2 and returns the final distance to c.
fn run_quadratic(mut opt: impl Optimizer, lr: f32, steps: usize) -> f32 {
    let c = NdArray::from_vec([3], vec![1.0, -2.0, 0.5]);
    let w = opt.params()[0].clone();
    for _ in 0..steps {
        opt.zero_grad();
        let diff = w.sub(&Tensor::constant(c.clone()));
        diff.square().sum().backward();
        opt.step(lr);
    }
    w.value().max_abs_diff(&c)
}

fn fresh_param() -> Tensor {
    Tensor::parameter(NdArray::from_vec([3], vec![5.0, 5.0, 5.0]))
}

#[test]
fn sgd_minimizes_quadratic() {
    let p = fresh_param();
    let err = run_quadratic(Sgd::new(vec![p]), 0.1, 100);
    assert!(err < 1e-3, "sgd err={err}");
}

#[test]
fn sgd_momentum_minimizes_quadratic() {
    let p = fresh_param();
    let err = run_quadratic(Sgd::with_momentum(vec![p], 0.9), 0.02, 150);
    assert!(err < 1e-2, "sgd+momentum err={err}");
}

#[test]
fn adam_minimizes_quadratic() {
    let p = fresh_param();
    let err = run_quadratic(Adam::new(vec![p]), 0.2, 200);
    assert!(err < 1e-2, "adam err={err}");
}

#[test]
fn lamb_minimizes_quadratic() {
    let p = fresh_param();
    let err = run_quadratic(Lamb::paper_default(vec![p]), 0.05, 300);
    assert!(err < 0.05, "lamb err={err}");
}

#[test]
fn lookahead_lamb_minimizes_quadratic() {
    // LAMB's trust-ratio updates are magnitude-normalized and do not decay
    // near the optimum, so (as in the paper) it needs an annealed LR.
    let c = NdArray::from_vec([3], vec![1.0, -2.0, 0.5]);
    let w = fresh_param();
    let mut opt = Lookahead::paper_default(Lamb::paper_default(vec![w.clone()]));
    let steps = 400;
    let sched = FlatThenAnneal {
        base_lr: 0.05,
        total_steps: steps,
        flat_frac: 0.5,
    };
    for s in 0..steps {
        opt.zero_grad();
        w.sub(&Tensor::constant(c.clone()))
            .square()
            .sum()
            .backward();
        opt.step(sched.lr(s));
    }
    let err = w.value().max_abs_diff(&c);
    assert!(err < 0.05, "lookahead(lamb) err={err}");
}

#[test]
fn lookahead_interpolates_slow_weights() {
    // One inner step with k=1 and alpha=0.5 must land halfway between the
    // initial (slow) weights and the post-step fast weights.
    let w = Tensor::parameter(NdArray::from_vec([1], vec![1.0]));
    let mut opt = Lookahead::new(Sgd::new(vec![w.clone()]), 0.5, 1);
    w.zero_grad();
    w.mul_scalar(2.0).sum().backward(); // grad = 2
    opt.step(0.1); // fast: 1.0 - 0.2 = 0.8; slow: 1.0 + 0.5*(0.8-1.0) = 0.9
    assert!((w.value().item() - 0.9).abs() < 1e-6);
}

#[test]
fn skips_params_without_grad() {
    let used = Tensor::parameter(NdArray::from_vec([1], vec![1.0]));
    let unused = Tensor::parameter(NdArray::from_vec([1], vec![7.0]));
    let mut opt = Adam::new(vec![used.clone(), unused.clone()]);
    used.square().sum().backward();
    opt.step(0.1);
    assert_eq!(unused.value().item(), 7.0);
    assert!(used.value().item() < 1.0);
}

#[test]
fn weight_decay_shrinks_weights() {
    let w = Tensor::parameter(NdArray::from_vec([1], vec![10.0]));
    let mut opt = Adam::with_config(vec![w.clone()], 0.9, 0.999, 1e-8, 0.1);
    for _ in 0..50 {
        opt.zero_grad();
        // zero data gradient; decay alone must shrink w
        w.mul_scalar(0.0).sum().backward();
        opt.step(0.1);
    }
    assert!(w.value().item() < 10.0);
}

#[test]
fn training_mlp_with_lamb_lookahead_converges() {
    // The paper's full optimizer stack on a small regression problem.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mlp = Mlp::new(&[4, 16, 1], Activation::Gelu, &mut rng);
    let x = NdArray::randn([32, 4], 0.0, 1.0, &mut rng);
    // target: sum of inputs
    let y = {
        let mut t = vec![0.0f32; 32];
        for i in 0..32 {
            t[i] = x.as_slice()[i * 4..(i + 1) * 4].iter().sum();
        }
        NdArray::from_vec([32, 1], t)
    };
    let total_steps = 400;
    let sched = FlatThenAnneal {
        base_lr: 5e-2,
        total_steps,
        flat_frac: 0.7,
    };
    let mut opt = Lookahead::paper_default(Lamb::paper_default(mlp.parameters()));
    let mut final_loss = f32::INFINITY;
    for step in 0..total_steps {
        opt.zero_grad();
        let pred = mlp.forward(&Tensor::constant(x.clone()));
        let loss = hire_nn::mse_loss(&pred, &y);
        final_loss = loss.item();
        loss.backward();
        clip_grad_norm(&mlp.parameters(), 1.0);
        opt.step(sched.lr(step));
    }
    assert!(
        final_loss < 0.1,
        "regression did not converge: {final_loss}"
    );
}

#[test]
fn lamb_survives_injected_nan_gradient() {
    // A NaN gradient entry must not reach the weights: the poisoned moment
    // coordinate is zeroed inside the LAMB step, the rest keep optimizing.
    let w = Tensor::parameter(NdArray::from_vec([2], vec![1.0, 1.0]));
    let mut opt = Lamb::paper_default(vec![w.clone()]);
    w.square().sum().backward();
    w.update_grad(|g| g.as_mut_slice()[0] = f32::NAN);
    opt.step(0.1);
    let v = w.value();
    assert!(
        v.as_slice().iter().all(|x| x.is_finite()),
        "weights poisoned: {:?}",
        v.as_slice()
    );
    // the healthy coordinate took a descent step
    assert!(v.as_slice()[1] < 1.0);
}

#[test]
fn lookahead_resets_diverged_fast_weights_from_slow() {
    // If the fast weights go non-finite before a sync point, the slow weights
    // must stay clean and the fast weights must be restored from them.
    let w = Tensor::parameter(NdArray::from_vec([1], vec![1.0]));
    let mut opt = Lookahead::new(Sgd::new(vec![w.clone()]), 0.5, 1);
    w.zero_grad();
    w.mul_scalar(2.0).sum().backward();
    w.set_value(NdArray::from_vec([1], vec![f32::INFINITY]));
    opt.step(0.0); // lr 0: SGD leaves the Inf in place; sync must catch it
    assert_eq!(w.value().item(), 1.0, "fast weights not restored from slow");
}

#[test]
fn schedules_are_consistent() {
    let s = ConstantLr(0.3);
    assert_eq!(s.lr(0), s.lr(1000));
    let f = FlatThenAnneal::paper_default(10);
    assert!(f.lr(0) >= f.lr(9));
}
