//! Pins `clip_grad_norm`'s parallel norm/sanitize path bitwise against a
//! serial reference and across thread counts.

use std::sync::Arc;

use hire_optim::clip_grad_norm;
use hire_par::{with_pool, ThreadPool};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters with deterministic pseudo-random gradients large enough to
/// span many 4096-element reduction chunks, with some non-finite entries
/// sprinkled in.
fn params_with_grads(seed: u64, poison: bool) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [10_000usize, 4096, 4095, 4097, 137, 1];
    sizes
        .iter()
        .map(|&n| {
            let p = Tensor::parameter(NdArray::zeros([n]));
            let mut g = NdArray::randn([n], 0.0, 3.0, &mut rng);
            if poison {
                let s = g.as_mut_slice();
                s[0] = f32::NAN;
                if n > 5000 {
                    s[5000] = f32::INFINITY;
                    s[n - 1] = f32::NEG_INFINITY;
                }
            }
            p.add_to_grad(&g);
            p
        })
        .collect()
}

/// The pre-parallel serial reference: zero non-finite entries, then the
/// joint norm via per-chunk f64 partial sums folded in chunk order (the
/// chain `clip_grad_norm` commits to), then rescale.
fn serial_reference(params: &[Tensor], max_norm: f32) -> (f32, usize, Vec<Vec<u32>>) {
    let mut nonfinite = 0usize;
    let mut sq_sum = 0.0f64;
    for p in params {
        p.update_grad(|g| {
            for x in g.as_mut_slice() {
                if !x.is_finite() {
                    *x = 0.0;
                    nonfinite += 1;
                }
            }
        });
        p.with_grad(|g| {
            if let Some(g) = g {
                for chunk in g.as_slice().chunks(4096) {
                    let mut part = 0.0f64;
                    for &x in chunk {
                        part += (x as f64) * (x as f64);
                    }
                    sq_sum += part;
                }
            }
        });
    }
    let total = sq_sum.sqrt() as f32;
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params {
            p.update_grad(|g| g.scale_inplace(scale));
        }
    }
    let grads = params
        .iter()
        .map(|p| p.with_grad(|g| g.unwrap().as_slice().iter().map(|x| x.to_bits()).collect()))
        .collect();
    (total, nonfinite, grads)
}

#[test]
fn parallel_clip_matches_serial_reference_bitwise() {
    for poison in [false, true] {
        let reference_params = params_with_grads(42, poison);
        let (ref_norm, ref_bad, ref_grads) = serial_reference(&reference_params, 1.0);

        for threads in [1usize, 2, 4] {
            let params = params_with_grads(42, poison);
            let pool = Arc::new(ThreadPool::new(threads));
            let stats = with_pool(&pool, || clip_grad_norm(&params, 1.0));
            assert_eq!(
                stats.pre_clip_norm.to_bits(),
                ref_norm.to_bits(),
                "norm differs from serial reference at {threads} threads (poison={poison})"
            );
            assert_eq!(stats.nonfinite_entries, ref_bad);
            for (p, want) in params.iter().zip(&ref_grads) {
                let got: Vec<u32> =
                    p.with_grad(|g| g.unwrap().as_slice().iter().map(|x| x.to_bits()).collect());
                assert_eq!(
                    &got, want,
                    "clipped gradient bits differ at {threads} threads (poison={poison})"
                );
            }
        }
    }
}

#[test]
fn clip_is_thread_count_invariant_on_unclipped_grads() {
    // Below the threshold nothing is rescaled; the reported norm must still
    // be bit-identical across thread counts.
    let mut norms = Vec::new();
    for threads in [1usize, 3, 4] {
        let params = params_with_grads(7, false);
        let pool = Arc::new(ThreadPool::new(threads));
        let stats = with_pool(&pool, || clip_grad_norm(&params, 1.0e9));
        assert!(!stats.clipped);
        norms.push(stats.pre_clip_norm.to_bits());
    }
    assert!(norms.windows(2).all(|w| w[0] == w[1]));
}
