//! Learning-rate schedules.

/// A learning-rate schedule mapping a step index to a multiplier-free LR.
pub trait LrSchedule {
    /// Learning rate at `step` (0-based).
    fn lr(&self, step: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr(&self, _step: usize) -> f32 {
        self.0
    }
}

/// The paper's schedule: flat at `base_lr` for `flat_frac` of the run, then
/// cosine-anneals to zero by `total_steps`.
#[derive(Debug, Clone, Copy)]
pub struct FlatThenAnneal {
    /// Base learning rate (paper: 1e-3).
    pub base_lr: f32,
    /// Total optimization steps.
    pub total_steps: usize,
    /// Fraction of steps held flat (paper: 0.7).
    pub flat_frac: f32,
}

impl FlatThenAnneal {
    /// Schedule with the paper's defaults for a given run length.
    pub fn paper_default(total_steps: usize) -> Self {
        FlatThenAnneal {
            base_lr: 1e-3,
            total_steps,
            flat_frac: 0.7,
        }
    }
}

impl LrSchedule for FlatThenAnneal {
    fn lr(&self, step: usize) -> f32 {
        let flat_steps = (self.total_steps as f32 * self.flat_frac) as usize;
        if step < flat_steps {
            return self.base_lr;
        }
        let anneal_steps = self.total_steps.saturating_sub(flat_steps).max(1);
        let progress = ((step - flat_steps) as f32 / anneal_steps as f32).min(1.0);
        self.base_lr * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos())
    }
}

/// Step decay: multiply by `gamma` every `every` steps.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Steps between decays.
    pub every: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn lr(&self, step: usize) -> f32 {
        self.base_lr * self.gamma.powi((step / self.every.max(1)) as i32)
    }
}

/// Linear warmup into another schedule.
pub struct Warmup<S: LrSchedule> {
    /// Steps of linear warmup from 0.
    pub warmup_steps: usize,
    /// Schedule used after warmup (queried with the raw step index).
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn lr(&self, step: usize) -> f32 {
        let base = self.inner.lr(step);
        if step < self.warmup_steps {
            base * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_then_anneal_profile() {
        let s = FlatThenAnneal::paper_default(100);
        assert_eq!(s.lr(0), 1e-3);
        assert_eq!(s.lr(69), 1e-3);
        // annealing phase decreases monotonically
        assert!(s.lr(75) < 1e-3);
        assert!(s.lr(90) < s.lr(75));
        assert!(s.lr(99) < 1e-4);
        // past the end stays ~0
        assert!(s.lr(200) < 1e-9);
    }

    #[test]
    fn step_decay_profile() {
        let s = StepDecay {
            base_lr: 1.0,
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(9), 1.0);
        assert_eq!(s.lr(10), 0.5);
        assert_eq!(s.lr(25), 0.25);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = Warmup {
            warmup_steps: 10,
            inner: ConstantLr(1.0),
        };
        assert!((s.lr(0) - 0.1).abs() < 1e-6);
        assert!((s.lr(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.lr(10), 1.0);
        assert_eq!(s.lr(50), 1.0);
    }
}
