//! Global-norm gradient clipping.

use hire_tensor::Tensor;

/// Clips gradients so their joint L2 norm is at most `max_norm`.
///
/// Returns the pre-clip global norm (the paper uses threshold 1.0).
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq_sum = 0.0f64;
    for p in params {
        p.with_grad(|g| {
            if let Some(g) = g {
                let n = g.norm_l2() as f64;
                sq_sum += n * n;
            }
        });
    }
    let total = sq_sum.sqrt() as f32;
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params {
            p.update_grad(|g| g.scale_inplace(scale));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_tensor::NdArray;

    fn param_with_grad(values: &[f32]) -> Tensor {
        let t = Tensor::parameter(NdArray::from_vec([values.len()], values.to_vec()));
        let loss = t.mul(&Tensor::constant(NdArray::from_vec(
            [values.len()],
            values.to_vec(),
        )))
        .sum();
        loss.backward();
        t
    }

    #[test]
    fn clips_large_gradients() {
        let p = param_with_grad(&[3.0, 4.0]); // grad = [3, 4], norm 5
        let pre = clip_grad_norm(&[p.clone()], 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = p.grad().unwrap();
        assert!((g.norm_l2() - 1.0).abs() < 1e-5);
        // direction preserved
        assert!((g.as_slice()[0] / g.as_slice()[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn leaves_small_gradients_alone() {
        let p = param_with_grad(&[0.3, 0.4]); // norm 0.5
        let pre = clip_grad_norm(&[p.clone()], 1.0);
        assert!((pre - 0.5).abs() < 1e-5);
        assert!((p.grad().unwrap().norm_l2() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn joint_norm_across_params() {
        let a = param_with_grad(&[3.0]);
        let b = param_with_grad(&[4.0]);
        let pre = clip_grad_norm(&[a.clone(), b.clone()], 2.5);
        assert!((pre - 5.0).abs() < 1e-5);
        let joint = (a.grad().unwrap().norm_l2().powi(2) + b.grad().unwrap().norm_l2().powi(2)).sqrt();
        assert!((joint - 2.5).abs() < 1e-4);
    }
}
