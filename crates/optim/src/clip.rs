//! Global-norm gradient clipping with non-finite sanitization.

use hire_tensor::{linalg, Tensor};

/// What [`clip_grad_norm`] did to the gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradClipStats {
    /// Joint L2 norm across all gradients *after* sanitization but *before*
    /// clipping. Always finite.
    pub pre_clip_norm: f32,
    /// Number of gradient entries that were NaN/Inf and got zeroed.
    pub nonfinite_entries: usize,
    /// Whether the norm exceeded the threshold and gradients were rescaled.
    pub clipped: bool,
}

impl GradClipStats {
    /// True if any gradient entry had to be zeroed.
    pub fn sanitized(&self) -> bool {
        self.nonfinite_entries > 0
    }
}

/// Clips gradients so their joint L2 norm is at most `max_norm`.
///
/// Non-finite gradient entries (NaN/±Inf — e.g. from an overflowing attention
/// score) are zeroed *before* the norm is computed, so one poisoned entry
/// degrades to "that coordinate skips this step" instead of corrupting every
/// parameter through a NaN global norm and the LAMB trust ratio. The returned
/// stats report the pre-clip norm (the paper clips at 1.0) and how many
/// entries were sanitized.
///
/// A degenerate threshold (`max_norm` ≤ 0 or non-finite, e.g. from a
/// mis-parsed config) disables rescaling rather than panicking mid-training:
/// gradients are still sanitized, the norm is still reported, and `clipped`
/// stays `false`.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> GradClipStats {
    let threshold_valid = max_norm.is_finite() && max_norm > 0.0;
    // Both the sanitization scan and the squared-norm sum run element
    // chunks of each gradient across the pool. Parameters are walked
    // serially in order and each parameter's chunk partials fold in
    // ascending chunk order (`linalg::norm_sq_f64`), so the global norm is
    // bit-identical for every thread count.
    let mut nonfinite = 0usize;
    for p in params {
        let mut bad_here = 0usize;
        p.update_grad(|g| {
            bad_here = linalg::sanitize_non_finite(g.as_mut_slice());
        });
        nonfinite += bad_here;
    }
    let mut sq_sum = 0.0f64;
    for p in params {
        p.with_grad(|g| {
            if let Some(g) = g {
                sq_sum += linalg::norm_sq_f64(g.as_slice());
            }
        });
    }
    let total = sq_sum.sqrt() as f32;
    let clipped = threshold_valid && total > max_norm && total > 0.0;
    if clipped {
        let scale = max_norm / total;
        for p in params {
            p.update_grad(|g| g.scale_inplace(scale));
        }
    }
    GradClipStats {
        pre_clip_norm: total,
        nonfinite_entries: nonfinite,
        clipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_tensor::NdArray;

    fn param_with_grad(values: &[f32]) -> Tensor {
        let t = Tensor::parameter(NdArray::from_vec([values.len()], values.to_vec()));
        let loss = t
            .mul(&Tensor::constant(NdArray::from_vec(
                [values.len()],
                values.to_vec(),
            )))
            .sum();
        loss.backward();
        t
    }

    /// A parameter whose gradient has been overwritten to contain `grad`.
    fn param_with_raw_grad(grad: &[f32]) -> Tensor {
        let t = param_with_grad(&vec![1.0; grad.len()]);
        let injected = grad.to_vec();
        t.update_grad(move |g| {
            g.as_mut_slice().copy_from_slice(&injected);
        });
        t
    }

    /// Gradient of `t`, with a diagnostic instead of a bare unwrap if the
    /// test fixture failed to produce one.
    fn grad_of(t: &Tensor) -> NdArray {
        match t.grad() {
            Some(g) => g,
            None => panic!("test parameter has no gradient; backward() did not run"),
        }
    }

    #[test]
    fn clips_large_gradients() {
        let p = param_with_grad(&[3.0, 4.0]); // grad = [3, 4], norm 5
        let stats = clip_grad_norm(&[p.clone()], 1.0);
        assert!((stats.pre_clip_norm - 5.0).abs() < 1e-5);
        assert!(stats.clipped && !stats.sanitized());
        let g = grad_of(&p);
        assert!((g.norm_l2() - 1.0).abs() < 1e-5);
        // direction preserved
        assert!((g.as_slice()[0] / g.as_slice()[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn leaves_small_gradients_alone() {
        let p = param_with_grad(&[0.3, 0.4]); // norm 0.5
        let stats = clip_grad_norm(&[p.clone()], 1.0);
        assert!((stats.pre_clip_norm - 0.5).abs() < 1e-5);
        assert!(!stats.clipped);
        assert!((grad_of(&p).norm_l2() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn joint_norm_across_params() {
        let a = param_with_grad(&[3.0]);
        let b = param_with_grad(&[4.0]);
        let stats = clip_grad_norm(&[a.clone(), b.clone()], 2.5);
        assert!((stats.pre_clip_norm - 5.0).abs() < 1e-5);
        let joint = (grad_of(&a).norm_l2().powi(2) + grad_of(&b).norm_l2().powi(2)).sqrt();
        assert!((joint - 2.5).abs() < 1e-4);
    }

    #[test]
    fn nan_gradient_entries_are_zeroed_and_reported() {
        let p = param_with_raw_grad(&[f32::NAN, 3.0, 4.0]);
        let stats = clip_grad_norm(&[p.clone()], 10.0);
        assert_eq!(stats.nonfinite_entries, 1);
        assert!(stats.sanitized());
        // The finite entries survive: norm = sqrt(3^2 + 4^2) = 5, no clip at 10.
        assert!((stats.pre_clip_norm - 5.0).abs() < 1e-5);
        let g = grad_of(&p);
        assert_eq!(g.as_slice()[0], 0.0);
        assert!(g.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn inf_gradients_do_not_poison_other_params() {
        let bad = param_with_raw_grad(&[f32::INFINITY, f32::NEG_INFINITY]);
        let good = param_with_grad(&[3.0, 4.0]);
        let stats = clip_grad_norm(&[bad.clone(), good.clone()], 1.0);
        assert_eq!(stats.nonfinite_entries, 2);
        assert!(stats.pre_clip_norm.is_finite());
        // The good gradient is clipped by the *finite* norm (5.0), not NaN-ed.
        let g = grad_of(&good);
        assert!((g.norm_l2() - 1.0).abs() < 1e-5);
        assert!(grad_of(&bad).as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn all_nan_gradient_means_zero_step() {
        let p = param_with_raw_grad(&[f32::NAN, f32::NAN]);
        let stats = clip_grad_norm(&[p.clone()], 1.0);
        assert_eq!(stats.nonfinite_entries, 2);
        assert_eq!(stats.pre_clip_norm, 0.0);
        assert!(!stats.clipped);
    }

    #[test]
    fn degenerate_max_norm_disables_clipping_without_panicking() {
        for bad_norm in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            let p = param_with_raw_grad(&[f32::NAN, 3.0, 4.0]);
            let stats = clip_grad_norm(&[p.clone()], bad_norm);
            // Sanitization still runs, the norm is still reported, but no
            // rescale happens against a meaningless threshold.
            assert_eq!(stats.nonfinite_entries, 1);
            assert!((stats.pre_clip_norm - 5.0).abs() < 1e-5);
            assert!(!stats.clipped);
            assert!((grad_of(&p).norm_l2() - 5.0).abs() < 1e-5);
        }
    }
}
