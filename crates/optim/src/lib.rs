//! # hire-optim
//!
//! Optimizers and learning-rate schedules used to train the HIRE model and
//! the baselines, matching the paper's implementation details:
//!
//! - [`Lamb`] with β = (0.9, 0.999), ε = 1e-6 ([`Lamb::paper_default`])
//! - [`Lookahead`] wrapper with α = 0.5, k = 6 ([`Lookahead::paper_default`])
//! - [`FlatThenAnneal`] schedule: flat at 1e-3 for 70 % of steps, then
//!   cosine to zero
//! - global-norm gradient clipping at 1.0 ([`clip_grad_norm`])
//! - plus [`Sgd`] and [`Adam`] for the baseline models

pub mod clip;
pub mod optimizer;
pub mod schedule;

pub use clip::{clip_grad_norm, GradClipStats};
pub use optimizer::{Adam, Lamb, Lookahead, Optimizer, Sgd};
pub use schedule::{ConstantLr, FlatThenAnneal, LrSchedule, StepDecay, Warmup};
