//! First-order optimizers: SGD, Adam, LAMB, and the Lookahead wrapper —
//! the exact training stack described in the paper's implementation details
//! (LAMB with β=(0.9, 0.999), ε=1e-6, wrapped in Lookahead with α=0.5, k=6).

use hire_error::{HireError, HireResult};
use hire_tensor::{NdArray, Tensor};

/// Validates that a checkpointed state vector lines up with the optimizer's
/// parameter list: same slot count, and every present entry shape-matches
/// its parameter. Used by the `import_*` restore paths so a stale or
/// mismatched snapshot surfaces as an error instead of a silent mis-update.
fn check_state_alignment(
    what: &str,
    params: &[Tensor],
    state: &[Option<NdArray>],
) -> HireResult<()> {
    if state.len() != params.len() {
        return Err(HireError::invalid_data(
            what,
            format!(
                "state has {} slots but optimizer has {} parameters",
                state.len(),
                params.len()
            ),
        ));
    }
    for (i, (p, s)) in params.iter().zip(state).enumerate() {
        if let Some(s) = s {
            let expect = p.value();
            if s.dims() != expect.dims() {
                return Err(HireError::invalid_data(
                    what,
                    format!(
                        "slot {i} shape {:?} does not match parameter shape {:?}",
                        s.dims(),
                        expect.dims()
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// A gradient-descent style optimizer over a fixed parameter list.
pub trait Optimizer {
    /// Applies one update using the gradients currently stored on the
    /// parameters. Parameters without a gradient are skipped.
    fn step(&mut self, lr: f32);

    /// The parameters this optimizer updates.
    fn params(&self) -> &[Tensor];

    /// Clears gradients on all parameters.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

// ----------------------------------------------------------------------
// SGD
// ----------------------------------------------------------------------

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    params: Vec<Tensor>,
    momentum: f32,
    velocity: Vec<Option<NdArray>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: Vec<Tensor>) -> Self {
        Self::with_momentum(params, 0.0)
    }

    /// SGD with momentum `mu ∈ [0, 1)`.
    pub fn with_momentum(params: Vec<Tensor>, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        let n = params.len();
        Sgd {
            params,
            momentum,
            velocity: vec![None; n],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, lr: f32) {
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| NdArray::zeros(g.shape().clone()));
                v.scale_inplace(self.momentum);
                v.add_assign(&g);
                v.clone()
            } else {
                g
            };
            p.update_value(|v| {
                for (vi, ui) in v.as_mut_slice().iter_mut().zip(update.as_slice()) {
                    *vi -= lr * ui;
                }
            });
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

// ----------------------------------------------------------------------
// Adam
// ----------------------------------------------------------------------

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW-style).
pub struct Adam {
    params: Vec<Tensor>,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Option<NdArray>>,
    v: Vec<Option<NdArray>>,
    t: u32,
}

impl Adam {
    /// Adam with β=(0.9, 0.999), ε=1e-8, no weight decay.
    pub fn new(params: Vec<Tensor>) -> Self {
        Self::with_config(params, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully configured Adam.
    pub fn with_config(
        params: Vec<Tensor>,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let n = params.len();
        Adam {
            params,
            beta1,
            beta2,
            eps,
            weight_decay,
            m: vec![None; n],
            v: vec![None; n],
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, lr: f32) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let m = self.m[i].get_or_insert_with(|| NdArray::zeros(g.shape().clone()));
            let v = self.v[i].get_or_insert_with(|| NdArray::zeros(g.shape().clone()));
            for ((mi, vi), &gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (beta_eps, wd) = (self.eps, self.weight_decay);
            let (m_ref, v_ref) = (&*m, &*v);
            p.update_value(|val| {
                for ((x, &mi), &vi) in val
                    .as_mut_slice()
                    .iter_mut()
                    .zip(m_ref.as_slice())
                    .zip(v_ref.as_slice())
                {
                    let m_hat = mi / bc1;
                    let v_hat = vi / bc2;
                    let mut upd = m_hat / (v_hat.sqrt() + beta_eps);
                    if wd > 0.0 {
                        upd += wd * *x;
                    }
                    *x -= lr * upd;
                }
            });
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

// ----------------------------------------------------------------------
// LAMB
// ----------------------------------------------------------------------

/// LAMB (You et al., "Large Batch Optimization for Deep Learning"):
/// Adam-style moments with a per-parameter-tensor trust ratio
/// `‖w‖ / ‖update‖` rescaling the step.
pub struct Lamb {
    params: Vec<Tensor>,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Option<NdArray>>,
    v: Vec<Option<NdArray>>,
    t: u32,
}

impl Lamb {
    /// The paper's configuration: β=(0.9, 0.999), ε=1e-6.
    pub fn paper_default(params: Vec<Tensor>) -> Self {
        Self::with_config(params, 0.9, 0.999, 1e-6, 0.0)
    }

    /// Fully configured LAMB.
    pub fn with_config(
        params: Vec<Tensor>,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let n = params.len();
        Lamb {
            params,
            beta1,
            beta2,
            eps,
            weight_decay,
            m: vec![None; n],
            v: vec![None; n],
            t: 0,
        }
    }

    /// Copies out the moment state `(m, v, t)` for checkpointing. Slots that
    /// have never seen a gradient are `None`.
    pub fn export_moments(&self) -> (Vec<Option<NdArray>>, Vec<Option<NdArray>>, u32) {
        (self.m.clone(), self.v.clone(), self.t)
    }

    /// Restores moment state captured by [`Lamb::export_moments`]. Fails if
    /// the slot count or any moment shape does not match the current
    /// parameter list (e.g. resuming a snapshot from a different model).
    pub fn import_moments(
        &mut self,
        m: Vec<Option<NdArray>>,
        v: Vec<Option<NdArray>>,
        t: u32,
    ) -> HireResult<()> {
        check_state_alignment("lamb first moment", &self.params, &m)?;
        check_state_alignment("lamb second moment", &self.params, &v)?;
        self.m = m;
        self.v = v;
        self.t = t;
        Ok(())
    }
}

impl Optimizer for Lamb {
    fn step(&mut self, lr: f32) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let m = self.m[i].get_or_insert_with(|| NdArray::zeros(g.shape().clone()));
            let v = self.v[i].get_or_insert_with(|| NdArray::zeros(g.shape().clone()));
            for ((mi, vi), &gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            // r = m_hat / (sqrt(v_hat) + eps) (+ wd * w)
            let value = p.value();
            let mut update = NdArray::zeros(g.shape().clone());
            for (((ui, &mi), &vi), &wi) in update
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
                .zip(value.as_slice())
            {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *ui = m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * wi;
            }
            // Non-finite guard: a poisoned moment entry must not leak into the
            // weights — zero it so that coordinate skips this step.
            if update.has_non_finite() {
                for ui in update.as_mut_slice() {
                    if !ui.is_finite() {
                        *ui = 0.0;
                    }
                }
            }
            let w_norm = value.norm_l2();
            let u_norm = update.norm_l2();
            let mut trust = if w_norm > 0.0 && u_norm > 0.0 {
                w_norm / u_norm
            } else {
                1.0
            };
            // A degenerate ratio (u_norm ~ 0 with huge w_norm, or overflow)
            // would scale the step to Inf/NaN; fall back to the neutral 1.0.
            if !trust.is_finite() {
                trust = 1.0;
            }
            p.update_value(|val| {
                for (x, &ui) in val.as_mut_slice().iter_mut().zip(update.as_slice()) {
                    *x -= lr * trust * ui;
                }
            });
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

// ----------------------------------------------------------------------
// Lookahead
// ----------------------------------------------------------------------

/// Lookahead (Zhang et al.): maintains slow weights; every `k` inner steps
/// moves them `alpha` of the way toward the fast weights and resets the fast
/// weights to the slow weights.
pub struct Lookahead<O: Optimizer> {
    inner: O,
    alpha: f32,
    k: u32,
    step_count: u32,
    slow: Vec<NdArray>,
}

impl<O: Optimizer> Lookahead<O> {
    /// The paper's configuration: α=0.5, k=6.
    pub fn paper_default(inner: O) -> Self {
        Self::new(inner, 0.5, 6)
    }

    /// Fully configured Lookahead.
    pub fn new(inner: O, alpha: f32, k: u32) -> Self {
        assert!(k >= 1, "lookahead k must be >= 1");
        assert!((0.0..=1.0).contains(&alpha));
        let slow = inner.params().iter().map(|p| p.value()).collect();
        Lookahead {
            inner,
            alpha,
            k,
            step_count: 0,
            slow,
        }
    }

    /// Access to the wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped optimizer (used to restore its state
    /// when resuming from a checkpoint).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Copies out the slow weights and inner-step counter for checkpointing.
    pub fn export_slow(&self) -> (Vec<NdArray>, u32) {
        (self.slow.clone(), self.step_count)
    }

    /// Restores slow-weight state captured by [`Lookahead::export_slow`].
    /// Fails if the slot count or any slow-weight shape does not match the
    /// current parameter list.
    pub fn import_slow(&mut self, slow: Vec<NdArray>, step_count: u32) -> HireResult<()> {
        let wrapped: Vec<Option<NdArray>> = slow.into_iter().map(Some).collect();
        check_state_alignment("lookahead slow weights", self.inner.params(), &wrapped)?;
        self.slow = wrapped.into_iter().map(|s| s.expect("all Some")).collect();
        self.step_count = step_count;
        Ok(())
    }
}

impl<O: Optimizer> Optimizer for Lookahead<O> {
    fn step(&mut self, lr: f32) {
        self.inner.step(lr);
        self.step_count += 1;
        if self.step_count.is_multiple_of(self.k) {
            for (p, slow) in self.inner.params().iter().zip(&mut self.slow) {
                let fast = p.value();
                if fast.has_non_finite() {
                    // Non-finite guard: never pull the slow weights toward a
                    // diverged fast iterate — reset the fast weights from the
                    // last good slow copy instead.
                    p.set_value(slow.clone());
                    continue;
                }
                for (s, &f) in slow.as_mut_slice().iter_mut().zip(fast.as_slice()) {
                    *s += self.alpha * (f - *s);
                }
                p.set_value(slow.clone());
            }
        }
    }

    fn params(&self) -> &[Tensor] {
        self.inner.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_params() -> Vec<Tensor> {
        vec![
            Tensor::parameter(NdArray::from_vec([2], vec![1.0, 2.0])),
            Tensor::parameter(NdArray::from_vec([3], vec![3.0, 4.0, 5.0])),
        ]
    }

    fn step_once(opt: &mut impl Optimizer) {
        for p in opt.params().to_vec() {
            let loss = p.clone().sum();
            loss.backward();
        }
        opt.step(0.1);
        opt.zero_grad();
    }

    #[test]
    fn lamb_moments_round_trip_through_export_import() {
        let params = two_params();
        let mut a = Lamb::paper_default(params.clone());
        step_once(&mut a);
        let (m, v, t) = a.export_moments();
        assert_eq!(t, 1);
        assert!(m.iter().all(|s| s.is_some()));

        let mut b = Lamb::paper_default(params);
        b.import_moments(m.clone(), v.clone(), t).unwrap();
        let (m2, v2, t2) = b.export_moments();
        assert_eq!((m2, v2, t2), (m, v, t));
    }

    #[test]
    fn lamb_import_rejects_misaligned_state() {
        let mut opt = Lamb::paper_default(two_params());
        // Wrong slot count.
        assert!(opt.import_moments(vec![None], vec![None], 1).is_err());
        // Wrong shape in a populated slot.
        let bad = vec![Some(NdArray::from_vec([4], vec![0.0; 4])), None];
        assert!(opt.import_moments(bad, vec![None, None], 1).is_err());
    }

    #[test]
    fn lookahead_slow_state_round_trips_and_validates() {
        let params = two_params();
        let mut opt = Lookahead::paper_default(Lamb::paper_default(params.clone()));
        step_once(&mut opt);
        let (slow, count) = opt.export_slow();
        assert_eq!(count, 1);

        let mut fresh = Lookahead::paper_default(Lamb::paper_default(params));
        fresh.import_slow(slow.clone(), count).unwrap();
        let (slow2, count2) = fresh.export_slow();
        assert_eq!((slow2, count2), (slow.clone(), count));

        // Misaligned slow weights are rejected.
        assert!(fresh.import_slow(vec![slow[0].clone()], 1).is_err());
    }
}
