//! Trivial reference predictors used as sanity lower bounds in tests and
//! the benchmark harness.

use crate::common::RatingModel;
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use rand::rngs::StdRng;

/// Predicts the global mean training rating for every pair.
pub struct GlobalMean {
    mean: f32,
}

impl GlobalMean {
    /// Uninitialized predictor (call `fit`).
    pub fn new() -> Self {
        GlobalMean { mean: 0.0 }
    }
}

impl Default for GlobalMean {
    fn default() -> Self {
        Self::new()
    }
}

impl RatingModel for GlobalMean {
    fn name(&self) -> &'static str {
        "GlobalMean"
    }

    fn fit(&mut self, _dataset: &Dataset, train: &BipartiteGraph, _rng: &mut StdRng) {
        self.mean = train.mean_rating().unwrap_or(0.0);
    }

    fn predict(
        &self,
        _dataset: &Dataset,
        _visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        vec![self.mean; pairs.len()]
    }
}

/// Predicts the mean of the entity's visible ratings (user mean, falling
/// back to item mean, then global mean) — a surprisingly strong baseline
/// that exploits support edges.
pub struct EntityMean {
    global: f32,
}

impl EntityMean {
    /// Uninitialized predictor (call `fit`).
    pub fn new() -> Self {
        EntityMean { global: 0.0 }
    }
}

impl Default for EntityMean {
    fn default() -> Self {
        Self::new()
    }
}

impl RatingModel for EntityMean {
    fn name(&self) -> &'static str {
        "EntityMean"
    }

    fn fit(&mut self, _dataset: &Dataset, train: &BipartiteGraph, _rng: &mut StdRng) {
        self.global = train.mean_rating().unwrap_or(0.0);
    }

    fn predict(
        &self,
        _dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        pairs
            .iter()
            .map(|&(u, i)| {
                let user_edges = visible.user_neighbors(u);
                if !user_edges.is_empty() {
                    user_edges.iter().map(|&(_, v)| v).sum::<f32>() / user_edges.len() as f32
                } else {
                    let item_edges = visible.item_neighbors(i);
                    if !item_edges.is_empty() {
                        item_edges.iter().map(|&(_, v)| v).sum::<f32>() / item_edges.len() as f32
                    } else {
                        self.global
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use hire_graph::Rating;
    use rand::SeedableRng;

    #[test]
    fn global_mean_predicts_mean() {
        let d = SyntheticConfig::movielens_like()
            .scaled(10, 10, (3, 5))
            .generate(22);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = GlobalMean::new();
        m.fit(&d, &g, &mut rng);
        let preds = m.predict(&d, &g, &[(0, 0), (1, 1)]);
        assert_eq!(preds[0], preds[1]);
        assert!((preds[0] - g.mean_rating().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn entity_mean_uses_visible_user_edges() {
        let d = SyntheticConfig::movielens_like()
            .scaled(10, 10, (3, 5))
            .generate(23);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = EntityMean::new();
        m.fit(&d, &g, &mut rng);
        let visible =
            BipartiteGraph::from_ratings(10, 10, &[Rating::new(0, 1, 5.0), Rating::new(0, 2, 3.0)]);
        let p = m.predict(&d, &visible, &[(0, 7)])[0];
        assert!((p - 4.0).abs() < 1e-6);
        // user with no visible edges falls back to item mean
        let p2 = m.predict(&d, &visible, &[(5, 1)])[0];
        assert!((p2 - 5.0).abs() < 1e-6);
        // fully isolated pair falls back to global mean
        let empty = BipartiteGraph::empty(10, 10);
        let p3 = m.predict(&d, &empty, &[(5, 5)])[0];
        assert!((p3 - g.mean_rating().unwrap()).abs() < 1e-6);
    }
}
