//! HIN-based baseline standing in for GraphHINGE / MetaHIN: entity
//! representations are enhanced by **meta-path guided neighbors** on the
//! heterogeneous information network built from users, items and their
//! attributes (U-I-U co-rating paths, I-U-I paths, and U-A-U / I-A-I
//! same-attribute paths). Only applicable to attribute-rich datasets
//! (MovieLens), as in the paper. Lite variant — see DESIGN.md §2.

use crate::common::{
    scale_to_rating, segment_mean_pool, train_on_edges, EdgeTrainConfig, FieldEmbedder, RatingModel,
};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Activation, Linear, Mlp, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// The HIN-neighbor baseline (GraphHINGE/MetaHIN-lite).
pub struct HinNeighbor {
    field_dim: usize,
    /// Neighbor cap per meta-path.
    neighbor_cap: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
    /// Same-attribute neighbor index, precomputed at fit time from the
    /// *schema* (static side information, legitimately available for cold
    /// entities).
    uau_neighbors: Vec<Vec<usize>>,
    iai_neighbors: Vec<Vec<usize>>,
}

struct State {
    fields: FieldEmbedder,
    user_proj: Linear,
    item_proj: Linear,
    uiu_proj: Linear,
    iui_proj: Linear,
    uau_proj: Linear,
    iai_proj: Linear,
    head: Mlp,
}

impl HinNeighbor {
    /// HIN baseline with `field_dim`-wide embeddings.
    pub fn new(field_dim: usize, config: EdgeTrainConfig) -> Self {
        HinNeighbor {
            field_dim,
            neighbor_cap: 8,
            config,
            state: None,
            uau_neighbors: Vec::new(),
            iai_neighbors: Vec::new(),
        }
    }

    /// Builds same-attribute meta-path neighbor lists (U-A-U, I-A-I): for
    /// each entity, other entities sharing the value of its first attribute.
    fn build_attr_paths(dataset: &Dataset, cap: usize) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let group = |attrs: &[Vec<usize>]| -> Vec<Vec<usize>> {
            if attrs.is_empty() || attrs[0].is_empty() {
                return vec![Vec::new(); attrs.len()];
            }
            let mut by_value: HashMap<usize, Vec<usize>> = HashMap::new();
            for (e, codes) in attrs.iter().enumerate() {
                by_value.entry(codes[0]).or_default().push(e);
            }
            attrs
                .iter()
                .enumerate()
                .map(|(e, codes)| {
                    by_value[&codes[0]]
                        .iter()
                        .copied()
                        .filter(|&x| x != e)
                        .take(cap)
                        .collect()
                })
                .collect()
        };
        (group(&dataset.user_attrs), group(&dataset.item_attrs))
    }

    /// Co-rating meta-path neighbors (U-I-U): users who rated an item this
    /// user rated, discovered on the fly from `graph`.
    fn uiu(&self, graph: &BipartiteGraph, user: usize) -> Vec<usize> {
        let mut out = Vec::new();
        'outer: for &(item, _) in graph.user_neighbors(user) {
            for &(other, _) in graph.item_neighbors(item) {
                if other != user && !out.contains(&other) {
                    out.push(other);
                    if out.len() >= self.neighbor_cap {
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    fn iui(&self, graph: &BipartiteGraph, item: usize) -> Vec<usize> {
        let mut out = Vec::new();
        'outer: for &(user, _) in graph.item_neighbors(item) {
            for &(other, _) in graph.user_neighbors(user) {
                if other != item && !out.contains(&other) {
                    out.push(other);
                    if out.len() >= self.neighbor_cap {
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// Mean-pooled neighbor features projected by `proj`.
    fn aggregate_users(
        &self,
        dataset: &Dataset,
        neighbor_lists: Vec<Vec<usize>>,
        proj: &Linear,
    ) -> Tensor {
        let s = self.state.as_ref().unwrap();
        let segments: Vec<usize> = neighbor_lists.iter().map(Vec::len).collect();
        let flat: Vec<usize> = neighbor_lists.into_iter().flatten().collect();
        if flat.is_empty() {
            return Tensor::constant(NdArray::zeros([segments.len(), proj.out_features()]));
        }
        let feats = proj.forward(&s.fields.user_flat(dataset, &flat));
        segment_mean_pool(&feats, &segments)
    }

    fn aggregate_items(
        &self,
        dataset: &Dataset,
        neighbor_lists: Vec<Vec<usize>>,
        proj: &Linear,
    ) -> Tensor {
        let s = self.state.as_ref().unwrap();
        let segments: Vec<usize> = neighbor_lists.iter().map(Vec::len).collect();
        let flat: Vec<usize> = neighbor_lists.into_iter().flatten().collect();
        if flat.is_empty() {
            return Tensor::constant(NdArray::zeros([segments.len(), proj.out_features()]));
        }
        let feats = proj.forward(&s.fields.item_flat(dataset, &flat));
        segment_mean_pool(&feats, &segments)
    }

    fn score(&self, dataset: &Dataset, graph: &BipartiteGraph, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();

        let uiu_lists: Vec<Vec<usize>> = users.iter().map(|&u| self.uiu(graph, u)).collect();
        let uau_lists: Vec<Vec<usize>> = users
            .iter()
            .map(|&u| self.uau_neighbors.get(u).cloned().unwrap_or_default())
            .collect();
        let iui_lists: Vec<Vec<usize>> = items.iter().map(|&i| self.iui(graph, i)).collect();
        let iai_lists: Vec<Vec<usize>> = items
            .iter()
            .map(|&i| self.iai_neighbors.get(i).cloned().unwrap_or_default())
            .collect();

        let u_own = s.user_proj.forward(&s.fields.user_flat(dataset, &users));
        let u_repr = u_own
            .add(&self.aggregate_users(dataset, uiu_lists, &s.uiu_proj))
            .add(&self.aggregate_users(dataset, uau_lists, &s.uau_proj))
            .relu();
        let i_own = s.item_proj.forward(&s.fields.item_flat(dataset, &items));
        let i_repr = i_own
            .add(&self.aggregate_items(dataset, iui_lists, &s.iui_proj))
            .add(&self.aggregate_items(dataset, iai_lists, &s.iai_proj))
            .relu();
        s.head
            .forward(&Tensor::concat_last(&[u_repr, i_repr]))
            .reshape([pairs.len()])
    }
}

impl RatingModel for HinNeighbor {
    fn name(&self) -> &'static str {
        "HIN"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let (uau, iai) = Self::build_attr_paths(dataset, self.neighbor_cap);
        self.uau_neighbors = uau;
        self.iai_neighbors = iai;
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let d = 2 * self.field_dim;
        let uw = fields.num_user_fields() * self.field_dim;
        let iw = fields.num_item_fields() * self.field_dim;
        let state = State {
            user_proj: Linear::new(uw, d, rng),
            item_proj: Linear::new(iw, d, rng),
            uiu_proj: Linear::new(uw, d, rng),
            iui_proj: Linear::new(iw, d, rng),
            uau_proj: Linear::new(uw, d, rng),
            iai_proj: Linear::new(iw, d, rng),
            head: Mlp::new(&[2 * d, d, 1], Activation::Relu, rng),
            fields,
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.fields.parameters();
        for l in [
            &s.user_proj,
            &s.item_proj,
            &s.uiu_proj,
            &s.iui_proj,
            &s.uau_proj,
            &s.iai_proj,
        ] {
            params.extend(l.parameters());
        }
        params.extend(s.head.parameters());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = scale_to_rating(&this.score(d, train, &pairs), d);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        scale_to_rating(&self.score(dataset, visible, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn attr_paths_group_by_first_attribute() {
        let d = SyntheticConfig::movielens_like()
            .scaled(30, 20, (5, 8))
            .generate(19);
        let (uau, _) = HinNeighbor::build_attr_paths(&d, 5);
        assert_eq!(uau.len(), 30);
        for (u, neighbors) in uau.iter().enumerate() {
            for &v in neighbors {
                assert_eq!(d.user_attrs[u][0], d.user_attrs[v][0]);
                assert_ne!(u, v);
            }
        }
    }

    #[test]
    fn trains_and_predicts() {
        let d = SyntheticConfig::movielens_like()
            .scaled(20, 18, (6, 10))
            .generate(20);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = HinNeighbor::new(
            4,
            EdgeTrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        for p in m.predict(&d, &g, &[(0, 0), (19, 17)]) {
            assert!(p >= 0.0 && p <= d.max_rating());
        }
    }

    #[test]
    fn id_only_dataset_yields_empty_attr_paths() {
        let d = SyntheticConfig::douban_like()
            .scaled(10, 10, (3, 5))
            .generate(21);
        let (uau, iai) = HinNeighbor::build_attr_paths(&d, 5);
        assert!(uau.iter().all(Vec::is_empty));
        assert!(iai.iter().all(Vec::is_empty));
    }
}
