//! TaNP (Lin et al., "Task-adaptive Neural Process"): an encoder pools a
//! task's support ratings into a task embedding `z`; a decoder conditioned
//! on `z` predicts the query ratings. Adaptation is amortized in the
//! encoder — no per-task gradient steps (hence TaNP's fast test time in
//! Fig. 6). Simplified to the deterministic-path neural process
//! (DESIGN.md §2).

use crate::common::{scale_to_rating, FieldEmbedder, RatingModel};
use crate::meta::{sample_tasks, support_from_visible};
use hire_data::Dataset;
use hire_graph::{BipartiteGraph, Rating};
use hire_nn::{Activation, Mlp, Module};
use hire_optim::{clip_grad_norm, Adam, Optimizer};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// Training settings for TaNP.
#[derive(Debug, Clone, Copy)]
pub struct TanpConfig {
    /// Outer optimization iterations.
    pub steps: usize,
    /// Tasks per step.
    pub task_batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Support ratio within a training task.
    pub support_ratio: f32,
    /// Task embedding width.
    pub z_dim: usize,
}

impl Default for TanpConfig {
    fn default() -> Self {
        TanpConfig {
            steps: 80,
            task_batch: 6,
            lr: 5e-3,
            support_ratio: 0.1,
            z_dim: 16,
        }
    }
}

/// The TaNP baseline.
pub struct Tanp {
    field_dim: usize,
    config: TanpConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    /// Encoder over (pair features ‖ normalized rating).
    encoder: Mlp,
    /// Decoder over (pair features ‖ z).
    decoder: Mlp,
    z_dim: usize,
}

impl Tanp {
    /// TaNP with `field_dim`-wide embeddings.
    pub fn new(field_dim: usize, config: TanpConfig) -> Self {
        Tanp {
            field_dim,
            config,
            state: None,
        }
    }

    /// Encodes a support set into the task embedding `z` (zeros when the
    /// support set is empty — the prior).
    fn encode_task(&self, dataset: &Dataset, support: &[Rating]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        if support.is_empty() {
            return Tensor::constant(NdArray::zeros([1, s.z_dim]));
        }
        let pairs: Vec<(usize, usize)> = support.iter().map(|r| (r.user, r.item)).collect();
        let x = s.fields.flat(dataset, &pairs); // [k, in]
        let ratings = NdArray::from_vec(
            [support.len(), 1],
            support
                .iter()
                .map(|r| r.value / dataset.max_rating())
                .collect(),
        );
        let enc_in = Tensor::concat_last(&[x, Tensor::constant(ratings)]);
        let per_edge = s.encoder.forward(&enc_in); // [k, z]
                                                   // mean-pool over the support set -> [1, z]
        per_edge.permute(&[1, 0]).mean_last().reshape([1, s.z_dim])
    }

    fn decode(&self, dataset: &Dataset, z: &Tensor, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().unwrap();
        let b = pairs.len();
        let x = s.fields.flat(dataset, pairs); // [b, in]
        let z_tile = z
            .reshape([1, s.z_dim])
            .mul(&Tensor::constant(NdArray::ones([b, s.z_dim])));
        let dec_in = Tensor::concat_last(&[x, z_tile]);
        s.decoder.forward(&dec_in).reshape([b])
    }

    fn all_params(&self) -> Vec<Tensor> {
        let s = self.state.as_ref().unwrap();
        let mut p = s.fields.parameters();
        p.extend(s.encoder.parameters());
        p.extend(s.decoder.parameters());
        p
    }
}

impl RatingModel for Tanp {
    fn name(&self) -> &'static str {
        "TaNP"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let in_w = fields.num_fields() * self.field_dim;
        let z = self.config.z_dim;
        let state = State {
            encoder: Mlp::new(&[in_w + 1, in_w.min(48), z], Activation::Relu, rng),
            decoder: Mlp::new(&[in_w + z, in_w.min(48), 1], Activation::Relu, rng),
            z_dim: z,
            fields,
        };
        self.state = Some(state);
        let params = self.all_params();
        let mut opt = Adam::new(params.clone());
        for _ in 0..self.config.steps {
            opt.zero_grad();
            // user tasks + item tasks, as for the other meta baselines
            let mut tasks = sample_tasks(
                train,
                true,
                self.config.support_ratio,
                4,
                self.config.task_batch / 2 + 1,
                rng,
            );
            tasks.extend(sample_tasks(
                train,
                false,
                self.config.support_ratio,
                4,
                self.config.task_batch / 2,
                rng,
            ));
            let mut total: Option<Tensor> = None;
            let mut count = 0;
            for task in &tasks {
                if task.query.is_empty() {
                    continue;
                }
                let z = self.encode_task(dataset, &task.support);
                let pairs: Vec<(usize, usize)> =
                    task.query.iter().map(|r| (r.user, r.item)).collect();
                let pred = scale_to_rating(&self.decode(dataset, &z, &pairs), dataset);
                let target = NdArray::from_vec(
                    [task.query.len()],
                    task.query.iter().map(|r| r.value).collect(),
                );
                let loss = hire_nn::mse_loss(&pred, &target);
                total = Some(match total {
                    None => loss,
                    Some(acc) => acc.add(&loss),
                });
                count += 1;
            }
            if let Some(loss) = total {
                loss.mul_scalar(1.0 / count.max(1) as f32).backward();
                clip_grad_norm(&params, 5.0);
                opt.step(self.config.lr);
            }
        }
    }

    fn predict(
        &self,
        dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        let support = support_from_visible(visible, pairs, 64);
        let z = self.encode_task(dataset, &support);
        scale_to_rating(&self.decode(dataset, &z, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn trains_and_predicts_in_range() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(15);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Tanp::new(
            4,
            TanpConfig {
                steps: 10,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let preds = m.predict(&d, &g, &[(0, 0), (1, 2)]);
        for p in preds {
            assert!(p >= 0.0 && p <= d.max_rating());
        }
    }

    #[test]
    fn task_embedding_depends_on_support() {
        let d = SyntheticConfig::movielens_like()
            .scaled(20, 15, (6, 10))
            .generate(16);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Tanp::new(
            4,
            TanpConfig {
                steps: 5,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let high: Vec<Rating> = (0..3).map(|i| Rating::new(0, i, 5.0)).collect();
        let low: Vec<Rating> = (0..3).map(|i| Rating::new(0, i, 1.0)).collect();
        let z_high = m.encode_task(&d, &high).value();
        let z_low = m.encode_task(&d, &low).value();
        assert!(
            z_high.max_abs_diff(&z_low) > 1e-6,
            "z insensitive to support"
        );
        // empty support falls back to the zero prior
        let z_prior = m.encode_task(&d, &[]).value();
        assert_eq!(z_prior.norm_l2(), 0.0);
    }
}
