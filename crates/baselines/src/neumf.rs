//! NeuMF (He et al., "Neural Collaborative Filtering"): a GMF branch and an
//! MLP branch over user/item representations, fused by a final linear layer.
//! Representations are built from attribute + ID fields so the model sees
//! the same side information as HIRE.

use crate::common::{scale_to_rating, train_on_edges, EdgeTrainConfig, FieldEmbedder, RatingModel};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Activation, Linear, Mlp, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// The NeuMF baseline.
pub struct NeuMF {
    field_dim: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    user_proj: Linear,
    item_proj: Linear,
    mlp: Mlp,
    fuse: Linear,
}

impl NeuMF {
    /// NeuMF with `field_dim`-wide embeddings.
    pub fn new(field_dim: usize, config: EdgeTrainConfig) -> Self {
        NeuMF {
            field_dim,
            config,
            state: None,
        }
    }

    fn score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let u = s.user_proj.forward(&s.fields.user_flat(dataset, &users)); // [b, d]
        let i = s.item_proj.forward(&s.fields.item_flat(dataset, &items)); // [b, d]
                                                                           // GMF branch: element-wise product
        let gmf = u.mul(&i); // [b, d]
                             // MLP branch on concatenation
        let mlp_out = s.mlp.forward(&Tensor::concat_last(&[u, i])); // [b, d]
        let b = pairs.len();
        s.fuse
            .forward(&Tensor::concat_last(&[gmf, mlp_out]))
            .reshape([b])
    }
}

impl RatingModel for NeuMF {
    fn name(&self) -> &'static str {
        "NeuMF"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let d = 2 * self.field_dim;
        let user_w = fields.num_user_fields() * self.field_dim;
        let item_w = fields.num_item_fields() * self.field_dim;
        let state = State {
            user_proj: Linear::new(user_w, d, rng),
            item_proj: Linear::new(item_w, d, rng),
            mlp: Mlp::new(&[2 * d, 2 * d, d], Activation::Relu, rng),
            fuse: Linear::new(2 * d, 1, rng),
            fields,
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.fields.parameters();
        params.extend(s.user_proj.parameters());
        params.extend(s.item_proj.parameters());
        params.extend(s.mlp.parameters());
        params.extend(s.fuse.parameters());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = scale_to_rating(&this.score(d, &pairs), d);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        _visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        scale_to_rating(&self.score(dataset, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn learns_training_signal() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(4);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = NeuMF::new(
            4,
            EdgeTrainConfig {
                epochs: 12,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let pairs: Vec<(usize, usize)> = d.ratings.iter().map(|r| (r.user, r.item)).collect();
        let preds = m.predict(&d, &g, &pairs);
        let truths: Vec<f32> = d.ratings.iter().map(|r| r.value).collect();
        let mean = g.mean_rating().unwrap();
        let base: Vec<f32> = vec![mean; truths.len()];
        assert!(hire_nn::rmse(&preds, &truths) < hire_nn::rmse(&base, &truths));
    }

    #[test]
    fn output_in_rating_range() {
        let d = SyntheticConfig::douban_like()
            .scaled(10, 12, (3, 6))
            .generate(5);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = NeuMF::new(
            4,
            EdgeTrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        for p in m.predict(&d, &g, &[(0, 0), (9, 11)]) {
            assert!(p >= 0.0 && p <= d.max_rating());
        }
    }
}
