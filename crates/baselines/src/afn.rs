//! AFN (Cheng et al., "Adaptive Factorization Network"): a logarithmic
//! transformation layer learns arbitrary-order cross features —
//! `exp(W · ln|v|)` turns weighted sums of logs into learned products —
//! followed by an MLP.

use crate::common::{scale_to_rating, train_on_edges, EdgeTrainConfig, FieldEmbedder, RatingModel};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Activation, Linear, Mlp, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// The AFN baseline.
pub struct Afn {
    field_dim: usize,
    /// Number of logarithmic neurons (learned cross features).
    log_neurons: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    /// Logarithmic layer: [num_fields, log_neurons] learned exponents.
    log_layer: Linear,
    head: Mlp,
}

impl Afn {
    /// AFN with the given embedding width and logarithmic-neuron count.
    pub fn new(field_dim: usize, log_neurons: usize, config: EdgeTrainConfig) -> Self {
        Afn {
            field_dim,
            log_neurons,
            config,
            state: None,
        }
    }

    fn score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let b = pairs.len();
        let _nf = s.fields.num_fields();
        let f = s.fields.field_dim();
        let fields = s.fields.fields(dataset, pairs); // [b, nf, f]
                                                      // ln|v| per element (sign-safe), then mix across fields per
                                                      // embedding dim: treat dims as batch -> [b, f, nf] @ [nf, L]
        let ln = fields.ln_abs_eps(1e-4).permute(&[0, 2, 1]); // [b, f, nf]
        let mixed = s.log_layer.forward(&ln); // [b, f, L]
        let crossed = mixed.exp(); // learned products, [b, f, L]
        let flat = crossed
            .permute(&[0, 2, 1])
            .reshape([b, self.log_neurons * f]);
        s.head.forward(&flat).reshape([b])
    }
}

impl RatingModel for Afn {
    fn name(&self) -> &'static str {
        "AFN"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let nf = fields.num_fields();
        let head_in = self.log_neurons * self.field_dim;
        let state = State {
            log_layer: Linear::new(nf, self.log_neurons, rng),
            head: Mlp::new(&[head_in, head_in.min(64), 1], Activation::Relu, rng),
            fields,
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.fields.parameters();
        params.extend(s.log_layer.parameters());
        params.extend(s.head.parameters());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = scale_to_rating(&this.score(d, &pairs), d);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        _visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        scale_to_rating(&self.score(dataset, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn learns_training_signal() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(8);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Afn::new(
            4,
            8,
            EdgeTrainConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let pairs: Vec<(usize, usize)> = d.ratings.iter().map(|r| (r.user, r.item)).collect();
        let preds = m.predict(&d, &g, &pairs);
        let truths: Vec<f32> = d.ratings.iter().map(|r| r.value).collect();
        let mean = g.mean_rating().unwrap();
        let base: Vec<f32> = vec![mean; truths.len()];
        assert!(hire_nn::rmse(&preds, &truths) < hire_nn::rmse(&base, &truths));
    }

    #[test]
    fn finite_outputs_despite_log_layer() {
        let d = SyntheticConfig::bookcrossing_like()
            .scaled(12, 12, (3, 6))
            .generate(9);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Afn::new(
            4,
            4,
            EdgeTrainConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        for p in m.predict(&d, &g, &[(0, 0), (11, 11)]) {
            assert!(p.is_finite());
        }
    }
}
