//! # hire-baselines
//!
//! The comparison methods of the paper's evaluation (§ VI-A), implemented
//! on the same tensor/NN substrate as HIRE:
//!
//! - CF-based: [`MatrixFactorization`], [`NeuMF`], [`WideDeep`], [`DeepFM`],
//!   [`Afn`]
//! - Social recommendation: [`GraphRec`] (datasets with a social graph)
//! - HIN-based: [`HinNeighbor`] (GraphHINGE/MetaHIN-lite; attribute-rich
//!   datasets)
//! - Meta-learning: [`MeLU`], [`Mamo`], [`Tanp`]
//! - Naive references: [`GlobalMean`], [`EntityMean`]
//!
//! All models implement [`RatingModel`]; the evaluation harness treats them
//! uniformly. Simplifications relative to the authors' released code are
//! documented per-module and in DESIGN.md §2.

pub mod afn;
pub mod common;
pub mod deepfm;
pub mod graphrec;
pub mod hin;
pub mod mamo;
pub mod melu;
pub mod meta;
pub mod mf;
pub mod naive;
pub mod neumf;
pub mod tanp;
pub mod wide_deep;

pub use afn::Afn;
pub use common::{EdgeTrainConfig, FieldEmbedder, RatingModel};
pub use deepfm::DeepFM;
pub use graphrec::GraphRec;
pub use hin::HinNeighbor;
pub use mamo::Mamo;
pub use melu::{MeLU, MetaTrainConfig};
pub use mf::MatrixFactorization;
pub use naive::{EntityMean, GlobalMean};
pub use neumf::NeuMF;
pub use tanp::{Tanp, TanpConfig};
pub use wide_deep::WideDeep;
