//! GraphRec (Fan et al., "Graph Neural Networks for Social Recommendation"):
//! user representations aggregate rated items *and* social friends; item
//! representations aggregate raters. One aggregation layer (lite variant,
//! DESIGN.md §2). Only applicable to datasets with a social graph (Douban),
//! exactly as in the paper.

use crate::common::{
    scale_to_rating, segment_mean_pool, train_on_edges, EdgeTrainConfig, FieldEmbedder, RatingModel,
};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Activation, Embedding, Linear, Mlp, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// The GraphRec baseline.
pub struct GraphRec {
    field_dim: usize,
    /// Neighbor cap per aggregation.
    neighbor_cap: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    rating_emb: Embedding,
    /// Opinion MLP for item-space aggregation: (item feat ‖ rating) -> d.
    item_opinion: Mlp,
    /// Opinion MLP for user-space aggregation: (user feat ‖ rating) -> d.
    user_opinion: Mlp,
    user_proj: Linear,
    item_proj: Linear,
    social_proj: Linear,
    head: Mlp,
    d: usize,
}

impl GraphRec {
    /// GraphRec with `field_dim`-wide embeddings.
    pub fn new(field_dim: usize, config: EdgeTrainConfig) -> Self {
        GraphRec {
            field_dim,
            neighbor_cap: 10,
            config,
            state: None,
        }
    }

    /// User latent in "item space": aggregate the user's rated items with
    /// opinion (rating) embeddings, then combine with the user's features.
    fn user_latent(
        &self,
        dataset: &Dataset,
        graph: &BipartiteGraph,
        users: &[usize],
        exclude: Option<&[(usize, usize)]>,
    ) -> Tensor {
        let s = self.state.as_ref().unwrap();
        let mut neigh_items: Vec<usize> = Vec::new();
        let mut neigh_codes: Vec<usize> = Vec::new();
        let mut segments: Vec<usize> = Vec::with_capacity(users.len());
        for (ix, &u) in users.iter().enumerate() {
            let mut count = 0;
            for &(i, v) in graph.user_neighbors(u).iter().take(self.neighbor_cap) {
                if let Some(ex) = exclude {
                    if ex.get(ix) == Some(&(u, i)) {
                        continue; // never aggregate the edge being predicted
                    }
                }
                neigh_items.push(i);
                neigh_codes.push(dataset.rating_code(v));
                count += 1;
            }
            segments.push(count);
        }
        let agg = if neigh_items.is_empty() {
            Tensor::constant(NdArray::zeros([users.len(), s.d]))
        } else {
            let feat = s.fields.item_flat(dataset, &neigh_items);
            let op = s.rating_emb.forward(&neigh_codes);
            let opinions = s.item_opinion.forward(&Tensor::concat_last(&[feat, op]));
            segment_mean_pool(&opinions, &segments)
        };
        let own = s.user_proj.forward(&s.fields.user_flat(dataset, users));
        own.add(&agg).relu()
    }

    /// Social-space enhancement: average the item-space latents of friends.
    fn social_latent(
        &self,
        dataset: &Dataset,
        graph: &BipartiteGraph,
        users: &[usize],
        base: &Tensor,
    ) -> Tensor {
        let s = self.state.as_ref().unwrap();
        let Some(social) = dataset.social.as_ref() else {
            return base.clone();
        };
        let mut friend_ids: Vec<usize> = Vec::new();
        let mut segments: Vec<usize> = Vec::with_capacity(users.len());
        for &u in users {
            let friends = social.friends(u);
            let take = friends.len().min(self.neighbor_cap);
            friend_ids.extend_from_slice(&friends[..take]);
            segments.push(take);
        }
        if friend_ids.is_empty() {
            return base.clone();
        }
        let friend_latents = self.user_latent(dataset, graph, &friend_ids, None);
        let social_agg = segment_mean_pool(&friend_latents, &segments);
        base.add(&s.social_proj.forward(&social_agg)).relu()
    }

    /// Item latent: aggregate raters with opinions, combine with item
    /// features.
    fn item_latent(
        &self,
        dataset: &Dataset,
        graph: &BipartiteGraph,
        items: &[usize],
        exclude: Option<&[(usize, usize)]>,
    ) -> Tensor {
        let s = self.state.as_ref().unwrap();
        let mut neigh_users: Vec<usize> = Vec::new();
        let mut neigh_codes: Vec<usize> = Vec::new();
        let mut segments: Vec<usize> = Vec::with_capacity(items.len());
        for (ix, &i) in items.iter().enumerate() {
            let mut count = 0;
            for &(u, v) in graph.item_neighbors(i).iter().take(self.neighbor_cap) {
                if let Some(ex) = exclude {
                    if ex.get(ix) == Some(&(u, i)) {
                        continue;
                    }
                }
                neigh_users.push(u);
                neigh_codes.push(dataset.rating_code(v));
                count += 1;
            }
            segments.push(count);
        }
        let agg = if neigh_users.is_empty() {
            Tensor::constant(NdArray::zeros([items.len(), s.d]))
        } else {
            let feat = s.fields.user_flat(dataset, &neigh_users);
            let op = s.rating_emb.forward(&neigh_codes);
            let opinions = s.user_opinion.forward(&Tensor::concat_last(&[feat, op]));
            segment_mean_pool(&opinions, &segments)
        };
        let own = s.item_proj.forward(&s.fields.item_flat(dataset, items));
        own.add(&agg).relu()
    }

    fn score(&self, dataset: &Dataset, graph: &BipartiteGraph, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let u_base = self.user_latent(dataset, graph, &users, Some(pairs));
        let u = self.social_latent(dataset, graph, &users, &u_base);
        let i = self.item_latent(dataset, graph, &items, Some(pairs));
        s.head
            .forward(&Tensor::concat_last(&[u, i]))
            .reshape([pairs.len()])
    }
}

impl RatingModel for GraphRec {
    fn name(&self) -> &'static str {
        "GraphRec"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let d = 2 * self.field_dim;
        let uw = fields.num_user_fields() * self.field_dim;
        let iw = fields.num_item_fields() * self.field_dim;
        let state = State {
            rating_emb: Embedding::new(dataset.rating_levels, self.field_dim, rng),
            item_opinion: Mlp::new(&[iw + self.field_dim, d], Activation::Relu, rng),
            user_opinion: Mlp::new(&[uw + self.field_dim, d], Activation::Relu, rng),
            user_proj: Linear::new(uw, d, rng),
            item_proj: Linear::new(iw, d, rng),
            social_proj: Linear::new(d, d, rng),
            head: Mlp::new(&[2 * d, d, 1], Activation::Relu, rng),
            d,
            fields,
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.fields.parameters();
        for m in [&s.item_opinion, &s.user_opinion, &s.head] {
            params.extend(m.parameters());
        }
        for l in [&s.user_proj, &s.item_proj, &s.social_proj] {
            params.extend(l.parameters());
        }
        params.extend(s.rating_emb.parameters());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = scale_to_rating(&this.score(d, train, &pairs), d);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        scale_to_rating(&self.score(dataset, visible, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn trains_on_social_dataset() {
        let d = SyntheticConfig::douban_like()
            .scaled(25, 25, (6, 10))
            .generate(17);
        assert!(d.social.is_some());
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = GraphRec::new(
            4,
            EdgeTrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let preds = m.predict(&d, &g, &[(0, 0), (1, 1)]);
        for p in preds {
            assert!(p >= 0.0 && p <= d.max_rating());
        }
    }

    #[test]
    fn cold_user_benefits_from_support_edges() {
        // With support edges visible, the aggregation must change the
        // prediction relative to an isolated user.
        let d = SyntheticConfig::douban_like()
            .scaled(20, 20, (5, 8))
            .generate(18);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = GraphRec::new(
            4,
            EdgeTrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let empty = BipartiteGraph::empty(20, 20);
        let with_support = BipartiteGraph::from_ratings(
            20,
            20,
            &[
                hire_graph::Rating::new(0, 3, 5.0),
                hire_graph::Rating::new(0, 4, 5.0),
            ],
        );
        let p_cold = m.predict(&d, &empty, &[(0, 10)])[0];
        let p_support = m.predict(&d, &with_support, &[(0, 10)])[0];
        assert!((p_cold - p_support).abs() > 1e-6, "support edges ignored");
    }
}
