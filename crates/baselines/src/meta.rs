//! Shared machinery for the meta-learning baselines (MeLU, MAMO, TaNP):
//! task sampling and a first-order MAML (FOMAML) loop.
//!
//! Deviation from the paper's baselines (DESIGN.md §2): the original MeLU /
//! MAMO use second-order MAML; we use FOMAML, which is the standard
//! efficiency approximation and preserves the adaptation behaviour the
//! paper's comparison measures (including the higher test-time cost of
//! per-task adaptation, Fig. 6).

use hire_graph::{BipartiteGraph, Rating};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// One meta-learning task: a cold entity's support/query rating sets.
#[derive(Debug, Clone)]
pub struct Task {
    /// Edges visible for adaptation.
    pub support: Vec<Rating>,
    /// Edges to predict after adaptation.
    pub query: Vec<Rating>,
}

/// Samples per-entity tasks from the training graph: choose an entity with
/// at least `min_edges` edges, reveal `support_ratio` of them (at least 1)
/// as support, keep the rest as query.
pub fn sample_tasks(
    graph: &BipartiteGraph,
    by_user: bool,
    support_ratio: f32,
    min_edges: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<Task> {
    let num_entities = if by_user {
        graph.num_users()
    } else {
        graph.num_items()
    };
    let eligible: Vec<usize> = (0..num_entities)
        .filter(|&e| {
            let deg = if by_user {
                graph.user_degree(e)
            } else {
                graph.item_degree(e)
            };
            deg >= min_edges
        })
        .collect();
    let mut tasks = Vec::with_capacity(count);
    if eligible.is_empty() {
        return tasks;
    }
    for _ in 0..count {
        let &entity = eligible.choose(rng).expect("non-empty eligible set");
        let mut edges: Vec<Rating> = if by_user {
            graph
                .user_neighbors(entity)
                .iter()
                .map(|&(i, v)| Rating::new(entity, i, v))
                .collect()
        } else {
            graph
                .item_neighbors(entity)
                .iter()
                .map(|&(u, v)| Rating::new(u, entity, v))
                .collect()
        };
        edges.shuffle(rng);
        let n_support =
            ((edges.len() as f32 * support_ratio).round() as usize).clamp(1, edges.len() - 1);
        let support = edges[..n_support].to_vec();
        let query = edges[n_support..].to_vec();
        tasks.push(Task { support, query });
    }
    tasks
}

/// Collects a support set from the test-time visible graph for a batch of
/// prediction pairs: edges incident to the pairs' users and items, with the
/// query pairs themselves excluded. Deterministic; capped at `cap` edges
/// (pairs' own users first, so a cold user's few support edges always make
/// the cut).
pub fn support_from_visible(
    visible: &BipartiteGraph,
    pairs: &[(usize, usize)],
    cap: usize,
) -> Vec<Rating> {
    let forbidden: HashSet<(usize, usize)> = pairs.iter().copied().collect();
    let mut out: Vec<Rating> = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let users: Vec<usize> = {
        let mut v: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let items: Vec<usize> = {
        let mut v: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &u in &users {
        for &(i, val) in visible.user_neighbors(u) {
            if out.len() >= cap {
                return out;
            }
            if !forbidden.contains(&(u, i)) && seen.insert((u, i)) {
                out.push(Rating::new(u, i, val));
            }
        }
    }
    for &i in &items {
        for &(u, val) in visible.item_neighbors(i) {
            if out.len() >= cap {
                return out;
            }
            if !forbidden.contains(&(u, i)) && seen.insert((u, i)) {
                out.push(Rating::new(u, i, val));
            }
        }
    }
    out
}

/// First-order MAML scaffolding over a set of adapted ("local") parameters.
///
/// The typical flow per task:
/// 1. [`FoMaml::save`] the local parameter values,
/// 2. [`FoMaml::adapt`] them with a few SGD steps on the support loss,
/// 3. compute the query loss, `backward()`, [`FoMaml::stash_grads`],
/// 4. [`FoMaml::restore`] the saved values and zero grads,
/// 5. after the task batch, [`FoMaml::replay_grads`] and step the outer
///    optimizer.
pub struct FoMaml {
    /// Parameters adapted in the inner loop.
    pub local_params: Vec<Tensor>,
    /// All meta-parameters (receive outer gradients).
    pub all_params: Vec<Tensor>,
    /// Inner-loop SGD learning rate.
    pub inner_lr: f32,
    /// Inner-loop step count.
    pub inner_steps: usize,
    stash: Vec<Option<NdArray>>,
}

impl FoMaml {
    /// Creates the scaffold. `local_params` must be a subset of
    /// `all_params` (shared tensors, not copies).
    pub fn new(
        local_params: Vec<Tensor>,
        all_params: Vec<Tensor>,
        inner_lr: f32,
        inner_steps: usize,
    ) -> Self {
        let stash = vec![None; all_params.len()];
        FoMaml {
            local_params,
            all_params,
            inner_lr,
            inner_steps,
            stash,
        }
    }

    /// Snapshot of the local parameter values.
    pub fn save(&self) -> Vec<NdArray> {
        self.local_params.iter().map(|p| p.value()).collect()
    }

    /// Restores local parameters and clears every gradient.
    pub fn restore(&self, saved: &[NdArray]) {
        for (p, v) in self.local_params.iter().zip(saved) {
            p.set_value(v.clone());
        }
        for p in &self.all_params {
            p.zero_grad();
        }
    }

    /// Runs `inner_steps` SGD steps on `loss_fn` (the support loss),
    /// updating only the local parameters.
    pub fn adapt(&self, mut loss_fn: impl FnMut() -> Tensor) {
        for _ in 0..self.inner_steps {
            for p in &self.all_params {
                p.zero_grad();
            }
            let loss = loss_fn();
            loss.backward();
            for p in &self.local_params {
                if let Some(g) = p.grad() {
                    p.update_value(|v| {
                        for (vi, gi) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                            *vi -= self.inner_lr * gi;
                        }
                    });
                }
            }
        }
        for p in &self.all_params {
            p.zero_grad();
        }
    }

    /// Accumulates the current gradients (from the query-loss backward)
    /// into the stash.
    pub fn stash_grads(&mut self) {
        for (slot, p) in self.stash.iter_mut().zip(&self.all_params) {
            if let Some(g) = p.grad() {
                match slot {
                    Some(acc) => acc.add_assign(&g),
                    None => *slot = Some(g),
                }
            }
        }
    }

    /// Moves the stashed gradients back onto the parameters (for the outer
    /// optimizer) and clears the stash.
    pub fn replay_grads(&mut self) {
        for (slot, p) in self.stash.iter_mut().zip(&self.all_params) {
            if let Some(g) = slot.take() {
                p.add_to_grad(&g);
            }
        }
    }
}

/// Deterministic mini-task split of a support set used at prediction time
/// by models that adapt on the fly.
pub fn ratings_to_pairs(ratings: &[Rating]) -> (Vec<(usize, usize)>, NdArray) {
    let pairs: Vec<(usize, usize)> = ratings.iter().map(|r| (r.user, r.item)).collect();
    let values = NdArray::from_vec([ratings.len()], ratings.iter().map(|r| r.value).collect());
    (pairs, values)
}

/// Uniformly samples `count` seed entities (with replacement).
pub fn sample_entities(n: usize, count: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..count).map(|_| rng.gen_range(0..n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_graph() -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..6 {
            for i in 0..8 {
                if (u * 3 + i) % 2 == 0 {
                    edges.push(Rating::new(u, i, ((u + i) % 5 + 1) as f32));
                }
            }
        }
        BipartiteGraph::from_ratings(6, 8, &edges)
    }

    #[test]
    fn task_sampling_respects_ratio() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let tasks = sample_tasks(&g, true, 0.25, 3, 10, &mut rng);
        assert_eq!(tasks.len(), 10);
        for t in &tasks {
            assert!(!t.support.is_empty());
            assert!(!t.query.is_empty());
            // all edges share a user
            let u = t.support[0].user;
            assert!(t.support.iter().chain(&t.query).all(|r| r.user == u));
        }
    }

    #[test]
    fn item_tasks_share_items() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let tasks = sample_tasks(&g, false, 0.25, 2, 5, &mut rng);
        for t in &tasks {
            let i = t.support[0].item;
            assert!(t.support.iter().chain(&t.query).all(|r| r.item == i));
        }
    }

    #[test]
    fn support_from_visible_excludes_queries() {
        let g = toy_graph();
        let pairs = [(0usize, 0usize), (0, 2)];
        let support = support_from_visible(&g, &pairs, 10);
        assert!(!support.is_empty());
        for r in &support {
            assert!(!pairs.contains(&(r.user, r.item)));
        }
        // capped
        let tight = support_from_visible(&g, &pairs, 2);
        assert_eq!(tight.len(), 2);
    }

    #[test]
    fn fomaml_adapt_and_restore_roundtrip() {
        let w = Tensor::parameter(NdArray::from_vec([1], vec![1.0]));
        let mut fm = FoMaml::new(vec![w.clone()], vec![w.clone()], 0.1, 3);
        let saved = fm.save();
        // minimize (w - 3)^2: inner steps move w toward 3
        fm.adapt(|| w.sub(&Tensor::scalar(3.0)).square().sum());
        assert!(w.value().item() > 1.0);
        // fake query loss grad, stash, restore
        w.square().sum().backward();
        fm.stash_grads();
        fm.restore(&saved);
        assert_eq!(w.value().item(), 1.0);
        assert!(w.grad().is_none());
        fm.replay_grads();
        assert!(w.grad().is_some());
    }
}
