//! Wide&Deep (Cheng et al.): a wide linear model over raw one-hot features
//! plus a deep MLP over field embeddings, summed at the output.

use crate::common::{scale_to_rating, train_on_edges, EdgeTrainConfig, FieldEmbedder, RatingModel};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Activation, Mlp, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// The Wide&Deep baseline.
pub struct WideDeep {
    field_dim: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    /// Wide part: one weight per one-hot position (users then items).
    wide_weights: Tensor,
    wide_bias: Tensor,
    deep: Mlp,
    wide_user_width: usize,
}

impl WideDeep {
    /// Wide&Deep with `field_dim`-wide embeddings on the deep side.
    pub fn new(field_dim: usize, config: EdgeTrainConfig) -> Self {
        WideDeep {
            field_dim,
            config,
            state: None,
        }
    }

    fn wide_score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().unwrap();
        // Gather the wide weights at the active one-hot positions. The
        // user/item one-hot feature of a pair activates exactly one position
        // per attribute, so a sparse gather-and-sum equals the dense dot.
        let mut rows = Vec::with_capacity(pairs.len());
        for &(u, i) in pairs {
            let uf = dataset.user_feature(u);
            let itf = dataset.item_feature(i);
            let mut sum_positions = Vec::new();
            for (pos, &v) in uf.iter().enumerate() {
                if v != 0.0 {
                    sum_positions.push(pos);
                }
            }
            for (pos, &v) in itf.iter().enumerate() {
                if v != 0.0 {
                    sum_positions.push(s.wide_user_width + pos);
                }
            }
            rows.push(sum_positions);
        }
        // Build per-pair sums via gather_rows on a [W, 1] weight table.
        let flat_positions: Vec<usize> = rows.iter().flatten().copied().collect();
        let counts: Vec<usize> = rows.iter().map(Vec::len).collect();
        let gathered = s.wide_weights.gather_rows(&flat_positions); // [total, 1]
                                                                    // Sum per pair with a fixed block-diagonal pooling matrix.
        let total: usize = counts.iter().sum();
        let b = pairs.len();
        let mut pool = NdArray::zeros([b, total]);
        let mut offset = 0;
        for (r, &c) in counts.iter().enumerate() {
            for k in 0..c {
                *pool.at_mut(&[r, offset + k]) = 1.0;
            }
            offset += c;
        }
        Tensor::constant(pool)
            .matmul(&gathered.reshape([total, 1]))
            .reshape([b])
            .add(&s.wide_bias)
    }

    fn score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let b = pairs.len();
        let deep_in = s.fields.flat(dataset, pairs);
        let deep = s.deep.forward(&deep_in).reshape([b]);
        self.wide_score(dataset, pairs).add(&deep)
    }
}

impl RatingModel for WideDeep {
    fn name(&self) -> &'static str {
        "Wide&Deep"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let wide_user_width = if dataset.user_schema.is_id_only() {
            dataset.num_users
        } else {
            dataset.user_schema.one_hot_width()
        };
        let wide_item_width = if dataset.item_schema.is_id_only() {
            dataset.num_items
        } else {
            dataset.item_schema.one_hot_width()
        };
        let wide_total = wide_user_width + wide_item_width;
        let deep_in = fields.num_fields() * self.field_dim;
        let state = State {
            wide_weights: Tensor::parameter(NdArray::zeros([wide_total, 1])),
            wide_bias: Tensor::parameter(NdArray::zeros([1])),
            deep: Mlp::new(
                &[deep_in, 2 * deep_in.min(64), 16, 1],
                Activation::Relu,
                rng,
            ),
            wide_user_width,
            fields,
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.fields.parameters();
        params.push(s.wide_weights.clone());
        params.push(s.wide_bias.clone());
        params.extend(s.deep.parameters());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = scale_to_rating(&this.score(d, &pairs), d);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        _visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        scale_to_rating(&self.score(dataset, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn learns_training_signal() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(6);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = WideDeep::new(
            4,
            EdgeTrainConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let pairs: Vec<(usize, usize)> = d.ratings.iter().map(|r| (r.user, r.item)).collect();
        let preds = m.predict(&d, &g, &pairs);
        let truths: Vec<f32> = d.ratings.iter().map(|r| r.value).collect();
        let mean = g.mean_rating().unwrap();
        let base: Vec<f32> = vec![mean; truths.len()];
        assert!(hire_nn::rmse(&preds, &truths) < hire_nn::rmse(&base, &truths));
    }
}
