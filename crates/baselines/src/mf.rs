//! Classical matrix factorization with biases (Koren et al.) — a reference
//! point below the neural baselines.

use crate::common::{train_on_edges, EdgeTrainConfig, RatingModel};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Embedding, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// Biased matrix factorization: `r̂ = μ + b_u + b_i + p_u · q_i`.
pub struct MatrixFactorization {
    factors: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
}

struct State {
    user_latent: Embedding,
    item_latent: Embedding,
    user_bias: Embedding,
    item_bias: Embedding,
    global_mean: f32,
}

impl MatrixFactorization {
    /// MF with the given latent dimensionality.
    pub fn new(factors: usize, config: EdgeTrainConfig) -> Self {
        MatrixFactorization {
            factors,
            config,
            state: None,
        }
    }

    fn score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let _ = dataset;
        let p = s.user_latent.forward(&users); // [b, f]
        let q = s.item_latent.forward(&items);
        let dot = p.mul(&q).sum_last(); // [b]
        let bu = s.user_bias.forward(&users).reshape([pairs.len()]);
        let bi = s.item_bias.forward(&items).reshape([pairs.len()]);
        dot.add(&bu).add(&bi).add_scalar(s.global_mean)
    }
}

impl RatingModel for MatrixFactorization {
    fn name(&self) -> &'static str {
        "MF"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let state = State {
            user_latent: Embedding::new(dataset.num_users, self.factors, rng),
            item_latent: Embedding::new(dataset.num_items, self.factors, rng),
            user_bias: Embedding::new(dataset.num_users, 1, rng),
            item_bias: Embedding::new(dataset.num_items, 1, rng),
            global_mean: train.mean_rating().unwrap_or(0.0),
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.user_latent.parameters();
        params.extend(s.item_latent.parameters());
        params.extend(s.user_bias.parameters());
        params.extend(s.item_bias.parameters());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = this.score(d, &pairs);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        _visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        let (lo, hi) = (dataset.min_rating, dataset.max_rating());
        self.score(dataset, pairs)
            .value()
            .into_vec()
            .into_iter()
            .map(|x| x.clamp(lo, hi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn fits_warm_ratings() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(1);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mf = MatrixFactorization::new(
            8,
            EdgeTrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        mf.fit(&d, &g, &mut rng);
        // training-set RMSE should beat the global-mean predictor
        let pairs: Vec<(usize, usize)> = d.ratings.iter().map(|r| (r.user, r.item)).collect();
        let preds = mf.predict(&d, &g, &pairs);
        let truths: Vec<f32> = d.ratings.iter().map(|r| r.value).collect();
        let rmse = hire_nn::rmse(&preds, &truths);
        let mean = g.mean_rating().unwrap();
        let base: Vec<f32> = vec![mean; truths.len()];
        assert!(rmse < hire_nn::rmse(&base, &truths), "rmse {rmse}");
    }

    #[test]
    fn predictions_clamped_to_scale() {
        let d = SyntheticConfig::movielens_like()
            .scaled(15, 12, (4, 8))
            .generate(2);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut mf = MatrixFactorization::new(
            4,
            EdgeTrainConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        mf.fit(&d, &g, &mut rng);
        let preds = mf.predict(&d, &g, &[(0, 0), (1, 1)]);
        for p in preds {
            assert!((1.0..=5.0).contains(&p));
        }
    }
}
