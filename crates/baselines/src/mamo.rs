//! MAMO (Dong et al.): memory-augmented meta-optimization. Like MeLU, a
//! meta-learned head is adapted per task; additionally a **feature-specific
//! memory** keyed by the user profile supplies a personalized bias to the
//! head before adaptation, steering the initialization toward the right
//! user group. (Simplified: one memory matrix; see DESIGN.md §2.)

use crate::common::{scale_to_rating, FieldEmbedder, RatingModel};
use crate::melu::MetaTrainConfig;
use crate::meta::{sample_tasks, support_from_visible, FoMaml};
use hire_data::Dataset;
use hire_graph::{BipartiteGraph, Rating};
use hire_nn::{Linear, Module};
use hire_optim::{clip_grad_norm, Adam, Optimizer};
use hire_tensor::{init, NdArray, Tensor};
use rand::rngs::StdRng;

/// The MAMO baseline (simplified memory-augmented MAML).
pub struct Mamo {
    field_dim: usize,
    /// Number of memory prototypes `P`.
    prototypes: usize,
    config: MetaTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    /// Head layer 1 (adapted locally).
    l1: Linear,
    /// Head layer 2 (adapted locally).
    l2: Linear,
    /// Profile key projection: user features -> P logits (meta only).
    profile_key: Linear,
    /// Memory matrix [P, hidden] (meta only).
    memory: Tensor,
}

impl Mamo {
    /// MAMO with `field_dim`-wide embeddings and `prototypes` memory rows.
    pub fn new(field_dim: usize, prototypes: usize, config: MetaTrainConfig) -> Self {
        Mamo {
            field_dim,
            prototypes,
            config,
            state: None,
        }
    }

    fn raw_score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let x = s.fields.flat(dataset, pairs); // [b, in]
                                               // memory bias from the user profile
        let profile = s.fields.user_flat(dataset, &users); // [b, uw]
        let attn = s.profile_key.forward(&profile).softmax_last(); // [b, P]
        let bias = attn.matmul(&s.memory); // [b, hidden]
        let h = s.l1.forward(&x).add(&bias).relu();
        s.l2.forward(&h).reshape([pairs.len()])
    }

    fn batch_loss(&self, dataset: &Dataset, edges: &[Rating]) -> Tensor {
        let pairs: Vec<(usize, usize)> = edges.iter().map(|r| (r.user, r.item)).collect();
        let pred = scale_to_rating(&self.raw_score(dataset, &pairs), dataset);
        let target = NdArray::from_vec([edges.len()], edges.iter().map(|r| r.value).collect());
        hire_nn::mse_loss(&pred, &target)
    }

    fn local_params(&self) -> Vec<Tensor> {
        let s = self.state.as_ref().unwrap();
        let mut p = s.l1.parameters();
        p.extend(s.l2.parameters());
        p
    }

    fn all_params(&self) -> Vec<Tensor> {
        let s = self.state.as_ref().unwrap();
        let mut p = s.fields.parameters();
        p.extend(s.l1.parameters());
        p.extend(s.l2.parameters());
        p.extend(s.profile_key.parameters());
        p.push(s.memory.clone());
        p
    }
}

impl RatingModel for Mamo {
    fn name(&self) -> &'static str {
        "MAMO"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let in_w = fields.num_fields() * self.field_dim;
        let hidden = in_w.min(32);
        let uw = fields.num_user_fields() * self.field_dim;
        let state = State {
            l1: Linear::new(in_w, hidden, rng),
            l2: Linear::new(hidden, 1, rng),
            profile_key: Linear::new(uw, self.prototypes, rng),
            memory: Tensor::parameter(init::xavier_uniform(self.prototypes, hidden, rng)),
            fields,
        };
        self.state = Some(state);

        let all = self.all_params();
        let mut fomaml = FoMaml::new(
            self.local_params(),
            all.clone(),
            self.config.inner_lr,
            self.config.inner_steps,
        );
        let mut outer = Adam::new(all.clone());
        for _ in 0..self.config.outer_steps {
            let mut tasks = sample_tasks(
                train,
                true,
                self.config.support_ratio,
                4,
                self.config.task_batch / 2 + 1,
                rng,
            );
            tasks.extend(sample_tasks(
                train,
                false,
                self.config.support_ratio,
                4,
                self.config.task_batch / 2,
                rng,
            ));
            for task in &tasks {
                if task.support.is_empty() || task.query.is_empty() {
                    continue;
                }
                let saved = fomaml.save();
                fomaml.adapt(|| self.batch_loss(dataset, &task.support));
                self.batch_loss(dataset, &task.query).backward();
                fomaml.stash_grads();
                fomaml.restore(&saved);
            }
            fomaml.replay_grads();
            clip_grad_norm(&all, 5.0);
            outer.step(self.config.outer_lr);
            outer.zero_grad();
        }
    }

    fn predict(
        &self,
        dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        let support = support_from_visible(visible, pairs, 64);
        let fomaml = FoMaml::new(
            self.local_params(),
            self.all_params(),
            self.config.inner_lr,
            self.config.inner_steps,
        );
        let saved = fomaml.save();
        if !support.is_empty() {
            fomaml.adapt(|| self.batch_loss(dataset, &support));
        }
        let out = scale_to_rating(&self.raw_score(dataset, pairs), dataset)
            .value()
            .into_vec();
        fomaml.restore(&saved);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn trains_and_predicts() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(13);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Mamo::new(
            4,
            4,
            MetaTrainConfig {
                outer_steps: 4,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let preds = m.predict(&d, &g, &[(0, 0), (5, 5)]);
        assert_eq!(preds.len(), 2);
        for p in preds {
            assert!(p.is_finite() && p >= 0.0 && p <= d.max_rating());
        }
    }

    #[test]
    fn memory_receives_gradient_during_training() {
        let d = SyntheticConfig::movielens_like()
            .scaled(20, 15, (6, 10))
            .generate(14);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Mamo::new(
            4,
            4,
            MetaTrainConfig {
                outer_steps: 1,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        // after training, memory should have moved away from init — proxy:
        // predictions differ when we zero the memory
        let s = m.state.as_ref().unwrap();
        let before = m.predict(&d, &g, &[(0, 0)])[0];
        let saved = s.memory.value();
        s.memory.set_value(NdArray::zeros(saved.shape().clone()));
        let after = m.predict(&d, &g, &[(0, 0)])[0];
        assert!((before - after).abs() > 1e-6, "memory has no influence");
    }
}
