//! DeepFM (Guo et al.): a factorization-machine component over shared field
//! embeddings plus a deep MLP, summed at the output.

use crate::common::{scale_to_rating, train_on_edges, EdgeTrainConfig, FieldEmbedder, RatingModel};
use hire_data::Dataset;
use hire_graph::BipartiteGraph;
use hire_nn::{Activation, Mlp, Module};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// The DeepFM baseline.
pub struct DeepFM {
    field_dim: usize,
    config: EdgeTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    deep: Mlp,
    bias: Tensor,
}

impl DeepFM {
    /// DeepFM with `field_dim`-wide shared embeddings.
    pub fn new(field_dim: usize, config: EdgeTrainConfig) -> Self {
        DeepFM {
            field_dim,
            config,
            state: None,
        }
    }

    /// Second-order FM interaction: `0.5 * ((Σv)² - Σv²)` summed over the
    /// embedding dimension.
    fn fm_second_order(fields: &Tensor) -> Tensor {
        // fields: [b, nf, f]
        let sum = fields.clone();
        let b = fields.dims()[0];
        let f = fields.dims()[2];
        // Σ over fields -> [b, f]
        let summed = sum.permute(&[0, 2, 1]).sum_last(); // [b, f]
        let square_of_sum = summed.square(); // [b, f]
        let sum_of_square = fields.square().permute(&[0, 2, 1]).sum_last(); // [b, f]
        square_of_sum
            .sub(&sum_of_square)
            .mul_scalar(0.5)
            .reshape([b, f])
            .sum_last() // [b]
    }

    fn score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let b = pairs.len();
        let fields = s.fields.fields(dataset, pairs); // [b, nf, f]
        let fm = Self::fm_second_order(&fields);
        let nf = s.fields.num_fields();
        let f = s.fields.field_dim();
        let deep = s.deep.forward(&fields.reshape([b, nf * f])).reshape([b]);
        fm.add(&deep).add(&s.bias)
    }
}

impl RatingModel for DeepFM {
    fn name(&self) -> &'static str {
        "DeepFM"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let deep_in = fields.num_fields() * self.field_dim;
        let state = State {
            deep: Mlp::new(&[deep_in, deep_in.min(64), 16, 1], Activation::Relu, rng),
            bias: Tensor::parameter(NdArray::zeros([1])),
            fields,
        };
        self.state = Some(state);
        let s = self.state.as_ref().unwrap();
        let mut params = s.fields.parameters();
        params.extend(s.deep.parameters());
        params.push(s.bias.clone());
        let this: &Self = self;
        train_on_edges(dataset, train, params, self.config, rng, |d, batch| {
            let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
            let pred = scale_to_rating(&this.score(d, &pairs), d);
            let target = NdArray::from_vec([batch.len()], batch.iter().map(|r| r.value).collect());
            hire_nn::mse_loss(&pred, &target)
        });
    }

    fn predict(
        &self,
        dataset: &Dataset,
        _visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        scale_to_rating(&self.score(dataset, pairs), dataset)
            .value()
            .into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn fm_second_order_known_value() {
        // one batch, two fields, f = 2: v1 = [1, 2], v2 = [3, 4]
        // ((v1+v2)^2 - v1^2 - v2^2)/2 per dim = v1*v2 = [3, 8]; summed = 11
        let fields = Tensor::constant(NdArray::from_vec([1, 2, 2], vec![1., 2., 3., 4.]));
        let fm = DeepFM::fm_second_order(&fields);
        assert!((fm.value().item() - 11.0).abs() < 1e-5);
    }

    #[test]
    fn learns_training_signal() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(7);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = DeepFM::new(
            4,
            EdgeTrainConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let pairs: Vec<(usize, usize)> = d.ratings.iter().map(|r| (r.user, r.item)).collect();
        let preds = m.predict(&d, &g, &pairs);
        let truths: Vec<f32> = d.ratings.iter().map(|r| r.value).collect();
        let mean = g.mean_rating().unwrap();
        let base: Vec<f32> = vec![mean; truths.len()];
        assert!(hire_nn::rmse(&preds, &truths) < hire_nn::rmse(&base, &truths));
    }
}
