//! MeLU (Lee et al.): meta-learned user preference estimator. A shared
//! feature embedding plus a decision head; the head is locally adapted to
//! each cold entity's few support ratings (first-order MAML here, see
//! `meta.rs`).

use crate::common::{scale_to_rating, FieldEmbedder, RatingModel};
use crate::meta::{sample_tasks, support_from_visible, FoMaml, Task};
use hire_data::Dataset;
use hire_graph::{BipartiteGraph, Rating};
use hire_nn::{Activation, Mlp, Module};
use hire_optim::{clip_grad_norm, Adam, Optimizer};
use hire_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;

/// Meta-training settings shared by MeLU and MAMO.
#[derive(Debug, Clone, Copy)]
pub struct MetaTrainConfig {
    /// Outer optimization iterations.
    pub outer_steps: usize,
    /// Tasks per outer step.
    pub task_batch: usize,
    /// Outer (Adam) learning rate.
    pub outer_lr: f32,
    /// Inner (SGD) learning rate.
    pub inner_lr: f32,
    /// Inner adaptation steps.
    pub inner_steps: usize,
    /// Support ratio within a training task (paper protocol: 0.1).
    pub support_ratio: f32,
}

impl Default for MetaTrainConfig {
    fn default() -> Self {
        MetaTrainConfig {
            outer_steps: 60,
            task_batch: 4,
            outer_lr: 5e-3,
            inner_lr: 5e-2,
            inner_steps: 2,
            support_ratio: 0.1,
        }
    }
}

/// The MeLU baseline.
pub struct MeLU {
    field_dim: usize,
    config: MetaTrainConfig,
    state: Option<State>,
}

struct State {
    fields: FieldEmbedder,
    head: Mlp,
}

impl MeLU {
    /// MeLU with `field_dim`-wide embeddings.
    pub fn new(field_dim: usize, config: MetaTrainConfig) -> Self {
        MeLU {
            field_dim,
            config,
            state: None,
        }
    }

    fn raw_score(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let s = self.state.as_ref().expect("fit before predict");
        let x = s.fields.flat(dataset, pairs);
        s.head.forward(&x).reshape([pairs.len()])
    }

    fn batch_loss(&self, dataset: &Dataset, edges: &[Rating]) -> Tensor {
        let pairs: Vec<(usize, usize)> = edges.iter().map(|r| (r.user, r.item)).collect();
        let pred = scale_to_rating(&self.raw_score(dataset, &pairs), dataset);
        let target = NdArray::from_vec([edges.len()], edges.iter().map(|r| r.value).collect());
        hire_nn::mse_loss(&pred, &target)
    }

    fn head_params(&self) -> Vec<Tensor> {
        self.state.as_ref().unwrap().head.parameters()
    }

    fn all_params(&self) -> Vec<Tensor> {
        let s = self.state.as_ref().unwrap();
        let mut p = s.fields.parameters();
        p.extend(s.head.parameters());
        p
    }

    fn meta_train(
        &self,
        dataset: &Dataset,
        tasks_fn: impl Fn(&mut StdRng) -> Vec<Task>,
        rng: &mut StdRng,
    ) {
        let all = self.all_params();
        let mut fomaml = FoMaml::new(
            self.head_params(),
            all.clone(),
            self.config.inner_lr,
            self.config.inner_steps,
        );
        let mut outer = Adam::new(all.clone());
        for _ in 0..self.config.outer_steps {
            let tasks = tasks_fn(rng);
            for task in &tasks {
                if task.support.is_empty() || task.query.is_empty() {
                    continue;
                }
                let saved = fomaml.save();
                fomaml.adapt(|| self.batch_loss(dataset, &task.support));
                let query_loss = self.batch_loss(dataset, &task.query);
                query_loss.backward();
                fomaml.stash_grads();
                fomaml.restore(&saved);
            }
            fomaml.replay_grads();
            clip_grad_norm(&all, 5.0);
            outer.step(self.config.outer_lr);
            outer.zero_grad();
        }
    }
}

impl RatingModel for MeLU {
    fn name(&self) -> &'static str {
        "MeLU"
    }

    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng) {
        let fields = FieldEmbedder::new(dataset, self.field_dim, rng);
        let in_w = fields.num_fields() * self.field_dim;
        let head = Mlp::new(&[in_w, in_w.min(32), 1], Activation::Relu, rng);
        self.state = Some(State { fields, head });
        let cfg = self.config;
        self.meta_train(
            dataset,
            |rng| {
                // alternate user-tasks and item-tasks so all three cold-start
                // scenarios benefit from adaptation
                let mut t = sample_tasks(
                    train,
                    true,
                    cfg.support_ratio,
                    4,
                    cfg.task_batch / 2 + 1,
                    rng,
                );
                t.extend(sample_tasks(
                    train,
                    false,
                    cfg.support_ratio,
                    4,
                    cfg.task_batch / 2,
                    rng,
                ));
                t
            },
            rng,
        );
    }

    fn predict(
        &self,
        dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32> {
        let support = support_from_visible(visible, pairs, 64);
        let fomaml = FoMaml::new(
            self.head_params(),
            self.all_params(),
            self.config.inner_lr,
            self.config.inner_steps,
        );
        let saved = fomaml.save();
        if !support.is_empty() {
            fomaml.adapt(|| self.batch_loss(dataset, &support));
        }
        let out = scale_to_rating(&self.raw_score(dataset, pairs), dataset)
            .value()
            .into_vec();
        fomaml.restore(&saved);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn meta_training_runs_and_predicts_in_range() {
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(10);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = MeLU::new(
            4,
            MetaTrainConfig {
                outer_steps: 5,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let preds = m.predict(&d, &g, &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(preds.len(), 3);
        for p in preds {
            assert!(p >= 0.0 && p <= d.max_rating());
        }
    }

    #[test]
    fn predict_restores_parameters() {
        let d = SyntheticConfig::movielens_like()
            .scaled(20, 15, (6, 10))
            .generate(11);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = MeLU::new(
            4,
            MetaTrainConfig {
                outer_steps: 2,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let before: Vec<NdArray> = m.all_params().iter().map(|p| p.value()).collect();
        let _ = m.predict(&d, &g, &[(0, 0), (3, 4)]);
        let after: Vec<NdArray> = m.all_params().iter().map(|p| p.value()).collect();
        for (b, a) in before.iter().zip(&after) {
            assert!(
                b.allclose(a, 1e-7),
                "adaptation leaked into meta-parameters"
            );
        }
    }

    #[test]
    fn adaptation_moves_predictions_toward_support() {
        // After meta-training, feeding a support set of all-5 ratings should
        // push predictions up relative to a support set of all-1 ratings.
        let d = SyntheticConfig::movielens_like()
            .scaled(25, 20, (8, 12))
            .generate(12);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = MeLU::new(
            4,
            MetaTrainConfig {
                outer_steps: 8,
                inner_steps: 3,
                ..Default::default()
            },
        );
        m.fit(&d, &g, &mut rng);
        let pairs = [(0usize, 5usize)];
        let high: Vec<Rating> = (0..4).map(|i| Rating::new(0, i, 5.0)).collect();
        let low: Vec<Rating> = (0..4).map(|i| Rating::new(0, i, 1.0)).collect();
        let g_high = BipartiteGraph::from_ratings(25, 20, &high);
        let g_low = BipartiteGraph::from_ratings(25, 20, &low);
        let p_high = m.predict(&d, &g_high, &pairs)[0];
        let p_low = m.predict(&d, &g_low, &pairs)[0];
        assert!(
            p_high > p_low,
            "adaptation ineffective: high-support {p_high} <= low-support {p_low}"
        );
    }
}
