//! Shared infrastructure for the baseline recommenders: the
//! [`RatingModel`] trait, field embeddings, and a generic edge-wise
//! training loop.

use hire_data::Dataset;
use hire_graph::{BipartiteGraph, Rating};
use hire_nn::{Embedding, Module};
use hire_optim::{clip_grad_norm, Adam, Optimizer};
use hire_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A rating-prediction model participating in the comparison tables.
///
/// `fit` sees only the training graph; `predict` additionally receives the
/// test-time visible graph (training edges + cold-entity support edges), so
/// graph-aggregating and meta-learning models can use a cold entity's few
/// interactions, while plain CF models simply ignore it.
pub trait RatingModel {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Trains on the training graph.
    fn fit(&mut self, dataset: &Dataset, train: &BipartiteGraph, rng: &mut StdRng);

    /// Predicts ratings for `(user, item)` pairs.
    fn predict(
        &self,
        dataset: &Dataset,
        visible: &BipartiteGraph,
        pairs: &[(usize, usize)],
    ) -> Vec<f32>;
}

/// Per-side field embeddings: one table per categorical attribute plus an ID
/// table, each `f`-dimensional. CF baselines build their input features
/// from these fields.
pub struct FieldEmbedder {
    user_attr: Vec<Embedding>,
    item_attr: Vec<Embedding>,
    user_id: Embedding,
    item_id: Embedding,
    f: usize,
}

impl FieldEmbedder {
    /// Builds the embedder for a dataset schema.
    pub fn new(dataset: &Dataset, f: usize, rng: &mut StdRng) -> Self {
        FieldEmbedder {
            user_attr: dataset
                .user_schema
                .attributes()
                .iter()
                .map(|a| Embedding::new(a.cardinality, f, rng))
                .collect(),
            item_attr: dataset
                .item_schema
                .attributes()
                .iter()
                .map(|a| Embedding::new(a.cardinality, f, rng))
                .collect(),
            user_id: Embedding::new(dataset.num_users, f, rng),
            item_id: Embedding::new(dataset.num_items, f, rng),
            f,
        }
    }

    /// Field width `f`.
    pub fn field_dim(&self) -> usize {
        self.f
    }

    /// Number of user fields (attributes + ID).
    pub fn num_user_fields(&self) -> usize {
        self.user_attr.len() + 1
    }

    /// Number of item fields (attributes + ID).
    pub fn num_item_fields(&self) -> usize {
        self.item_attr.len() + 1
    }

    /// Total fields per (user, item) pair.
    pub fn num_fields(&self) -> usize {
        self.num_user_fields() + self.num_item_fields()
    }

    /// Embeds a batch of pairs as stacked fields `[batch, num_fields, f]`.
    pub fn fields(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let mut parts: Vec<Tensor> = Vec::with_capacity(self.num_fields());
        for (k, emb) in self.user_attr.iter().enumerate() {
            let codes: Vec<usize> = users.iter().map(|&u| dataset.user_attrs[u][k]).collect();
            parts.push(emb.forward(&codes));
        }
        parts.push(self.user_id.forward(&users));
        for (k, emb) in self.item_attr.iter().enumerate() {
            let codes: Vec<usize> = items.iter().map(|&i| dataset.item_attrs[i][k]).collect();
            parts.push(emb.forward(&codes));
        }
        parts.push(self.item_id.forward(&items));
        let b = pairs.len();
        let nf = parts.len();
        Tensor::concat_last(&parts).reshape([b, nf, self.f])
    }

    /// Embeds a batch of pairs as flat features `[batch, num_fields * f]`.
    pub fn flat(&self, dataset: &Dataset, pairs: &[(usize, usize)]) -> Tensor {
        let b = pairs.len();
        self.fields(dataset, pairs)
            .reshape([b, self.num_fields() * self.f])
    }

    /// Embeds only the user side, `[batch, num_user_fields * f]`.
    pub fn user_flat(&self, dataset: &Dataset, users: &[usize]) -> Tensor {
        let mut parts: Vec<Tensor> = Vec::new();
        for (k, emb) in self.user_attr.iter().enumerate() {
            let codes: Vec<usize> = users.iter().map(|&u| dataset.user_attrs[u][k]).collect();
            parts.push(emb.forward(&codes));
        }
        parts.push(self.user_id.forward(users));
        Tensor::concat_last(&parts)
    }

    /// Embeds only the item side, `[batch, num_item_fields * f]`.
    pub fn item_flat(&self, dataset: &Dataset, items: &[usize]) -> Tensor {
        let mut parts: Vec<Tensor> = Vec::new();
        for (k, emb) in self.item_attr.iter().enumerate() {
            let codes: Vec<usize> = items.iter().map(|&i| dataset.item_attrs[i][k]).collect();
            parts.push(emb.forward(&codes));
        }
        parts.push(self.item_id.forward(items));
        Tensor::concat_last(&parts)
    }
}

impl Module for FieldEmbedder {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p: Vec<Tensor> = self
            .user_attr
            .iter()
            .chain(&self.item_attr)
            .flat_map(|e| e.parameters())
            .collect();
        p.extend(self.user_id.parameters());
        p.extend(self.item_id.parameters());
        p
    }
}

/// Generic training settings for edge-wise (per-rating) baselines.
#[derive(Debug, Clone, Copy)]
pub struct EdgeTrainConfig {
    /// Passes over the training edges.
    pub epochs: usize,
    /// Ratings per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for EdgeTrainConfig {
    fn default() -> Self {
        EdgeTrainConfig {
            epochs: 8,
            batch_size: 128,
            lr: 1e-2,
        }
    }
}

/// Trains by minimizing MSE over observed edges with Adam.
/// `loss_fn(dataset, batch)` returns the batch loss. Returns per-epoch mean
/// losses.
pub fn train_on_edges(
    dataset: &Dataset,
    train: &BipartiteGraph,
    params: Vec<Tensor>,
    config: EdgeTrainConfig,
    rng: &mut StdRng,
    mut loss_fn: impl FnMut(&Dataset, &[Rating]) -> Tensor,
) -> Vec<f32> {
    let mut edges: Vec<Rating> = train.edges().collect();
    assert!(!edges.is_empty(), "training graph has no edges");
    let mut optimizer = Adam::new(params.clone());
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        edges.shuffle(rng);
        let mut sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in edges.chunks(config.batch_size) {
            optimizer.zero_grad();
            let loss = loss_fn(dataset, chunk);
            sum += loss.item() as f64;
            batches += 1;
            loss.backward();
            clip_grad_norm(&params, 5.0);
            optimizer.step(config.lr);
        }
        epoch_losses.push((sum / batches.max(1) as f64) as f32);
    }
    epoch_losses
}

/// Mean-pools rows of `values` (`[total, d]`) into `[segments.len(), d]`,
/// where `segments[i]` is the number of consecutive rows belonging to
/// output row `i` (0 ⇒ a zero row). Used by the graph-aggregating
/// baselines to average variable-size neighborhoods in one matmul.
pub fn segment_mean_pool(values: &Tensor, segments: &[usize]) -> Tensor {
    let dims = values.dims();
    assert_eq!(dims.len(), 2, "segment_mean_pool expects [total, d]");
    let total: usize = segments.iter().sum();
    assert_eq!(dims[0], total, "segment counts must cover all rows");
    let b = segments.len();
    let mut pool = hire_tensor::NdArray::zeros([b, total.max(1)]);
    let mut offset = 0;
    for (r, &c) in segments.iter().enumerate() {
        for k in 0..c {
            *pool.at_mut(&[r, offset + k]) = 1.0 / c as f32;
        }
        offset += c;
    }
    if total == 0 {
        return Tensor::constant(hire_tensor::NdArray::zeros([b, dims[1]]));
    }
    Tensor::constant(pool).matmul(values)
}

/// Maps an unbounded score tensor into the rating range via
/// `max_rating * sigmoid(x)` (the same output scaling HIRE uses, Eq. 16).
pub fn scale_to_rating(score: &Tensor, dataset: &Dataset) -> Tensor {
    score.sigmoid().mul_scalar(dataset.max_rating())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_data::SyntheticConfig;
    use rand::SeedableRng;

    #[test]
    fn field_shapes() {
        let d = SyntheticConfig::movielens_like()
            .scaled(10, 10, (3, 5))
            .generate(1);
        let mut rng = StdRng::seed_from_u64(0);
        let fe = FieldEmbedder::new(&d, 4, &mut rng);
        // 4 user attrs + id + 4 item attrs + id = 10 fields
        assert_eq!(fe.num_fields(), 10);
        let pairs = [(0, 1), (2, 3), (4, 5)];
        assert_eq!(fe.fields(&d, &pairs).dims(), vec![3, 10, 4]);
        assert_eq!(fe.flat(&d, &pairs).dims(), vec![3, 40]);
        assert_eq!(fe.user_flat(&d, &[0, 1]).dims(), vec![2, 20]);
        assert_eq!(fe.item_flat(&d, &[0]).dims(), vec![1, 20]);
    }

    #[test]
    fn id_only_dataset_has_only_id_fields() {
        let d = SyntheticConfig::douban_like()
            .scaled(8, 9, (2, 4))
            .generate(2);
        let mut rng = StdRng::seed_from_u64(1);
        let fe = FieldEmbedder::new(&d, 4, &mut rng);
        assert_eq!(fe.num_fields(), 2);
    }

    #[test]
    fn train_on_edges_decreases_loss() {
        let d = SyntheticConfig::movielens_like()
            .scaled(30, 25, (8, 15))
            .generate(3);
        let g = d.graph();
        let mut rng = StdRng::seed_from_u64(2);
        let fe = FieldEmbedder::new(&d, 4, &mut rng);
        let head = hire_nn::Linear::new(fe.num_fields() * 4, 1, &mut rng);
        let mut params = fe.parameters();
        params.extend(head.parameters());
        let fe_ref = &fe;
        let head_ref = &head;
        let losses = train_on_edges(
            &d,
            &g,
            params,
            EdgeTrainConfig {
                epochs: 6,
                batch_size: 64,
                lr: 1e-2,
            },
            &mut rng,
            |dataset, batch| {
                let pairs: Vec<(usize, usize)> = batch.iter().map(|r| (r.user, r.item)).collect();
                let x = fe_ref.flat(dataset, &pairs);
                let score = head_ref.forward(&x).reshape([pairs.len()]);
                let pred = scale_to_rating(&score, dataset);
                let target = hire_tensor::NdArray::from_vec(
                    [batch.len()],
                    batch.iter().map(|r| r.value).collect(),
                );
                hire_nn::mse_loss(&pred, &target)
            },
        );
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }
}
