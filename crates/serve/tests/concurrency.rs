//! Worker-pool semantics under load, shutdown, worker failure, deadline
//! budgets, and cache/graph write races — mirroring the fault-injection
//! style of `crates/bench/tests/fault.rs`.

use hire_core::{HireConfig, HireModel};
use hire_graph::Rating;
use hire_serve::{
    EngineConfig, FrozenModel, Predictor, RatingQuery, ResilienceConfig, ServeEngine, ServeError,
    Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Answers `user + item` after an optional delay; panics on a poisoned
/// user id.
struct TestPredictor {
    delay: Duration,
    panic_on_user: Option<usize>,
    calls: AtomicU64,
    served: AtomicU64,
}

impl TestPredictor {
    fn new(delay: Duration, panic_on_user: Option<usize>) -> Self {
        TestPredictor {
            delay,
            panic_on_user,
            calls: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }
}

impl Predictor for TestPredictor {
    fn predict_batch(&self, queries: &[RatingQuery]) -> Result<Vec<f32>, ServeError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if let Some(poison) = self.panic_on_user {
            if queries.iter().any(|q| q.user == poison) {
                panic!("injected predictor panic");
            }
        }
        self.served
            .fetch_add(queries.len() as u64, Ordering::SeqCst);
        Ok(queries.iter().map(|q| (q.user + q.item) as f32).collect())
    }
}

#[test]
fn shutdown_drains_queue_and_answers_every_accepted_query() {
    let predictor = Arc::new(TestPredictor::new(Duration::from_millis(5), None));
    let server = Server::start(
        predictor.clone(),
        ServerConfig {
            workers: 2,
            max_batch: 4,
            max_queue: 1024,
            batch_timeout: Duration::from_millis(1),
        },
    );
    let handles: Vec<_> = (0..40)
        .map(|k| {
            server
                .submit(RatingQuery { user: k, item: k })
                .expect("accepted")
        })
        .collect();
    // Shut down immediately: the queue is still mostly full, and every
    // accepted query must still be answered.
    server.shutdown();
    for (k, h) in handles.into_iter().enumerate() {
        let pred = h.wait().expect("drained query must be answered");
        assert_eq!(pred.rating, (2 * k) as f32);
    }
    assert_eq!(predictor.served.load(Ordering::SeqCst), 40);
    let stats = server.stats();
    assert_eq!(stats.submitted, 40);
    assert_eq!(stats.completed, 40);
}

#[test]
fn submissions_after_shutdown_are_rejected() {
    let server = Server::start(
        Arc::new(TestPredictor::new(Duration::ZERO, None)),
        ServerConfig::default(),
    );
    server.shutdown();
    let err = server
        .submit(RatingQuery { user: 0, item: 0 })
        .expect_err("post-shutdown submit must fail");
    assert!(matches!(err, ServeError::ShuttingDown), "got {err}");
}

#[test]
fn full_queue_rejects_with_overloaded_but_drops_nothing_accepted() {
    let server = Server::start(
        Arc::new(TestPredictor::new(Duration::from_millis(20), None)),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_queue: 3,
            batch_timeout: Duration::ZERO,
        },
    );
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for k in 0..30 {
        match server.submit(RatingQuery { user: k, item: 0 }) {
            Ok(h) => accepted.push((k, h)),
            Err(ServeError::Overloaded { max_queue, .. }) => {
                assert_eq!(max_queue, 3);
                rejected += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0, "a slow single worker must shed load");
    let n_accepted = accepted.len() as u64;
    for (k, h) in accepted {
        let pred = h.wait().expect("accepted query must complete");
        assert_eq!(pred.rating, k as f32);
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, n_accepted);
}

#[test]
fn worker_panic_surfaces_as_worker_lost_not_deadlock() {
    let predictor = Arc::new(TestPredictor::new(Duration::ZERO, Some(666)));
    let server = Server::start(
        predictor.clone(),
        ServerConfig {
            workers: 1,
            max_batch: 1, // keep the poisoned query in its own batch
            max_queue: 64,
            batch_timeout: Duration::ZERO,
        },
    );
    let err = server
        .predict(RatingQuery { user: 666, item: 0 })
        .expect_err("poisoned query must fail");
    assert!(matches!(err, ServeError::WorkerLost), "got {err}");
    assert_eq!(server.stats().worker_panics, 1);

    // The worker survives the panic and keeps serving.
    let pred = server
        .predict(RatingQuery { user: 1, item: 2 })
        .expect("worker must survive a panicked batch");
    assert_eq!(pred.rating, 3.0);
    server.shutdown();
}

#[test]
fn batches_coalesce_up_to_max_batch() {
    let predictor = Arc::new(TestPredictor::new(Duration::from_millis(10), None));
    let server = Server::start(
        predictor.clone(),
        ServerConfig {
            workers: 1,
            max_batch: 8,
            max_queue: 1024,
            batch_timeout: Duration::from_millis(20),
        },
    );
    // With one slow worker, 32 queued queries must drain in far fewer
    // predictor calls than queries.
    let handles: Vec<_> = (0..32)
        .map(|k| {
            server
                .submit(RatingQuery { user: k, item: 1 })
                .expect("accepted")
        })
        .collect();
    for h in handles {
        h.wait().expect("answered");
    }
    let calls = predictor.calls.load(Ordering::SeqCst);
    assert!(
        calls < 32,
        "expected micro-batching to coalesce: {calls} calls for 32 queries"
    );
    server.shutdown();
}

#[test]
fn queued_query_past_its_deadline_is_answered_typed_not_silently_late() {
    let server = Server::start(
        Arc::new(TestPredictor::new(Duration::from_millis(80), None)),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_queue: 16,
            batch_timeout: Duration::ZERO,
        },
    );
    // Occupy the single worker, then queue a query whose budget will
    // expire while it waits behind the slow batch (FIFO: the slow query
    // is always picked first, so the doomed one waits out its budget).
    let slow = server
        .submit(RatingQuery { user: 1, item: 1 })
        .expect("accepted");
    std::thread::sleep(Duration::from_millis(10));
    let doomed = server
        .submit_with_deadline(
            RatingQuery { user: 2, item: 2 },
            Some(Duration::from_millis(1)),
        )
        .expect("accepted");
    let err = doomed
        .recv_timeout(Duration::from_secs(10))
        .expect_err("expired query must fail");
    assert!(matches!(err, ServeError::DeadlineExceeded), "got {err}");
    slow.wait().expect("unconstrained query still served");
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(
        stats.completed, 2,
        "a deadline reply still counts as an answer"
    );
}

#[test]
fn recv_timeout_bounds_the_wait_without_consuming_the_handle() {
    let server = Server::start(
        Arc::new(TestPredictor::new(Duration::from_millis(50), None)),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_queue: 16,
            batch_timeout: Duration::ZERO,
        },
    );
    let handle = server
        .submit(RatingQuery { user: 3, item: 4 })
        .expect("accepted");
    // The bounded wait elapses long before the 50ms predictor finishes...
    let err = handle
        .recv_timeout(Duration::from_millis(1))
        .expect_err("bounded wait must time out");
    assert!(matches!(err, ServeError::DeadlineExceeded), "got {err}");
    // ...but the query is still in flight: a later wait gets the answer.
    let pred = handle
        .recv_timeout(Duration::from_secs(10))
        .expect("late answer must still arrive");
    assert_eq!(pred.rating, 7.0);
    server.shutdown();
}

/// Returns one value fewer than it was asked for — a buggy predictor whose
/// output must never be zip-truncated onto the wrong queries.
struct ShortPredictor;

impl Predictor for ShortPredictor {
    fn predict_batch(&self, queries: &[RatingQuery]) -> Result<Vec<f32>, ServeError> {
        Ok(vec![1.0; queries.len().saturating_sub(1)])
    }
}

#[test]
fn wrong_length_predictor_output_is_a_typed_error_for_every_caller() {
    let server = Server::start(
        Arc::new(ShortPredictor),
        ServerConfig {
            workers: 1,
            max_batch: 4,
            max_queue: 64,
            batch_timeout: Duration::from_millis(20),
        },
    );
    let handles: Vec<_> = (0..4)
        .map(|k| {
            server
                .submit(RatingQuery { user: k, item: 0 })
                .expect("accepted")
        })
        .collect();
    for (k, h) in handles.into_iter().enumerate() {
        let err = h
            .recv_timeout(Duration::from_secs(10))
            .expect_err("short output must fail the whole batch");
        assert!(
            matches!(&err, ServeError::Model(e) if e.to_string().contains("for a batch of")),
            "query {k}: expected a shape-mismatch error, got {err}"
        );
    }
    server.shutdown();
    assert_eq!(server.stats().completed, 4);
}

const RACE_USERS: usize = 40;
const RACE_ITEMS: usize = 35;

/// Two engines over the same frozen weights and dataset: one to race, one
/// as the single-threaded reference.
fn engine_pair() -> (ServeEngine, ServeEngine) {
    let dataset = Arc::new(
        hire_data::SyntheticConfig::movielens_like()
            .scaled(RACE_USERS, RACE_ITEMS, (8, 15))
            .generate(21),
    );
    let config = HireConfig::fast().with_blocks(1).with_context_size(8, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let engine_config = EngineConfig {
        cache_capacity: 64,
        ..EngineConfig::from_model_config(&config)
    };
    let mk = || {
        ServeEngine::new(frozen.clone(), dataset.clone(), engine_config.clone())
            .with_resilience(ResilienceConfig::disabled())
    };
    (mk(), mk())
}

#[test]
fn concurrent_insert_rating_never_leaves_a_stale_memo_behind() {
    // Regression for the resolve/invalidate race: a resolver samples a
    // context from the old graph, `insert_rating` swaps the graph and
    // invalidates, then the resolver caches its stale sample (or attaches
    // a stale prediction to a fresh entry). Every write below touches the
    // query's own user, so any entry surviving the final write MUST have
    // been sampled from the final graph — which makes the raced engine's
    // answers bit-comparable to a single-threaded reference.
    let (live, reference) = engine_pair();
    let live = Arc::new(live);
    let queries: Vec<RatingQuery> = (0..8)
        .map(|u| RatingQuery {
            user: u,
            item: u % RACE_ITEMS,
        })
        .collect();
    let writes: Vec<Rating> = (0..20)
        .flat_map(|round| (0..8).map(move |u| Rating::new(u, 10 + round, 1.0 + (round % 5) as f32)))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let live = live.clone();
            let stop = stop.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    live.predict_batch(&queries).expect("served during race");
                }
            })
        })
        .collect();
    for w in &writes {
        live.insert_rating(*w).expect("insert");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread");
    }

    // Replay the same writes serially on the reference engine.
    for w in &writes {
        reference.insert_rating(*w).expect("insert");
    }
    let raced = live.predict_batch(&queries).expect("served after race");
    let fresh = reference.predict_batch(&queries).expect("reference");
    for (k, (a, b)) in raced.iter().zip(&fresh).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {k}: raced answer {a} != reference {b} — a stale context or memo survived"
        );
    }
}

#[test]
fn concurrent_clients_see_consistent_results() {
    let server = Arc::new(Server::start(
        Arc::new(TestPredictor::new(Duration::from_micros(200), None)),
        ServerConfig {
            workers: 4,
            max_batch: 8,
            max_queue: 4096,
            batch_timeout: Duration::from_micros(500),
        },
    ));
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let server = server.clone();
            std::thread::spawn(move || {
                for k in 0..50usize {
                    let q = RatingQuery {
                        user: c * 100 + k,
                        item: k,
                    };
                    let pred = server.predict(q).expect("served");
                    assert_eq!(pred.rating, (q.user + q.item) as f32);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(server.stats().completed, 400);
}
