//! Worker-pool semantics under load, shutdown, and worker failure —
//! mirroring the fault-injection style of `crates/bench/tests/fault.rs`.

use hire_serve::{Predictor, RatingQuery, ServeError, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Answers `user + item` after an optional delay; panics on a poisoned
/// user id.
struct TestPredictor {
    delay: Duration,
    panic_on_user: Option<usize>,
    calls: AtomicU64,
    served: AtomicU64,
}

impl TestPredictor {
    fn new(delay: Duration, panic_on_user: Option<usize>) -> Self {
        TestPredictor {
            delay,
            panic_on_user,
            calls: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }
}

impl Predictor for TestPredictor {
    fn predict_batch(&self, queries: &[RatingQuery]) -> Result<Vec<f32>, ServeError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if let Some(poison) = self.panic_on_user {
            if queries.iter().any(|q| q.user == poison) {
                panic!("injected predictor panic");
            }
        }
        self.served
            .fetch_add(queries.len() as u64, Ordering::SeqCst);
        Ok(queries.iter().map(|q| (q.user + q.item) as f32).collect())
    }
}

#[test]
fn shutdown_drains_queue_and_answers_every_accepted_query() {
    let predictor = Arc::new(TestPredictor::new(Duration::from_millis(5), None));
    let server = Server::start(
        predictor.clone(),
        ServerConfig {
            workers: 2,
            max_batch: 4,
            max_queue: 1024,
            batch_timeout: Duration::from_millis(1),
        },
    );
    let handles: Vec<_> = (0..40)
        .map(|k| {
            server
                .submit(RatingQuery { user: k, item: k })
                .expect("accepted")
        })
        .collect();
    // Shut down immediately: the queue is still mostly full, and every
    // accepted query must still be answered.
    server.shutdown();
    for (k, h) in handles.into_iter().enumerate() {
        let pred = h.wait().expect("drained query must be answered");
        assert_eq!(pred.rating, (2 * k) as f32);
    }
    assert_eq!(predictor.served.load(Ordering::SeqCst), 40);
    let stats = server.stats();
    assert_eq!(stats.submitted, 40);
    assert_eq!(stats.completed, 40);
}

#[test]
fn submissions_after_shutdown_are_rejected() {
    let server = Server::start(
        Arc::new(TestPredictor::new(Duration::ZERO, None)),
        ServerConfig::default(),
    );
    server.shutdown();
    let err = server
        .submit(RatingQuery { user: 0, item: 0 })
        .expect_err("post-shutdown submit must fail");
    assert!(matches!(err, ServeError::ShuttingDown), "got {err}");
}

#[test]
fn full_queue_rejects_with_overloaded_but_drops_nothing_accepted() {
    let server = Server::start(
        Arc::new(TestPredictor::new(Duration::from_millis(20), None)),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_queue: 3,
            batch_timeout: Duration::ZERO,
        },
    );
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for k in 0..30 {
        match server.submit(RatingQuery { user: k, item: 0 }) {
            Ok(h) => accepted.push((k, h)),
            Err(ServeError::Overloaded { max_queue, .. }) => {
                assert_eq!(max_queue, 3);
                rejected += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0, "a slow single worker must shed load");
    let n_accepted = accepted.len() as u64;
    for (k, h) in accepted {
        let pred = h.wait().expect("accepted query must complete");
        assert_eq!(pred.rating, k as f32);
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, n_accepted);
}

#[test]
fn worker_panic_surfaces_as_worker_lost_not_deadlock() {
    let predictor = Arc::new(TestPredictor::new(Duration::ZERO, Some(666)));
    let server = Server::start(
        predictor.clone(),
        ServerConfig {
            workers: 1,
            max_batch: 1, // keep the poisoned query in its own batch
            max_queue: 64,
            batch_timeout: Duration::ZERO,
        },
    );
    let err = server
        .predict(RatingQuery { user: 666, item: 0 })
        .expect_err("poisoned query must fail");
    assert!(matches!(err, ServeError::WorkerLost), "got {err}");
    assert_eq!(server.stats().worker_panics, 1);

    // The worker survives the panic and keeps serving.
    let pred = server
        .predict(RatingQuery { user: 1, item: 2 })
        .expect("worker must survive a panicked batch");
    assert_eq!(pred.rating, 3.0);
    server.shutdown();
}

#[test]
fn batches_coalesce_up_to_max_batch() {
    let predictor = Arc::new(TestPredictor::new(Duration::from_millis(10), None));
    let server = Server::start(
        predictor.clone(),
        ServerConfig {
            workers: 1,
            max_batch: 8,
            max_queue: 1024,
            batch_timeout: Duration::from_millis(20),
        },
    );
    // With one slow worker, 32 queued queries must drain in far fewer
    // predictor calls than queries.
    let handles: Vec<_> = (0..32)
        .map(|k| {
            server
                .submit(RatingQuery { user: k, item: 1 })
                .expect("accepted")
        })
        .collect();
    for h in handles {
        h.wait().expect("answered");
    }
    let calls = predictor.calls.load(Ordering::SeqCst);
    assert!(
        calls < 32,
        "expected micro-batching to coalesce: {calls} calls for 32 queries"
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_see_consistent_results() {
    let server = Arc::new(Server::start(
        Arc::new(TestPredictor::new(Duration::from_micros(200), None)),
        ServerConfig {
            workers: 4,
            max_batch: 8,
            max_queue: 4096,
            batch_timeout: Duration::from_micros(500),
        },
    ));
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let server = server.clone();
            std::thread::spawn(move || {
                for k in 0..50usize {
                    let q = RatingQuery {
                        user: c * 100 + k,
                        item: k,
                    };
                    let pred = server.predict(q).expect("served");
                    assert_eq!(pred.rating, (q.user + q.item) as f32);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(server.stats().completed, 400);
}
