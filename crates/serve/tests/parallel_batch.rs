//! Thread-count invariance of the frozen model's batched forward: the
//! parallel per-context encode fan-out must produce the same bits as a
//! single-threaded run, and stay bit-identical to the one-context
//! `forward_nograd` path it batches over.

use hire_core::{HireConfig, HireModel};
use hire_data::{test_context_with_ratio, Dataset, PredictionContext};
use hire_graph::{NeighborhoodSampler, Rating};
use hire_par::{with_pool, ThreadPool};
use hire_serve::FrozenModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn dataset() -> Dataset {
    hire_data::SyntheticConfig::movielens_like()
        .scaled(40, 35, (8, 15))
        .generate(42)
}

fn contexts(dataset: &Dataset, count: usize, n: usize, m: usize) -> Vec<PredictionContext> {
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(7);
    (0..count)
        .map(|k| {
            let seed = dataset.ratings[k * 3 % dataset.ratings.len()];
            test_context_with_ratio(
                &graph,
                &NeighborhoodSampler,
                &[Rating::new(seed.user, seed.item, seed.value)],
                n,
                m,
                0.3,
                &mut rng,
            )
            .expect("test context")
        })
        .collect()
}

#[test]
fn batched_forward_is_thread_invariant_and_matches_single() {
    let dataset = dataset();
    let mut rng = StdRng::seed_from_u64(1234);
    let model = HireModel::new(
        &dataset,
        &HireConfig::fast().with_context_size(9, 7),
        &mut rng,
    );
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let ctxs = contexts(&dataset, 7, 9, 7);
    let refs: Vec<&PredictionContext> = ctxs.iter().collect();

    let baseline = with_pool(&Arc::new(ThreadPool::new(1)), || {
        frozen.forward_nograd_batch(&refs, &dataset).expect("batch")
    });
    assert_eq!(baseline.len(), ctxs.len());

    // Each batch entry must equal the one-context path bit-for-bit.
    for (k, ctx) in ctxs.iter().enumerate() {
        let single = frozen.forward_nograd(ctx, &dataset).expect("single");
        assert_eq!(single.dims(), baseline[k].dims());
        for (x, y) in single.as_slice().iter().zip(baseline[k].as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "ctx {k}: batch deviates from single"
            );
        }
    }

    for threads in [2, 4, 7] {
        let got = with_pool(&Arc::new(ThreadPool::new(threads)), || {
            frozen.forward_nograd_batch(&refs, &dataset).expect("batch")
        });
        for (k, (a, b)) in got.iter().zip(&baseline).enumerate() {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "ctx {k}: bits differ at {threads} threads"
                );
            }
        }
    }
}
