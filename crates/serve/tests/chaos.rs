//! Chaos tests: the serving stack under deterministic fault injection.
//!
//! The invariants, checked across fixed seeds and fault mixes:
//!
//! 1. Every accepted query gets **exactly one typed reply** — success or a
//!    typed [`ServeError`] — within a generous bound. No hangs, ever.
//! 2. No injected panic escapes the stack.
//! 3. Degraded answers are tagged with the tier that produced them and
//!    stay inside the dataset's rating range.
//! 4. Checkpoint corruption surfaces as a typed error, never a panic.

use hire_chaos::{sites, FaultKind, FaultPlan};
use hire_ckpt::{fingerprint, GuardSnapshot, OptimizerSnapshot, TrainSnapshot};
use hire_core::{HireConfig, HireModel};
use hire_data::Dataset;
use hire_error::HireError;
use hire_nn::Module;
use hire_serve::{
    BreakerConfig, BreakerState, EngineConfig, FrozenModel, Predictor, RatingQuery,
    ResilienceConfig, ServeEngine, ServeError, ServedBy, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const USERS: usize = 40;
const ITEMS: usize = 35;

fn dataset() -> Dataset {
    hire_data::SyntheticConfig::movielens_like()
        .scaled(USERS, ITEMS, (8, 15))
        .generate(21)
}

fn build_engine(
    resilience: ResilienceConfig,
    faults: Option<Arc<FaultPlan>>,
) -> (ServeEngine, Arc<Dataset>) {
    let dataset = Arc::new(dataset());
    let config = HireConfig::fast().with_blocks(1).with_context_size(8, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let engine_config = EngineConfig {
        cache_capacity: 64,
        ..EngineConfig::from_model_config(&config)
    };
    let mut engine =
        ServeEngine::new(frozen, dataset.clone(), engine_config).with_resilience(resilience);
    if let Some(plan) = faults {
        engine = engine.with_faults(plan);
    }
    (engine, dataset)
}

/// A breaker that trips fast and probes immediately — keeps chaos tests
/// deterministic and quick.
fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        failure_threshold: 0.5,
        min_samples: 4,
        cooldown: Duration::ZERO,
        half_open_trials: 1,
    }
}

fn queries(n: usize) -> Vec<RatingQuery> {
    (0..n)
        .map(|k| RatingQuery {
            user: (k * 7) % USERS,
            item: (k * 11) % ITEMS,
        })
        .collect()
}

#[test]
fn every_accepted_query_gets_exactly_one_typed_reply_under_mixed_chaos() {
    for seed in [7u64, 1234, 0xC0FFEE] {
        let plan = Arc::new(FaultPlan::mixed(seed, 0.25));
        let (engine, _) = build_engine(ResilienceConfig::default(), Some(plan.clone()));
        let server = Server::start_with_faults(
            Arc::new(engine),
            ServerConfig {
                workers: 2,
                max_batch: 4,
                max_queue: 256,
                batch_timeout: Duration::from_millis(1),
            },
            Some(plan.clone()),
        );
        let mut accepted = Vec::new();
        for (k, q) in queries(48).into_iter().enumerate() {
            // A third of the traffic carries a deadline budget; some of
            // those will legitimately expire under injected delays.
            let budget = (k % 3 == 0).then(|| Duration::from_millis(40));
            match server.submit_with_deadline(q, budget) {
                Ok(h) => accepted.push(h),
                Err(ServeError::Overloaded { .. }) => {}
                Err(other) => panic!("seed {seed}: unexpected submit error: {other}"),
            }
        }
        let n_accepted = accepted.len() as u64;
        for (k, h) in accepted.into_iter().enumerate() {
            // The generous bound is the hang detector: every accepted
            // query must resolve to SOMETHING typed well within it.
            match h.recv_timeout(Duration::from_secs(30)) {
                Ok(pred) => {
                    assert!(
                        (0.0..=5.0).contains(&pred.rating),
                        "seed {seed}, query {k}: rating {} out of range",
                        pred.rating
                    );
                }
                Err(ServeError::DeadlineExceeded)
                | Err(ServeError::WorkerLost)
                | Err(ServeError::CircuitOpen)
                | Err(ServeError::Injected { .. })
                | Err(ServeError::Model(_)) => {}
                Err(other) => panic!("seed {seed}, query {k}: unexpected error: {other}"),
            }
        }
        server.shutdown();
        let stats = server.stats();
        assert_eq!(
            stats.completed, n_accepted,
            "seed {seed}: every accepted query must be answered exactly once"
        );
        assert!(
            plan.total_injected() > 0,
            "seed {seed}: the mixed plan must actually inject faults"
        );
    }
}

#[test]
fn chaos_schedule_replays_identically_per_seed() {
    let run = |seed: u64| {
        let plan = Arc::new(FaultPlan::mixed(seed, 0.3));
        let (engine, _) = build_engine(
            ResilienceConfig {
                breaker: Some(fast_breaker()),
                ..ResilienceConfig::default()
            },
            Some(plan.clone()),
        );
        // Single-threaded direct engine use: arrival order is fixed, so
        // the full outcome sequence must replay bit-for-bit.
        let outcomes: Vec<_> = queries(32)
            .iter()
            .map(|q| {
                engine
                    .predict_batch_tagged(std::slice::from_ref(q), None)
                    .map(|a| (a[0].rating.to_bits(), a[0].served_by))
                    .map_err(|e| e.to_string())
            })
            .collect();
        (outcomes, plan.total_injected())
    };
    assert_eq!(run(7), run(7), "same seed must replay the same schedule");
}

#[test]
fn model_panic_storm_degrades_to_fallback_and_opens_breaker() {
    let plan = Arc::new(FaultPlan::new(3).with_fault(sites::ENGINE_FORWARD, FaultKind::Panic, 1.0));
    let (engine, dataset) = build_engine(
        ResilienceConfig {
            // Long cooldown: once open, the breaker must visibly shed load
            // instead of immediately probing half-open.
            breaker: Some(BreakerConfig {
                cooldown: Duration::from_secs(3600),
                ..fast_breaker()
            }),
            ..ResilienceConfig::default()
        },
        Some(plan),
    );
    let qs = queries(24);
    // A storm of independent requests (not one coalesced batch): each call
    // is one model attempt group, so breaker outcomes accumulate.
    let answers: Vec<_> = qs
        .iter()
        .map(|q| {
            engine
                .predict_batch_tagged(std::slice::from_ref(q), None)
                .expect("fallback must answer despite a panicking model")
                .remove(0)
        })
        .collect();
    assert_eq!(answers.len(), qs.len());
    let (lo, hi) = (dataset.min_rating, dataset.max_rating());
    for (k, a) in answers.iter().enumerate() {
        assert_eq!(
            a.served_by,
            ServedBy::Fallback,
            "query {k}: a always-panicking model can only be served degraded"
        );
        assert!(
            (lo..=hi).contains(&a.rating),
            "query {k}: degraded rating {} outside [{lo}, {hi}]",
            a.rating
        );
    }
    let tiers = engine.tier_stats();
    assert_eq!(tiers.model, 0);
    assert_eq!(tiers.fallback, qs.len() as u64);
    assert!(
        tiers.failure_degraded + tiers.breaker_degraded == qs.len() as u64,
        "every degradation must be attributed: {tiers:?}"
    );
    let breaker = engine.breaker_stats().expect("breaker configured");
    assert!(
        breaker.opened >= 1,
        "persistent panics must trip the breaker"
    );
    assert!(
        engine.tier_stats().breaker_degraded > 0,
        "after tripping, the breaker must shed model attempts"
    );
}

#[test]
fn breaker_recovers_once_faults_clear() {
    // Rate-1.0 faults on the first arrivals only is not expressible with a
    // stateless schedule, so flip the plan off by swapping engines: same
    // breaker object isn't shared, so instead drive recovery through the
    // half-open probe path with a plan that stops firing (rate drawn per
    // arrival; use Error faults and a breaker with zero cooldown, then
    // verify Closed is reachable again via successful probes).
    let plan = Arc::new(FaultPlan::new(5).with_fault(sites::ENGINE_FORWARD, FaultKind::Error, 0.9));
    let (engine, _) = build_engine(
        ResilienceConfig {
            breaker: Some(fast_breaker()),
            retry_attempts: 1,
            ..ResilienceConfig::default()
        },
        Some(plan),
    );
    // Hammer until the breaker has opened at least once.
    for q in queries(64) {
        let _ = engine.predict_batch_tagged(&[q], None);
    }
    let stats = engine.breaker_stats().expect("breaker configured");
    assert!(stats.opened >= 1, "90% error rate must trip the breaker");
    // With zero cooldown, every post-open batch admits a half-open probe;
    // at a 10% success rate the probe eventually lands, closing the
    // breaker — proven by the transition counters.
    assert!(
        stats.half_opened >= 1,
        "zero-cooldown breaker must reach half-open: {stats:?}"
    );
    // The schedule at seed 5 contains successful draws; the breaker must
    // have closed at least once (and possibly re-opened after).
    assert!(
        stats.closed >= 1,
        "a successful probe must close the breaker: {stats:?}"
    );
    assert!(
        matches!(
            engine.breaker_state().unwrap(),
            BreakerState::Closed | BreakerState::Open | BreakerState::HalfOpen
        ),
        "state accessor must stay callable"
    );
}

#[test]
fn wrong_shape_output_is_caught_and_degraded_never_misassigned() {
    let plan =
        Arc::new(FaultPlan::new(11).with_fault(sites::ENGINE_FORWARD, FaultKind::WrongShape, 1.0));
    let (engine, _) = build_engine(
        ResilienceConfig {
            breaker: None,
            ..ResilienceConfig::default()
        },
        Some(plan),
    );
    let qs = queries(12);
    let answers = engine.predict_batch_tagged(&qs, None).expect("degraded");
    assert!(
        answers.iter().all(|a| a.served_by == ServedBy::Fallback),
        "truncated model output must never be zip-assigned to queries"
    );

    // Without fallback, the same fault is a typed error naming the shape
    // mismatch — not a panic, not a silent truncation.
    let plan =
        Arc::new(FaultPlan::new(11).with_fault(sites::ENGINE_FORWARD, FaultKind::WrongShape, 1.0));
    let (strict, _) = build_engine(ResilienceConfig::disabled(), Some(plan));
    let err = strict
        .predict_batch(&queries(4))
        .expect_err("strict engine must surface the shape mismatch");
    assert!(
        err.to_string().contains("predictions for"),
        "unexpected error: {err}"
    );
}

#[test]
fn injected_resolve_failures_degrade_but_range_violations_still_surface() {
    let plan =
        Arc::new(FaultPlan::new(13).with_fault(sites::ENGINE_RESOLVE, FaultKind::Error, 1.0));
    let (engine, _) = build_engine(ResilienceConfig::default(), Some(plan));
    let answers = engine
        .predict_batch_tagged(&queries(8), None)
        .expect("resolve faults must degrade, not fail");
    assert!(answers.iter().all(|a| a.served_by == ServedBy::Fallback));
    // An out-of-range query is a caller bug: the ladder must NOT swallow
    // it into a fallback answer.
    let err = engine
        .predict_batch(&[RatingQuery {
            user: USERS + 1,
            item: 0,
        }])
        .expect_err("range violation must stay a hard error");
    assert!(matches!(err, ServeError::Model(_)), "got {err}");
}

#[test]
fn corrupted_snapshot_bytes_surface_typed_error_never_panic() {
    let dataset = dataset();
    let config = HireConfig::fast().with_blocks(1).with_context_size(8, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let params: Vec<_> = model.parameters().iter().map(|p| p.value()).collect();
    let snapshot = TrainSnapshot {
        completed_steps: 1,
        config_fingerprint: fingerprint([1]),
        params: params.clone(),
        rollback_step: 0,
        rollback_params: Vec::new(),
        optimizer: OptimizerSnapshot {
            lamb_m: params.iter().map(|_| None).collect(),
            lamb_v: params.iter().map(|_| None).collect(),
            lamb_t: 0,
            slow_weights: Vec::new(),
            lookahead_steps: 0,
        },
        guard: GuardSnapshot {
            ema: None,
            healthy_steps: 0,
            suspicious_streak: 0,
            lr_scale: 1.0,
            recoveries: 0,
        },
        rng_words: Vec::new(),
    };
    let clean = snapshot.encode();
    // Control: the clean bytes load.
    FrozenModel::from_snapshot_bytes(&clean, "chaos", &dataset, &config)
        .expect("clean snapshot bytes must load");

    // Chaos: one deterministic bit flip per seed must surface as a typed
    // corruption error (the container is CRC-checked), never a panic.
    for seed in [7u64, 1234, 0xC0FFEE] {
        let plan = FaultPlan::new(seed).with_fault(sites::CKPT_DECODE, FaultKind::CorruptByte, 1.0);
        let mut bytes = clean.clone();
        assert!(plan.corrupt(sites::CKPT_DECODE, &mut bytes));
        let err = FrozenModel::from_snapshot_bytes(&bytes, "chaos", &dataset, &config)
            .expect_err("corrupted bytes must fail");
        assert!(
            matches!(err, HireError::CorruptCheckpoint { .. }),
            "seed {seed}: expected CorruptCheckpoint, got {err}"
        );
    }
}

#[test]
fn healthy_engine_with_chaos_disabled_serves_model_tier_only() {
    // The resilience layer must be invisible on the healthy path: no
    // faults, no deadline pressure → every answer comes from the model
    // (or its exact memo), never the fallback.
    let (engine, _) = build_engine(ResilienceConfig::default(), None);
    let qs = queries(16);
    let first = engine.predict_batch_tagged(&qs, None).expect("served");
    let second = engine.predict_batch_tagged(&qs, None).expect("served");
    assert!(first.iter().all(|a| a.served_by == ServedBy::Model));
    assert!(
        second.iter().all(|a| a.served_by == ServedBy::Cache),
        "repeat queries must be served from the exact memo"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.rating, b.rating, "memo must be bit-exact");
    }
    let tiers = engine.tier_stats();
    assert_eq!(tiers.fallback, 0);
    assert_eq!(engine.breaker_stats().unwrap().failures, 0);
}
