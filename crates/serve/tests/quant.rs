//! Quantized-tier numerics (DESIGN.md §13).
//!
//! 1. **Error bound** — across a config zoo and randomly re-seeded
//!    weights, every [`QuantizedModel`] prediction stays within the
//!    documented [`QuantizedModel::prediction_bound`] of the f32
//!    [`FrozenModel`] oracle, for both int8 and f16.
//! 2. **Determinism** — the dequantizing forward is bit-exact across
//!    thread counts (1 vs 4), so the quantized tier replays like every
//!    other tier.

use hire_core::{HireConfig, HireModel};
use hire_data::{test_context_with_ratio, Dataset, PredictionContext};
use hire_graph::{NeighborhoodSampler, Rating};
use hire_par::{with_pool, ThreadPool};
use hire_serve::{FrozenModel, QuantizedModel};
use hire_tensor::QuantMode;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn dataset(users: usize, items: usize, seed: u64) -> Dataset {
    hire_data::SyntheticConfig::movielens_like()
        .scaled(users, items, (8, 15))
        .generate(seed)
}

/// A deterministic context for the pair `(user, item)`.
fn context(dataset: &Dataset, config: &HireConfig, user: usize, item: usize) -> PredictionContext {
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(0xC0 ^ (user as u64) << 8 ^ item as u64);
    let placeholder = Rating::new(user, item, dataset.min_rating);
    test_context_with_ratio(
        &graph,
        &NeighborhoodSampler,
        &[placeholder],
        config.context_users,
        config.context_items,
        config.input_ratio,
        &mut rng,
    )
    .expect("context")
}

/// Worst per-element prediction error of the quantized forward against the
/// f32 oracle over a handful of contexts.
fn worst_error(
    dataset: &Dataset,
    config: &HireConfig,
    frozen: &FrozenModel,
    quant: &QuantizedModel,
) -> f32 {
    let mut worst = 0.0f32;
    for (user, item) in [(0, 0), (3, 7), (11, 2)] {
        let ctx = context(dataset, config, user, item);
        let oracle = frozen.forward_nograd(&ctx, dataset).expect("f32 forward");
        let approx = quant.forward_nograd(&ctx, dataset).expect("quant forward");
        assert_eq!(oracle.dims(), approx.dims());
        for (a, b) in oracle.as_slice().iter().zip(approx.as_slice()) {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

/// The config zoo: block depth, attention layout, and context budget all
/// vary; every member must respect the documented bound in both modes.
#[test]
fn prediction_error_stays_within_documented_bound_across_config_zoo() {
    let zoo: Vec<(&str, HireConfig)> = vec![
        (
            "fast-1block",
            HireConfig::fast().with_blocks(1).with_context_size(8, 8),
        ),
        (
            "fast-2block",
            HireConfig::fast().with_blocks(2).with_context_size(8, 8),
        ),
        (
            "wide-context",
            HireConfig::fast().with_blocks(1).with_context_size(6, 12),
        ),
    ];
    let dataset = Arc::new(dataset(30, 26, 9));
    for (name, config) in &zoo {
        let mut rng = StdRng::seed_from_u64(17);
        let model = HireModel::new(&dataset, config, &mut rng);
        let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
        for mode in [QuantMode::Int8, QuantMode::F16] {
            let quant = QuantizedModel::from_frozen(&frozen, mode);
            assert!(
                quant.max_weight_err() > 0.0,
                "{name}/{}: quantization must be lossy on random weights",
                mode.label()
            );
            let worst = worst_error(&dataset, config, &frozen, &quant);
            assert!(
                worst <= quant.prediction_bound(),
                "{name}/{}: worst prediction error {worst} exceeds bound {}",
                mode.label(),
                quant.prediction_bound()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random weights (fresh init seed) and random query pairs: the bound
    /// must hold for arbitrary weight draws, not just the zoo's.
    #[test]
    fn prediction_error_bound_holds_for_random_weights(
        weight_seed in 0u64..1024,
        mode_pick in 0u32..2,
    ) {
        let config = HireConfig::fast().with_blocks(1).with_context_size(8, 8);
        let dataset = Arc::new(dataset(24, 20, 5));
        let mut rng = StdRng::seed_from_u64(weight_seed);
        let model = HireModel::new(&dataset, &config, &mut rng);
        let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
        let mode = if mode_pick == 1 {
            QuantMode::F16
        } else {
            QuantMode::Int8
        };
        let quant = QuantizedModel::from_frozen(&frozen, mode);
        let worst = worst_error(&dataset, &config, &frozen, &quant);
        prop_assert!(
            worst <= quant.prediction_bound(),
            "seed {weight_seed}/{}: worst {worst} > bound {}",
            mode.label(),
            quant.prediction_bound()
        );
    }
}

/// The dequantizing kernels accumulate ascending-k per output element, so
/// the quantized forward must be bit-identical at any thread count — the
/// same invariant the f32 serving path guarantees (`HIRE_THREADS=1` vs
/// `=4` in CI re-checks this out of process).
#[test]
fn quantized_forward_is_bit_exact_across_thread_counts() {
    let config = HireConfig::fast().with_blocks(2).with_context_size(8, 8);
    let dataset = Arc::new(dataset(30, 26, 9));
    let mut rng = StdRng::seed_from_u64(23);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    for mode in [QuantMode::Int8, QuantMode::F16] {
        let quant = QuantizedModel::from_frozen(&frozen, mode);
        let ctx = context(&dataset, &config, 2, 5);
        let single = Arc::new(ThreadPool::new(1));
        let quad = Arc::new(ThreadPool::new(4));
        let a = with_pool(&single, || quant.forward_nograd(&ctx, &dataset)).expect("1-thread");
        let b = with_pool(&quad, || quant.forward_nograd(&ctx, &dataset)).expect("4-thread");
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{}: thread count changed a quantized prediction bit",
                mode.label()
            );
        }
    }
}
