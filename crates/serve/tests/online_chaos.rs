//! Chaos tests for train-while-serving. The four acceptance invariants:
//!
//! 1. A panicking or diverging trainer **never** affects serving: the
//!    incumbent's answers stay bit-exact versus a control engine that saw
//!    the same traffic but ran no trainer.
//! 2. A swap concurrent with in-flight batches yields answers bit-equal
//!    to a pure run of whichever version each batch started on — and no
//!    query is ever dropped across a swap.
//! 3. A regressing candidate is never promoted (chaos on the eval/swap
//!    path rejects or fails typed, it does not promote by accident).
//! 4. The whole pipeline replays identically per seed.

use hire_chaos::{sites, FaultKind, FaultPlan};
use hire_core::{HireConfig, HireModel};
use hire_data::Dataset;
use hire_graph::Rating;
use hire_serve::{
    EngineConfig, FrozenModel, OnlineConfig, OnlineLoop, Predictor, RatingQuery, RoundOutcome,
    ServeEngine, ServeError, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USERS: usize = 40;
const ITEMS: usize = 35;
const SEEDS: [u64; 3] = [7, 1234, 0xC0FFEE];

fn dataset() -> Arc<Dataset> {
    Arc::new(
        hire_data::SyntheticConfig::movielens_like()
            .scaled(USERS, ITEMS, (8, 15))
            .generate(21),
    )
}

fn model_config() -> HireConfig {
    HireConfig::fast().with_blocks(1).with_context_size(6, 6)
}

fn frozen(dataset: &Dataset, init_seed: u64) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(init_seed);
    let model = HireModel::new(dataset, &model_config(), &mut rng);
    FrozenModel::from_model(&model, dataset).expect("freeze")
}

fn build_engine(dataset: &Arc<Dataset>, faults: Option<Arc<FaultPlan>>) -> Arc<ServeEngine> {
    let engine_config = EngineConfig {
        cache_capacity: 128,
        ..EngineConfig::from_model_config(&model_config())
    };
    let mut engine = ServeEngine::new(frozen(dataset, 4), dataset.clone(), engine_config);
    if let Some(plan) = faults {
        engine = engine.with_faults(plan);
    }
    Arc::new(engine)
}

fn online_config(seed: u64) -> OnlineConfig {
    OnlineConfig {
        min_new_ratings: 10,
        fine_tune_steps: 4,
        batch_size: 2,
        base_lr: 1e-4,
        holdout_every: 4,
        regression_tolerance: 10.0,
        seed,
        ..OnlineConfig::default()
    }
}

fn feed(engine: &ServeEngine, n: usize, offset: usize) {
    for k in 0..n {
        engine
            .insert_rating(Rating::new(
                (offset + k * 3) % USERS,
                (offset + k * 5) % ITEMS,
                ((k % 5) + 1) as f32,
            ))
            .expect("insert");
    }
}

fn queries(n: usize) -> Vec<RatingQuery> {
    (0..n)
        .map(|k| RatingQuery {
            user: (k * 7) % USERS,
            item: (k * 11) % ITEMS,
        })
        .collect()
}

fn serve_bits(engine: &ServeEngine, qs: &[RatingQuery]) -> Vec<u32> {
    engine
        .predict_batch_tagged(qs, None)
        .expect("serve")
        .iter()
        .map(|a| a.rating.to_bits())
        .collect()
}

/// Invariant 1: trainer chaos (panic, typed error) at 100% never touches
/// serving. A control engine receives the identical inserts but runs no
/// trainer; after the faulted round, both engines must answer bit-exactly
/// alike, on the same version.
#[test]
fn trainer_panic_and_error_never_affect_serving() {
    for seed in SEEDS {
        for kind in [FaultKind::Panic, FaultKind::Error] {
            let dataset = dataset();
            let chaotic = build_engine(&dataset, None);
            let control = build_engine(&dataset, None);
            let plan = Arc::new(FaultPlan::new(seed).with_fault(sites::TRAINER_STEP, kind, 1.0));
            let online = OnlineLoop::new(chaotic.clone(), online_config(seed)).with_faults(plan);
            feed(&chaotic, 20, 0);
            feed(&control, 20, 0);
            let outcome = online.run_round();
            assert!(
                matches!(outcome, RoundOutcome::TrainerCrashed),
                "seed {seed} {kind:?}: got {outcome:?}"
            );
            assert_eq!(chaotic.version(), 1, "crashed trainer must not swap");
            let qs = queries(16);
            assert_eq!(
                serve_bits(&chaotic, &qs),
                serve_bits(&control, &qs),
                "seed {seed} {kind:?}: trainer crash leaked into serving"
            );
            // The pending ratings were retained: a later loop without
            // faults can still train on them.
            let retry = OnlineLoop::new(chaotic.clone(), online_config(seed));
            let outcome = retry.run_round();
            assert!(
                matches!(
                    outcome,
                    RoundOutcome::Promoted { .. } | RoundOutcome::Rejected { .. }
                ),
                "seed {seed} {kind:?}: retained ratings must train on retry: {outcome:?}"
            );
        }
    }
}

/// Invariant 1 (divergence flavor): a guard-aborting fine-tune reports
/// `TrainerDiverged` and leaves serving bit-exact.
#[test]
fn trainer_divergence_is_contained() {
    let dataset = dataset();
    let chaotic = build_engine(&dataset, None);
    let control = build_engine(&dataset, None);
    let online = OnlineLoop::new(
        chaotic.clone(),
        OnlineConfig {
            base_lr: 1e6, // guaranteed loss explosion
            fine_tune_steps: 40,
            // A real gate: the wrecked candidate must not slip through on
            // the generous machinery-test tolerance.
            regression_tolerance: 0.2,
            ..online_config(7)
        },
    );
    feed(&chaotic, 20, 0);
    feed(&control, 20, 0);
    let outcome = online.run_round();
    assert!(
        matches!(
            outcome,
            RoundOutcome::TrainerDiverged | RoundOutcome::Rejected { .. }
        ),
        "an exploding LR must abort or reject, got {outcome:?}"
    );
    assert_eq!(chaotic.version(), 1);
    let qs = queries(16);
    assert_eq!(serve_bits(&chaotic, &qs), serve_bits(&control, &qs));
}

/// Chaos on the shadow-eval site: the candidate is discarded without a
/// verdict, serving untouched, and the ratings are retained.
#[test]
fn shadow_eval_faults_discard_the_candidate() {
    for seed in SEEDS {
        for kind in [FaultKind::Panic, FaultKind::Error] {
            let dataset = dataset();
            let chaotic = build_engine(&dataset, None);
            let control = build_engine(&dataset, None);
            let plan = Arc::new(FaultPlan::new(seed).with_fault(sites::SHADOW_EVAL, kind, 1.0));
            let online = OnlineLoop::new(chaotic.clone(), online_config(seed)).with_faults(plan);
            feed(&chaotic, 20, 1);
            feed(&control, 20, 1);
            let outcome = online.run_round();
            assert!(
                matches!(outcome, RoundOutcome::EvalFailed),
                "seed {seed} {kind:?}: got {outcome:?}"
            );
            assert_eq!(chaotic.version(), 1, "no verdict, no swap");
            let qs = queries(12);
            assert_eq!(serve_bits(&chaotic, &qs), serve_bits(&control, &qs));
        }
    }
}

/// Chaos on the swap site: the swap fails typed, before any state is
/// touched — the incumbent keeps serving and a later clean swap works.
#[test]
fn swap_faults_abandon_the_swap_typed() {
    for seed in SEEDS {
        let dataset = dataset();
        let plan =
            Arc::new(FaultPlan::new(seed).with_fault(sites::ONLINE_SWAP, FaultKind::Error, 1.0));
        let engine = build_engine(&dataset, Some(plan));
        let control = build_engine(&dataset, None);

        // Direct install: typed injected error.
        let err = engine
            .install_model(frozen(&dataset, 99))
            .expect_err("swap fault must surface");
        assert!(
            matches!(err, ServeError::Injected { .. }),
            "seed {seed}: got {err}"
        );
        assert_eq!(engine.version(), 1);
        let qs = queries(12);
        assert_eq!(serve_bits(&engine, &qs), serve_bits(&control, &qs));

        // Through the loop: the round reports SwapFailed and retains the
        // ratings for the next round.
        let online = OnlineLoop::new(engine.clone(), online_config(seed));
        feed(&engine, 20, 2);
        feed(&control, 20, 2);
        let outcome = online.run_round();
        assert!(
            matches!(outcome, RoundOutcome::SwapFailed),
            "seed {seed}: got {outcome:?}"
        );
        assert_eq!(engine.version(), 1);
        let qs = queries(12);
        assert_eq!(serve_bits(&engine, &qs), serve_bits(&control, &qs));
    }
}

/// An incompatible candidate (different architecture) is refused by the
/// swap itself — a misbehaving trainer cannot install a model the serving
/// path cannot run.
#[test]
fn incompatible_candidate_is_refused_by_the_swap() {
    let dataset = dataset();
    let engine = build_engine(&dataset, None);
    let mut rng = StdRng::seed_from_u64(5);
    let small = HireConfig::fast().with_blocks(1).with_context_size(4, 4);
    let small = HireConfig {
        attr_dim: small.attr_dim / 2,
        ..small
    };
    let other = HireModel::new(&dataset, &small, &mut rng);
    let other = FrozenModel::from_model(&other, &dataset).expect("freeze");
    let err = engine
        .install_model(other)
        .expect_err("incompatible model must be refused");
    assert!(err.to_string().contains("incompatible"), "got {err}");
    assert_eq!(engine.version(), 1);
}

/// Invariant 2: hot swaps racing in-flight batches. A swapper thread
/// alternates two models while reader threads hammer queries; every
/// answer must be bit-equal to a pure single-version engine of the
/// version stamped on it (odd versions = model A, even = model B).
#[test]
fn swap_racing_inflight_batches_is_bit_exact_per_version() {
    let dataset = dataset();
    let model_a = frozen(&dataset, 4);
    let model_b = frozen(&dataset, 55);
    let engine_config = || EngineConfig {
        cache_capacity: 128,
        ..EngineConfig::from_model_config(&model_config())
    };
    // Pure reference engines, one per model, warmed over the same queries.
    let ref_a = ServeEngine::new(model_a.clone(), dataset.clone(), engine_config());
    let ref_b = ServeEngine::new(model_b.clone(), dataset.clone(), engine_config());
    let qs = queries(24);
    let bits_a = serve_bits(&ref_a, &qs);
    let bits_b = serve_bits(&ref_b, &qs);
    assert_ne!(bits_a, bits_b, "distinct models must answer differently");

    let live = Arc::new(ServeEngine::new(
        model_a.clone(),
        dataset.clone(),
        engine_config(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let swapper = {
        let live = live.clone();
        let stop = stop.clone();
        let (a, b) = (model_a.clone(), model_b.clone());
        std::thread::spawn(move || {
            // Strict alternation: v1=A, v2=B, v3=A, ... so version parity
            // identifies the weights.
            let mut next_is_b = true;
            while !stop.load(Ordering::Relaxed) {
                let model = if next_is_b { b.clone() } else { a.clone() };
                live.install_model(model).expect("swap");
                next_is_b = !next_is_b;
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let live = live.clone();
            let qs = qs.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..30 {
                    let answers = live.predict_batch_tagged(&qs, None).expect("serve");
                    // A batch pins one slot: every answer shares a version.
                    let version = answers[0].version;
                    assert!(answers.iter().all(|a| a.version == version));
                    seen.push((
                        version,
                        answers
                            .iter()
                            .map(|a| a.rating.to_bits())
                            .collect::<Vec<_>>(),
                    ));
                }
                seen
            })
        })
        .collect();
    let mut observed_versions = std::collections::BTreeSet::new();
    for reader in readers {
        for (version, bits) in reader.join().expect("reader thread") {
            observed_versions.insert(version);
            let expected = if version % 2 == 1 { &bits_a } else { &bits_b };
            assert_eq!(
                &bits, expected,
                "version {version}: answers must be bit-exact for the pinned model"
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    swapper.join().expect("swapper thread");
    assert!(
        observed_versions.len() >= 2,
        "the race must actually observe multiple versions: {observed_versions:?}"
    );
}

/// Invariant 2, server flavor: queries submitted through the batching
/// worker pool while swaps land are never dropped — every accepted query
/// gets exactly one reply.
#[test]
fn no_query_is_dropped_across_swaps() {
    let dataset = dataset();
    let engine = build_engine(&dataset, None);
    let model_b = frozen(&dataset, 55);
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            workers: 2,
            max_batch: 4,
            max_queue: 512,
            batch_timeout: Duration::from_millis(1),
        },
    );
    let swapper = {
        let engine = engine.clone();
        std::thread::spawn(move || {
            for _ in 0..10 {
                engine.install_model(model_b.clone()).expect("swap");
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };
    let mut accepted = Vec::new();
    for q in (0..96).map(|k| RatingQuery {
        user: (k * 7) % USERS,
        item: (k * 11) % ITEMS,
    }) {
        match server.submit(q) {
            Ok(h) => accepted.push(h),
            Err(ServeError::Overloaded { .. }) => {}
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    let n_accepted = accepted.len() as u64;
    for h in accepted {
        let pred = h
            .recv_timeout(Duration::from_secs(30))
            .expect("every query must be answered across swaps");
        assert!(pred.version >= 1, "answers must carry their version");
    }
    swapper.join().expect("swapper");
    server.shutdown();
    assert_eq!(
        server.stats().completed,
        n_accepted,
        "every accepted query must complete exactly once across swaps"
    );
}

/// Invariant 4: the full pipeline — inserts, chaotic rounds (faults on
/// trainer, eval and swap sites), interleaved serving — replays
/// bit-identically under one seed.
#[test]
fn online_pipeline_replays_identically_per_seed() {
    let scenario = |seed: u64| {
        let dataset = dataset();
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_fault(sites::TRAINER_STEP, FaultKind::Error, 0.4)
                .with_fault(sites::SHADOW_EVAL, FaultKind::Error, 0.3)
                .with_fault(sites::ONLINE_SWAP, FaultKind::Error, 0.3),
        );
        let engine = build_engine(&dataset, Some(plan.clone()));
        let online = OnlineLoop::new(engine.clone(), online_config(seed)).with_faults(plan.clone());
        let mut serve_log: Vec<(u64, Vec<u32>)> = Vec::new();
        for phase in 0..4 {
            feed(&engine, 12, phase * 12);
            online.run_round();
            let qs = queries(8);
            serve_log.push((engine.version(), serve_bits(&engine, &qs)));
        }
        (online.history(), serve_log, plan.total_injected())
    };
    for seed in SEEDS {
        assert_eq!(
            scenario(seed),
            scenario(seed),
            "seed {seed}: the online pipeline must replay bit-identically"
        );
    }
}
