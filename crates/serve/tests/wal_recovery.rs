//! Crash-recovery acceptance tests for the durable serving loop
//! (DESIGN.md §15). The load-bearing property, exercised at every kill
//! point of a live scenario:
//!
//! > **No acknowledged write is lost, and a recovered engine answers
//! > bit-identically to one that never crashed.**
//!
//! "Kill point" here means a byte-level copy of the WAL directory taken
//! immediately after an acknowledged operation — exactly what a
//! power-cut at that instant would leave on disk (the log runs at
//! `Strict` durability in these tests, so acked ⇒ fsynced). Each copy is
//! recovered independently and compared against the state the live
//! engine had at that point.

use hire_chaos::{sites, FaultKind, FaultPlan};
use hire_core::{HireConfig, HireModel};
use hire_data::Dataset;
use hire_graph::Rating;
use hire_serve::{
    recover, write_snapshot, EngineConfig, FrozenModel, OnlineConfig, OnlineLoop, Predictor,
    RatingQuery, RoundOutcome, ServeEngine,
};
use hire_wal::{Durability, Wal, WalOptions, SEGMENT_EXT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const USERS: usize = 40;
const ITEMS: usize = 35;

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hire-walrec-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn sub(&self, name: &str) -> PathBuf {
        let dir = self.0.join(name);
        std::fs::create_dir_all(&dir).expect("create sub dir");
        dir
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dataset() -> Arc<Dataset> {
    Arc::new(
        hire_data::SyntheticConfig::movielens_like()
            .scaled(USERS, ITEMS, (8, 15))
            .generate(21),
    )
}

fn model_config() -> HireConfig {
    HireConfig::fast().with_blocks(1).with_context_size(6, 6)
}

fn base_model(dataset: &Dataset) -> FrozenModel {
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(dataset, &model_config(), &mut rng);
    FrozenModel::from_model(&model, dataset).expect("freeze")
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        cache_capacity: 128,
        ..EngineConfig::from_model_config(&model_config())
    }
}

fn strict_opts() -> WalOptions {
    WalOptions {
        durability: Durability::Strict,
        segment_max_bytes: 4 << 20,
        group_window: Duration::ZERO,
    }
}

/// A WAL-attached engine over the dataset's base graph.
fn wal_engine(dataset: &Arc<Dataset>, wal_dir: &Path, opts: WalOptions) -> Arc<ServeEngine> {
    let (wal, recovery) = Wal::open(wal_dir, opts).expect("open wal");
    assert!(recovery.records.is_empty(), "fresh log expected");
    Arc::new(
        ServeEngine::with_shared_graph(
            base_model(dataset),
            dataset.clone(),
            Arc::new(dataset.graph()),
            engine_config(),
        )
        .with_wal(Arc::new(wal)),
    )
}

fn rating(k: usize) -> Rating {
    Rating::new((k * 3) % USERS, (k * 5) % ITEMS, ((k % 5) + 1) as f32)
}

fn probes() -> Vec<RatingQuery> {
    (0..6)
        .map(|k| RatingQuery {
            user: (k * 7) % USERS,
            item: (k * 11) % ITEMS,
        })
        .collect()
}

fn probe_bits(pred: &dyn Predictor) -> Vec<u32> {
    pred.predict_batch(&probes())
        .expect("probe batch")
        .into_iter()
        .map(f32::to_bits)
        .collect()
}

/// Byte-level copy of a (flat) WAL directory — the disk image a crash at
/// this instant would leave behind.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read wal dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

fn recover_from(
    dataset: &Arc<Dataset>,
    wal_dir: &Path,
    online_config: OnlineConfig,
    opts: WalOptions,
) -> hire_serve::Recovered {
    recover(
        base_model(dataset),
        dataset.clone(),
        Arc::new(dataset.graph()),
        engine_config(),
        online_config,
        wal_dir,
        opts,
    )
    .expect("recover")
}

/// Every acked insert survives a crash taken right after its ack, and the
/// recovered engine's answers are bit-identical to the live engine's at
/// that kill point. Also re-checks the final kill point with a garbage
/// tail glued on (a torn in-flight write dies with the crash; the acked
/// prefix must not).
#[test]
fn acked_inserts_survive_every_kill_point_bitwise() {
    let tmp = TempDir::new("killpoints");
    let wal_dir = tmp.sub("wal");
    let dataset = dataset();
    let engine = wal_engine(&dataset, &wal_dir, strict_opts());

    const OPS: usize = 18;
    let mut kill_points = Vec::new(); // (copy dir, acked count, live answer bits)
    for k in 0..OPS {
        engine.insert_rating(rating(k)).expect("acked insert");
        let copy = tmp.path().join(format!("kill-{k:03}"));
        copy_dir(&wal_dir, &copy);
        kill_points.push((copy, k + 1, probe_bits(engine.as_ref())));
    }

    for (copy, acked, live_bits) in &kill_points {
        let recovered = recover_from(&dataset, copy, OnlineConfig::default(), strict_opts());
        let (ratings, _) = recovered.engine.inserted_since(0);
        assert_eq!(ratings.len(), *acked, "acked write lost at kill point");
        for (j, r) in ratings.iter().enumerate() {
            assert_eq!((r.user, r.item), (rating(j).user, rating(j).item));
            assert_eq!(r.value.to_bits(), rating(j).value.to_bits());
        }
        assert_eq!(recovered.engine.version(), 1);
        assert_eq!(
            &probe_bits(recovered.engine.as_ref()),
            live_bits,
            "recovered answers diverge at kill point {acked}"
        );
    }

    // Torn tail: a crash mid-append leaves garbage past the acked frames.
    let (last_copy, acked, live_bits) = kill_points.last().expect("kill points");
    let torn = tmp.path().join("torn");
    copy_dir(last_copy, &torn);
    let seg = std::fs::read_dir(&torn)
        .expect("read torn dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == SEGMENT_EXT))
        .max()
        .expect("segment file");
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&seg)
        .expect("open segment");
    f.write_all(&[0xAB; 7]).expect("garbage tail");
    drop(f);
    let recovered = recover_from(&dataset, &torn, OnlineConfig::default(), strict_opts());
    assert!(recovered.torn_bytes > 0, "tail should need repair");
    let (ratings, _) = recovered.engine.inserted_since(0);
    assert_eq!(ratings.len(), *acked);
    assert_eq!(&probe_bits(recovered.engine.as_ref()), live_bits);
}

/// Promotions and demotions recover with the right version sequence and
/// the right weights: a crash after a promoted round reloads the
/// candidate's checkpointed weights; a crash after a demotion serves the
/// rolled-back weights under the post-demotion version. Answers stay
/// bit-identical to the live engine's throughout.
#[test]
fn model_lineage_recovers_versions_and_weights() {
    let tmp = TempDir::new("lineage");
    let wal_dir = tmp.sub("wal");
    let ckpt_dir = tmp.sub("ckpt");
    let dataset = dataset();
    let engine = wal_engine(&dataset, &wal_dir, strict_opts());
    let online_config = OnlineConfig {
        min_new_ratings: 12,
        fine_tune_steps: 6,
        batch_size: 2,
        base_lr: 1e-4,
        holdout_every: 4,
        regression_tolerance: 10.0, // machinery test, not a quality test
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..OnlineConfig::default()
    };
    let online = OnlineLoop::new(engine.clone(), online_config.clone());

    for k in 0..16 {
        engine.insert_rating(rating(k)).expect("insert");
    }
    let outcome = online.run_round();
    assert!(
        matches!(outcome, RoundOutcome::Promoted { .. }),
        "expected a promotion, got {outcome:?}"
    );
    assert_eq!(engine.version(), 2);

    // Crash after the promotion: the recovered incumbent is the candidate,
    // reloaded from its checkpoint, serving identical bits.
    let after_promote = tmp.path().join("after-promote");
    copy_dir(&wal_dir, &after_promote);
    let recovered = recover_from(
        &dataset,
        &after_promote,
        online_config.clone(),
        strict_opts(),
    );
    assert_eq!(recovered.engine.version(), 2);
    assert_eq!(
        probe_bits(recovered.engine.as_ref()),
        probe_bits(engine.as_ref())
    );

    // Demote (logged), then crash: the rolled-back weights serve under the
    // *new* version on both the live and the recovered engine.
    let demoted_version = engine.demote().expect("demote").expect("history nonempty");
    assert_eq!(demoted_version, 3);
    let after_demote = tmp.path().join("after-demote");
    copy_dir(&wal_dir, &after_demote);
    let recovered = recover_from(&dataset, &after_demote, online_config, strict_opts());
    assert_eq!(recovered.engine.version(), 3);
    assert_eq!(
        probe_bits(recovered.engine.as_ref()),
        probe_bits(engine.as_ref())
    );
}

/// The online loop's routing state — cursor, round, and which arrivals
/// went to the never-trained holdout slice — survives a crash: the
/// recovered loop has the same holdout and keeps routing new arrivals
/// without re-training old ones.
#[test]
fn online_routing_state_recovers() {
    let tmp = TempDir::new("routing");
    let wal_dir = tmp.sub("wal");
    let ckpt_dir = tmp.sub("ckpt");
    let dataset = dataset();
    let engine = wal_engine(&dataset, &wal_dir, strict_opts());
    let online_config = OnlineConfig {
        min_new_ratings: 12,
        fine_tune_steps: 6,
        batch_size: 2,
        base_lr: 1e-4,
        holdout_every: 4,
        regression_tolerance: 10.0,
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..OnlineConfig::default()
    };
    let online = OnlineLoop::new(engine.clone(), online_config.clone());
    for k in 0..16 {
        engine.insert_rating(rating(k)).expect("insert");
    }
    let outcome = online.run_round();
    assert!(
        matches!(
            outcome,
            RoundOutcome::Promoted { .. } | RoundOutcome::Rejected { .. }
        ),
        "round must complete, got {outcome:?}"
    );
    let live_holdout = online.holdout_len();
    assert!(
        live_holdout > 0,
        "cadence should have diverted some ratings"
    );

    let copy = tmp.path().join("crash");
    copy_dir(&wal_dir, &copy);
    let recovered = recover_from(&dataset, &copy, online_config, strict_opts());
    assert_eq!(recovered.online.holdout_len(), live_holdout);

    // The recovered loop keeps going: new arrivals route by cadence, old
    // ones were not re-routed (pending would double-count them otherwise).
    for k in 16..28 {
        recovered.engine.insert_rating(rating(k)).expect("insert");
    }
    let outcome = recovered.online.run_round();
    assert!(
        matches!(
            outcome,
            RoundOutcome::Accumulating { .. }
                | RoundOutcome::Promoted { .. }
                | RoundOutcome::Rejected { .. }
        ),
        "recovered loop must keep functioning, got {outcome:?}"
    );
}

/// `write_snapshot` bounds the log: segments fully covered by the
/// snapshot are deleted, and recovery from snapshot + tail reproduces the
/// full state bit-identically.
#[test]
fn snapshot_truncates_log_and_recovery_uses_it() {
    let tmp = TempDir::new("snapshot");
    let wal_dir = tmp.sub("wal");
    let ckpt_dir = tmp.sub("ckpt");
    let dataset = dataset();
    let opts = WalOptions {
        durability: Durability::Strict,
        segment_max_bytes: 256, // force frequent rotation
        group_window: Duration::ZERO,
    };
    let engine = wal_engine(&dataset, &wal_dir, opts.clone());
    let online_config = OnlineConfig {
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..OnlineConfig::default()
    };
    let online = OnlineLoop::new(engine.clone(), online_config.clone());

    for k in 0..40 {
        engine.insert_rating(rating(k)).expect("insert");
    }
    let wal = engine.wal().expect("wal attached");
    let before = wal.segment_count().expect("count");
    assert!(before > 2, "expected rotation, got {before} segment(s)");

    let covered = write_snapshot(&engine, &online).expect("snapshot");
    assert_eq!(covered, 40, "40 ratings were logged before the snapshot");
    let after = wal.segment_count().expect("count");
    assert!(
        after < before,
        "snapshot should truncate covered segments ({before} -> {after})"
    );

    // More traffic lands in the tail; recovery = snapshot + tail replay.
    for k in 40..50 {
        engine.insert_rating(rating(k)).expect("insert");
    }
    let live_bits = probe_bits(engine.as_ref());
    let copy = tmp.path().join("crash");
    copy_dir(&wal_dir, &copy);
    let recovered = recover_from(&dataset, &copy, online_config, opts);
    assert_eq!(recovered.snapshot_covered, 40);
    let (ratings, _) = recovered.engine.inserted_since(0);
    assert_eq!(ratings.len(), 50);
    assert_eq!(probe_bits(recovered.engine.as_ref()), live_bits);
}

/// A refused WAL append (injected fault) leaves the engine untouched: no
/// ack, no graph commit, no insert-log entry — and the next insert, once
/// the fault clears, proceeds normally.
#[test]
fn refused_append_means_nothing_happened() {
    let tmp = TempDir::new("refused");
    let wal_dir = tmp.sub("wal");
    let dataset = dataset();
    let plan = Arc::new(FaultPlan::new(7).with_fault(sites::WAL_APPEND, FaultKind::Error, 1.0));
    let (wal, _) = Wal::open_with_faults(&wal_dir, strict_opts(), Some(plan)).expect("open");
    let engine = Arc::new(
        ServeEngine::with_shared_graph(
            base_model(&dataset),
            dataset.clone(),
            Arc::new(dataset.graph()),
            engine_config(),
        )
        .with_wal(Arc::new(wal)),
    );

    let epoch = engine.graph_epoch();
    for k in 0..3 {
        assert!(engine.insert_rating(rating(k)).is_err(), "append refused");
    }
    assert_eq!(engine.inserted_since(0).0.len(), 0, "no unacked state");
    assert_eq!(
        engine.graph_epoch(),
        epoch,
        "no graph commit without a log entry"
    );

    // Same directory, fault-free reopen: nothing poisoned on disk.
    drop(engine);
    let engine = wal_engine(&dataset, &wal_dir, strict_opts());
    engine.insert_rating(rating(0)).expect("clean insert");
    assert_eq!(engine.inserted_since(0).0.len(), 1);
}
