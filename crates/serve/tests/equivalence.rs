//! Frozen-model equivalence: `FrozenModel::forward_nograd` must match the
//! tape-based `HireModel::forward` to within 1e-6 on every model-zoo
//! configuration — all HIM depths and every ablation toggle.

use hire_core::{HireConfig, HireModel};
use hire_data::{test_context_with_ratio, Dataset, PredictionContext};
use hire_graph::{NeighborhoodSampler, Rating};
use hire_serve::FrozenModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn movielens_dataset() -> Dataset {
    hire_data::SyntheticConfig::movielens_like()
        .scaled(40, 35, (8, 15))
        .generate(42)
}

fn contexts(dataset: &Dataset, count: usize, n: usize, m: usize) -> Vec<PredictionContext> {
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(7);
    (0..count)
        .map(|k| {
            let seed = dataset.ratings[k * 3 % dataset.ratings.len()];
            test_context_with_ratio(
                &graph,
                &NeighborhoodSampler,
                &[Rating::new(seed.user, seed.item, seed.value)],
                n,
                m,
                0.3,
                &mut rng,
            )
            .expect("test context")
        })
        .collect()
}

fn assert_equivalent(dataset: &Dataset, config: &HireConfig, label: &str) {
    let mut rng = StdRng::seed_from_u64(1234);
    let model = HireModel::new(dataset, config, &mut rng);
    let frozen = FrozenModel::from_model(&model, dataset).expect("freeze");
    for (k, ctx) in contexts(dataset, 3, 9, 7).iter().enumerate() {
        let tape = model.predict(ctx, dataset);
        let nograd = frozen.forward_nograd(ctx, dataset).expect("nograd forward");
        assert_eq!(tape.dims(), nograd.dims(), "[{label}] ctx {k}: shape");
        let diff = tape.max_abs_diff(&nograd);
        assert!(
            diff <= 1e-6,
            "[{label}] ctx {k}: max |tape - nograd| = {diff:e}"
        );
    }
}

/// The zoo's speed tiers: Smoke (1 block), Fast (2 blocks), Full (the
/// paper's 3-block configuration).
#[test]
fn matches_tape_across_zoo_depths() {
    let dataset = movielens_dataset();
    assert_equivalent(
        &dataset,
        &HireConfig::fast().with_blocks(1).with_context_size(8, 8),
        "smoke",
    );
    assert_equivalent(&dataset, &HireConfig::fast(), "fast");
    assert_equivalent(&dataset, &HireConfig::paper_default(), "full");
}

/// Every MBU/MBI/MBA ablation combination with at least one layer enabled.
#[test]
fn matches_tape_across_layer_ablations() {
    let dataset = movielens_dataset();
    for mbu in [false, true] {
        for mbi in [false, true] {
            for mba in [false, true] {
                if !(mbu || mbi || mba) {
                    continue;
                }
                let config = HireConfig::fast().with_layers(mbu, mbi, mba);
                assert_equivalent(&dataset, &config, &format!("layers {mbu}/{mbi}/{mba}"));
            }
        }
    }
}

/// Residual and LayerNorm toggles change the parameter list layout; the
/// frozen unpacking must track them.
#[test]
fn matches_tape_without_residual_or_layernorm() {
    let dataset = movielens_dataset();
    for (residual, layer_norm) in [(false, true), (true, false), (false, false)] {
        let mut config = HireConfig::fast();
        config.residual = residual;
        config.layer_norm = layer_norm;
        assert_equivalent(
            &dataset,
            &config,
            &format!("res={residual} ln={layer_norm}"),
        );
    }
}

/// ID-only schemas (Douban-style) take the one-embedding-per-entity path.
#[test]
fn matches_tape_on_id_only_dataset() {
    let dataset = hire_data::SyntheticConfig::douban_like()
        .scaled(30, 35, (5, 10))
        .generate(9);
    assert_equivalent(&dataset, &HireConfig::fast(), "douban id-only");
}

/// Batched no-grad inference must reproduce the single-context results
/// bit for bit — micro-batching must not change any prediction.
#[test]
fn batched_forward_is_bitwise_identical_to_single() {
    let dataset = movielens_dataset();
    let mut rng = StdRng::seed_from_u64(5);
    let model = HireModel::new(&dataset, &HireConfig::fast(), &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let ctxs = contexts(&dataset, 4, 8, 8);
    let same_shape: Vec<&PredictionContext> =
        ctxs.iter().filter(|c| c.n() == 8 && c.m() == 8).collect();
    assert!(same_shape.len() >= 2, "need same-shape contexts to batch");
    let batched = frozen
        .forward_nograd_batch(&same_shape, &dataset)
        .expect("batched forward");
    for (k, ctx) in same_shape.iter().enumerate() {
        let single = frozen
            .forward_nograd(ctx, &dataset)
            .expect("single forward");
        assert_eq!(
            batched[k].as_slice(),
            single.as_slice(),
            "ctx {k}: batched result must be bit-identical"
        );
    }
}

/// Shape validation: a parameter list from a different architecture is a
/// typed error, not a panic.
#[test]
fn mismatched_parameters_yield_typed_error() {
    let dataset = movielens_dataset();
    let mut rng = StdRng::seed_from_u64(3);
    let model = HireModel::new(&dataset, &HireConfig::fast(), &mut rng);
    let err = FrozenModel::from_model(&model, &dataset).map(|_| ()).err();
    assert!(err.is_none(), "matching config must load");
    // freeze under a config with a different depth: parameter count differs
    let wrong = HireConfig::fast().with_blocks(3);
    use hire_nn::Module;
    let params: Vec<_> = model.parameters().iter().map(|p| p.value()).collect();
    let err = FrozenModel::from_parts(&dataset, wrong, params)
        .expect_err("wrong-depth unpacking must fail");
    assert!(
        err.to_string().contains("FrozenModel"),
        "unexpected error: {err}"
    );
}
