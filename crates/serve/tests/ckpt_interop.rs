//! Checkpoint interop: a `hire-ckpt` training snapshot must load into a
//! [`FrozenModel`] that matches the live trained model, and corruption must
//! surface as a typed [`HireError`], never a panic.

use hire_ckpt::SNAPSHOT_EXT;
use hire_core::{train, HireConfig, HireModel, TrainConfig};
use hire_data::{test_context_with_ratio, Dataset};
use hire_error::HireError;
use hire_graph::{NeighborhoodSampler, Rating};
use hire_serve::FrozenModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Self-cleaning temp dir (same pattern as the ckpt crate's tests).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hire_serve_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup() -> (Dataset, HireConfig) {
    let dataset = hire_data::SyntheticConfig::movielens_like()
        .scaled(30, 25, (6, 12))
        .generate(11);
    let config = HireConfig::fast().with_blocks(1).with_context_size(6, 6);
    (dataset, config)
}

fn train_with_checkpoints(
    dataset: &Dataset,
    config: &HireConfig,
    dir: &std::path::Path,
) -> HireModel {
    let mut rng = StdRng::seed_from_u64(2);
    let model = HireModel::new(dataset, config, &mut rng);
    let graph = dataset.graph();
    let train_config = TrainConfig {
        steps: 6,
        batch_size: 2,
        checkpoint_dir: Some(dir.to_path_buf()),
        checkpoint_every_secs: 0.0,
        checkpoint_keep_last: 2,
        ..TrainConfig::paper_default()
    };
    train(
        &model,
        dataset,
        &graph,
        &NeighborhoodSampler,
        &train_config,
        &mut rng,
    )
    .expect("training run");
    model
}

#[test]
fn snapshot_round_trips_into_matching_frozen_model() {
    let tmp = TempDir::new("roundtrip");
    let (dataset, config) = setup();
    let model = train_with_checkpoints(&dataset, &config, &tmp.0);

    let frozen =
        FrozenModel::from_checkpoint_dir(&tmp.0, &dataset, &config).expect("load snapshot");

    // The frozen model from disk must predict exactly like the live,
    // just-trained model.
    let graph = dataset.graph();
    let mut rng = StdRng::seed_from_u64(77);
    for k in 0..3 {
        let seed = dataset.ratings[k];
        let ctx = test_context_with_ratio(
            &graph,
            &NeighborhoodSampler,
            &[Rating::new(seed.user, seed.item, seed.value)],
            6,
            6,
            0.3,
            &mut rng,
        )
        .expect("context");
        let live = model.predict(&ctx, &dataset);
        let served = frozen.forward_nograd(&ctx, &dataset).expect("nograd");
        let diff = live.max_abs_diff(&served);
        assert!(diff <= 1e-6, "ctx {k}: live vs snapshot diff {diff:e}");
    }
}

#[test]
fn corrupted_snapshot_is_a_typed_error_not_a_panic() {
    let tmp = TempDir::new("corrupt");
    let (dataset, config) = setup();
    train_with_checkpoints(&dataset, &config, &tmp.0);

    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(&tmp.0)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == SNAPSHOT_EXT))
        .collect();
    snapshots.sort();
    assert!(
        !snapshots.is_empty(),
        "training must have written snapshots"
    );

    // Bit-flip the payload of one snapshot: loading that file directly must
    // fail with CorruptCheckpoint.
    let victim = snapshots.last().unwrap();
    let mut bytes = std::fs::read(victim).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(victim, &bytes).expect("write corrupted snapshot");

    let err = FrozenModel::from_snapshot_file(victim, &dataset, &config)
        .expect_err("corrupted snapshot must fail");
    assert!(
        matches!(err, HireError::CorruptCheckpoint { .. }),
        "expected CorruptCheckpoint, got {err}"
    );

    // The directory loader falls back to an older valid snapshot if one
    // exists; corrupt them all and it must report a typed error too.
    for path in &snapshots {
        std::fs::write(path, b"garbage").expect("clobber snapshot");
    }
    let err = FrozenModel::from_checkpoint_dir(&tmp.0, &dataset, &config)
        .expect_err("all-corrupt directory must fail");
    assert!(
        err.to_string().contains("no valid snapshot"),
        "unexpected error: {err}"
    );
}

#[test]
fn snapshot_under_wrong_config_is_rejected() {
    let tmp = TempDir::new("wrongcfg");
    let (dataset, config) = setup();
    train_with_checkpoints(&dataset, &config, &tmp.0);

    let wrong = config.clone().with_blocks(3);
    let err = FrozenModel::from_checkpoint_dir(&tmp.0, &dataset, &wrong)
        .expect_err("depth mismatch must fail");
    assert!(
        matches!(err, HireError::InvalidData { .. }),
        "expected InvalidData, got {err}"
    );
}
