//! Functional tests for the online learning subsystem: versioned hot
//! swaps, cold-start scenario classification, the shadow-eval promotion
//! gate, checkpoint lineages, and the demotion watchdog.

use hire_core::{train, HireConfig, HireModel, TrainConfig};
use hire_data::Dataset;
use hire_graph::{BipartiteGraph, NeighborhoodSampler, Rating};
use hire_serve::{
    ColdScenario, EngineConfig, FrozenModel, OnlineConfig, OnlineLoop, Predictor, RatingQuery,
    RoundOutcome, ServeEngine, ServedBy, CANDIDATE_TAG, REJECTED_TAG,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const USERS: usize = 40;
const ITEMS: usize = 35;

/// Self-cleaning scratch directory for checkpoint lineages.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hire-online-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dataset() -> Arc<Dataset> {
    Arc::new(
        hire_data::SyntheticConfig::movielens_like()
            .scaled(USERS, ITEMS, (8, 15))
            .generate(21),
    )
}

fn model_config() -> HireConfig {
    HireConfig::fast().with_blocks(1).with_context_size(6, 6)
}

/// A lightly trained incumbent (so fine-tuning has quality to preserve or
/// lose) plus its engine.
fn build_engine(train_steps: usize) -> (Arc<ServeEngine>, Arc<Dataset>) {
    let dataset = dataset();
    let config = model_config();
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    if train_steps > 0 {
        let tc = TrainConfig {
            steps: train_steps,
            batch_size: 2,
            base_lr: 1e-3,
            grad_clip: 1.0,
            ..TrainConfig::paper_default()
        };
        train(
            &model,
            &dataset,
            &dataset.graph(),
            &NeighborhoodSampler,
            &tc,
            &mut rng,
        )
        .expect("incumbent training");
    }
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let engine_config = EngineConfig {
        cache_capacity: 128,
        ..EngineConfig::from_model_config(&config)
    };
    (
        Arc::new(ServeEngine::new(frozen, dataset.clone(), engine_config)),
        dataset,
    )
}

fn online_config() -> OnlineConfig {
    OnlineConfig {
        min_new_ratings: 12,
        fine_tune_steps: 6,
        batch_size: 2,
        base_lr: 1e-4,
        holdout_every: 4,
        regression_tolerance: 10.0, // generous: these tests exercise machinery, not quality
        ..OnlineConfig::default()
    }
}

fn feed(engine: &ServeEngine, n: usize, offset: usize) {
    for k in 0..n {
        let rating = Rating::new(
            (offset + k * 3) % USERS,
            (offset + k * 5) % ITEMS,
            ((k % 5) + 1) as f32,
        );
        engine.insert_rating(rating).expect("insert");
    }
}

fn queries(n: usize) -> Vec<RatingQuery> {
    (0..n)
        .map(|k| RatingQuery {
            user: (k * 7) % USERS,
            item: (k * 11) % ITEMS,
        })
        .collect()
}

#[test]
fn frozen_parameters_round_trip_and_warm_start_a_live_model() {
    let dataset = dataset();
    let config = model_config();
    let mut rng = StdRng::seed_from_u64(9);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");

    // parameters() is the exact inverse of from_parts.
    let rebuilt = FrozenModel::from_parts(&dataset, config.clone(), frozen.parameters())
        .expect("rebuild from exported parameters");
    let ctx = {
        let mut rng = StdRng::seed_from_u64(1);
        hire_data::test_context_with_ratio(
            &dataset.graph(),
            &NeighborhoodSampler,
            &[dataset.ratings[0]],
            6,
            6,
            0.2,
            &mut rng,
        )
        .expect("context")
    };
    let a = frozen.forward_nograd(&ctx, &dataset).expect("forward");
    let b = rebuilt.forward_nograd(&ctx, &dataset).expect("forward");
    assert_eq!(
        a.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "round-tripped frozen model must be bit-identical"
    );

    // Warm-starting a fresh live model from the frozen weights reproduces
    // them bit-exactly after re-freezing.
    let mut rng = StdRng::seed_from_u64(77); // different init, fully overwritten
    let warm = HireModel::new(&dataset, &config, &mut rng);
    warm.load_parameters(&frozen.parameters())
        .expect("warm start");
    let refrozen = FrozenModel::from_model(&warm, &dataset).expect("re-freeze");
    for (x, y) in frozen.parameters().iter().zip(refrozen.parameters()) {
        assert_eq!(x.as_slice(), y.as_slice(), "warm start must copy weights");
    }

    // Mismatched shapes are typed errors.
    let mut wrong = frozen.parameters();
    wrong.pop();
    assert!(warm.load_parameters(&wrong).is_err());
}

#[test]
fn promotion_swaps_versions_and_stales_cache_memos() {
    let (engine, _) = build_engine(20);
    assert_eq!(engine.version(), 1);

    let qs = queries(6);
    let first = engine.predict_batch_tagged(&qs, None).expect("serve");
    assert!(first.iter().all(|a| a.version == 1));
    let repeat = engine.predict_batch_tagged(&qs, None).expect("serve");
    assert!(
        repeat.iter().all(|a| a.served_by == ServedBy::Cache),
        "repeat under one version hits the memo"
    );

    let dir = TempDir::new("promote");
    let online = OnlineLoop::new(
        engine.clone(),
        OnlineConfig {
            checkpoint_dir: Some(dir.0.clone()),
            ..online_config()
        },
    );
    feed(&engine, 24, 0);
    let outcome = online.run_round();
    let RoundOutcome::Promoted { version, eval } = outcome else {
        panic!("generous tolerance must promote, got {outcome:?}");
    };
    assert_eq!(version, 2);
    assert_eq!(engine.version(), 2);
    assert!(eval.promoted() && eval.failed_gates.is_empty());
    assert!(eval.holdout_size > 0, "holdout_every must divert ratings");
    assert_eq!(eval.incumbent_version, 1);

    // Post-swap answers carry the new version and never reuse a v1 memo.
    let after = engine.predict_batch_tagged(&qs, None).expect("serve");
    for a in &after {
        assert_eq!(a.version, 2);
        assert_ne!(
            a.served_by,
            ServedBy::Cache,
            "v1 memos must be stale under v2"
        );
    }
    let cached = engine.predict_batch_tagged(&qs, None).expect("serve");
    assert!(
        cached
            .iter()
            .all(|a| a.served_by == ServedBy::Cache && a.version == 2),
        "fresh v2 memos are valid for v2"
    );

    // Both versions show up in the per-version stats, and the history of
    // the loop recorded the promotion.
    let versions: Vec<_> = engine.version_stats().iter().map(|(v, _)| *v).collect();
    assert!(versions.contains(&1) && versions.contains(&2));
    assert_eq!(online.history().len(), 1);

    // Durable record: trainer (`ckpt`), promoted (`candidate`) lineages
    // and the eval report coexist in one directory.
    let names: Vec<String> = std::fs::read_dir(&dir.0)
        .expect("read dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("ckpt-") && n.ends_with(".hckpt")),
        "trainer durability snapshots missing: {names:?}"
    );
    assert!(
        names
            .iter()
            .any(|n| n.starts_with(CANDIDATE_TAG) && n.ends_with(".hckpt")),
        "candidate snapshot missing: {names:?}"
    );
    let report = names
        .iter()
        .find(|n| n.starts_with(CANDIDATE_TAG) && n.ends_with(".eval.json"))
        .expect("candidate eval report written");
    let json = std::fs::read_to_string(dir.0.join(report)).expect("read report");
    assert!(json.contains("\"promoted\": true"), "report: {json}");

    // The promoted snapshot is loadable as a frozen model.
    let snap = names
        .iter()
        .find(|n| n.starts_with(CANDIDATE_TAG) && n.ends_with(".hckpt"))
        .unwrap();
    FrozenModel::from_snapshot_file(dir.0.join(snap), engine.dataset(), &model_config())
        .expect("promoted snapshot must load");
}

#[test]
fn no_holdout_means_no_promotion_and_a_rejected_checkpoint() {
    let (engine, _) = build_engine(0);
    let dir = TempDir::new("reject");
    let online = OnlineLoop::new(
        engine.clone(),
        OnlineConfig {
            holdout_every: 0, // nothing diverted: the gate has no evidence
            checkpoint_dir: Some(dir.0.clone()),
            ..online_config()
        },
    );
    let before = engine
        .predict_batch_tagged(&queries(4), None)
        .expect("serve");
    feed(&engine, 16, 3);
    let outcome = online.run_round();
    let RoundOutcome::Rejected { eval } = outcome else {
        panic!("no holdout must reject, got {outcome:?}");
    };
    assert!(!eval.promoted());
    assert!(
        eval.failed_gates.iter().any(|g| g.contains("no held-out")),
        "gates: {:?}",
        eval.failed_gates
    );
    assert_eq!(engine.version(), 1, "rejection must not swap");
    // The incumbent still serves — same version, valid answers.
    let after = engine
        .predict_batch_tagged(&queries(4), None)
        .expect("serve");
    assert_eq!(before.len(), after.len());
    assert!(after.iter().all(|a| a.version == 1));

    let names: Vec<String> = std::fs::read_dir(&dir.0)
        .expect("read dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names
            .iter()
            .any(|n| n.starts_with(REJECTED_TAG) && n.ends_with(".hckpt")),
        "rejected candidate must be checkpointed: {names:?}"
    );
    let report = names
        .iter()
        .find(|n| n.starts_with(REJECTED_TAG) && n.ends_with(".eval.json"))
        .expect("rejected eval report written");
    let json = std::fs::read_to_string(dir.0.join(report)).expect("read report");
    assert!(json.contains("\"promoted\": false"), "report: {json}");
    assert!(json.contains("no held-out"), "report: {json}");
}

#[test]
fn a_regressing_candidate_is_never_promoted() {
    // A destructive fine-tune (huge LR on a trained incumbent) across
    // several seeds: whatever each round produces — rejection, divergence
    // abort, or a candidate that happened to survive — the invariant is
    // that promotion implies no measured regression, and everything else
    // leaves the incumbent serving.
    for seed in [7u64, 1234, 0xC0FFEE] {
        let (engine, _) = build_engine(30);
        let online = OnlineLoop::new(
            engine.clone(),
            OnlineConfig {
                base_lr: 30.0,
                fine_tune_steps: 8,
                regression_tolerance: 0.0,
                seed,
                ..online_config()
            },
        );
        feed(&engine, 24, seed as usize % 7);
        let before = engine
            .predict_batch_tagged(&queries(6), None)
            .expect("serve");
        match online.run_round() {
            RoundOutcome::Promoted { eval, .. } => {
                assert!(
                    eval.candidate_mae <= eval.incumbent_mae,
                    "seed {seed}: promoted a regressing candidate: {eval:?}"
                );
            }
            RoundOutcome::Rejected { eval } => {
                assert!(!eval.failed_gates.is_empty());
                assert_eq!(engine.version(), 1, "seed {seed}: rejection must not swap");
            }
            RoundOutcome::TrainerDiverged | RoundOutcome::TrainerCrashed => {
                assert_eq!(engine.version(), 1);
                // The incumbent is untouched: same answers as before the
                // round (the round inserted nothing into the graph).
                let after = engine
                    .predict_batch_tagged(&queries(6), None)
                    .expect("serve");
                for (a, b) in before.iter().zip(&after) {
                    assert_eq!(a.rating.to_bits(), b.rating.to_bits(), "seed {seed}");
                }
            }
            other => panic!("seed {seed}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn demote_reinstalls_previous_weights_under_a_new_version() {
    let (engine, dataset) = build_engine(0);
    let qs = queries(8);
    let v1_bits: Vec<u32> = engine
        .predict_batch_tagged(&qs, None)
        .expect("serve")
        .iter()
        .map(|a| a.rating.to_bits())
        .collect();

    // Install a differently initialized model as v2.
    let mut rng = StdRng::seed_from_u64(99);
    let other = HireModel::new(&dataset, &model_config(), &mut rng);
    let other = FrozenModel::from_model(&other, &dataset).expect("freeze");
    assert_eq!(engine.install_model(other).expect("install"), 2);
    let v2 = engine.predict_batch_tagged(&qs, None).expect("serve");
    assert!(v2.iter().all(|a| a.version == 2));
    assert!(
        v2.iter()
            .zip(&v1_bits)
            .any(|(a, &b)| a.rating.to_bits() != b),
        "a different model must answer differently somewhere"
    );

    // Demotion steps back to the v1 weights — under a NEW version.
    let demoted = engine.demote().expect("demote").expect("history present");
    assert_eq!(demoted, 3);
    assert_eq!(engine.version(), 3);
    let v3 = engine.predict_batch_tagged(&qs, None).expect("serve");
    for (a, &b) in v3.iter().zip(&v1_bits) {
        assert_eq!(a.version, 3);
        assert_eq!(
            a.rating.to_bits(),
            b,
            "demoted serving must be bit-identical to the original weights"
        );
    }
    // Demoting with an empty history is a typed no-op... the history now
    // holds the displaced v2, so one more demotion works, then none.
    assert!(engine.demote().expect("demote").is_some());
}

#[test]
fn watchdog_demotes_a_version_that_degrades_to_fallback() {
    let (engine, dataset) = build_engine(0);
    let online = OnlineLoop::new(
        engine.clone(),
        OnlineConfig {
            demote_min_answers: 10,
            demote_fallback_margin: 0.5,
            ..online_config()
        },
    );

    // v1 serves 16 distinct queries cleanly: fallback rate 0.
    let v1_queries = queries(16);
    engine
        .predict_batch_tagged(&v1_queries, None)
        .expect("serve");
    assert!(
        online.maybe_demote().is_none(),
        "healthy v1 must not demote"
    );

    // v2: same weights re-installed, but its traffic arrives with an
    // already-expired deadline — every answer degrades to fallback,
    // attributed to v2.
    let same = FrozenModel::from_parts(
        &dataset,
        model_config(),
        engine.current_model().model().parameters(),
    )
    .expect("clone weights");
    assert_eq!(engine.install_model(same).expect("install"), 2);
    let v2_queries: Vec<RatingQuery> = (0..16)
        .map(|k| RatingQuery {
            user: (k * 13 + 1) % USERS,
            item: (k * 17 + 2) % ITEMS,
        })
        .collect();
    let expired = Instant::now();
    let degraded = engine
        .predict_batch_tagged(&v2_queries, Some(expired))
        .expect("degraded serve");
    assert!(degraded.iter().all(|a| a.served_by == ServedBy::Fallback));

    let demoted = online.maybe_demote().expect("fallback storm must demote");
    assert_eq!(demoted, 3);
    assert_eq!(engine.version(), 3);
    assert!(
        online.maybe_demote().is_none(),
        "v3 has no answers yet; the watchdog needs evidence"
    );
}

#[test]
fn cold_scenarios_are_classified_against_the_base_graph() {
    let dataset = dataset();
    let config = model_config();
    let cold_users = USERS - 4..USERS;
    let cold_items = ITEMS - 4..ITEMS;
    // A serving graph with the cold entities' edges withheld.
    let visible: Vec<Rating> = dataset
        .ratings
        .iter()
        .filter(|r| !cold_users.contains(&r.user) && !cold_items.contains(&r.item))
        .copied()
        .collect();
    let graph = BipartiteGraph::empty(USERS, ITEMS).with_extra_edges(&visible);
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let engine = Arc::new(ServeEngine::with_graph(
        frozen,
        dataset.clone(),
        graph,
        EngineConfig::from_model_config(&config),
    ));

    assert_eq!(engine.scenario_of(0, 0), ColdScenario::WarmUp);
    assert_eq!(engine.scenario_of(USERS - 1, 0), ColdScenario::UserCold);
    assert_eq!(engine.scenario_of(0, ITEMS - 1), ColdScenario::ItemCold);
    assert_eq!(
        engine.scenario_of(USERS - 1, ITEMS - 1),
        ColdScenario::UserAndItemCold
    );
    for s in ColdScenario::ALL {
        assert_eq!(s.is_cold(), s != ColdScenario::WarmUp);
    }

    // Serving a cold query lands in that scenario's stat bucket...
    engine
        .predict_batch_tagged(
            &[RatingQuery {
                user: USERS - 1,
                item: 0,
            }],
            None,
        )
        .expect("serve");
    let scenarios: Vec<ColdScenario> = engine.scenario_stats().iter().map(|(s, _)| *s).collect();
    assert!(scenarios.contains(&ColdScenario::UserCold));

    // ...and classification is frozen at construction: warming a cold
    // user with online ratings does not reclassify it.
    engine
        .insert_rating(Rating::new(USERS - 1, 0, 4.0))
        .expect("insert");
    engine
        .insert_rating(Rating::new(USERS - 1, 1, 3.0))
        .expect("insert");
    assert_eq!(engine.scenario_of(USERS - 1, 0), ColdScenario::UserCold);

    // An online round over cold-user ratings carries the cold scenario
    // into the eval report.
    let online = OnlineLoop::new(
        engine.clone(),
        OnlineConfig {
            holdout_every: 2,
            min_scenario_samples: 1,
            ..online_config()
        },
    );
    for k in 0..24 {
        engine
            .insert_rating(Rating::new(
                USERS - 1 - (k % 2),
                k % (ITEMS - 4),
                ((k % 5) + 1) as f32,
            ))
            .expect("insert");
    }
    match online.run_round() {
        RoundOutcome::Promoted { eval, .. } | RoundOutcome::Rejected { eval } => {
            assert!(
                eval.scenarios
                    .iter()
                    .any(|s| s.scenario == ColdScenario::UserCold && s.samples > 0),
                "cold holdout samples must be scored per scenario: {eval:?}"
            );
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn accumulating_until_threshold_then_training_consumes_pending() {
    let (engine, _) = build_engine(0);
    let online = OnlineLoop::new(engine.clone(), online_config());
    assert!(matches!(
        online.run_round(),
        RoundOutcome::Accumulating { pending: 0 }
    ));
    feed(&engine, 6, 0);
    let RoundOutcome::Accumulating { pending } = online.run_round() else {
        panic!("6 ratings are below the threshold");
    };
    assert!(pending > 0 && pending <= 6);
    feed(&engine, 18, 6);
    let outcome = online.run_round();
    assert!(
        matches!(
            outcome,
            RoundOutcome::Promoted { .. } | RoundOutcome::Rejected { .. }
        ),
        "threshold reached, the round must train: {outcome:?}"
    );
    // Pending was consumed: the next round accumulates again.
    assert!(matches!(
        online.run_round(),
        RoundOutcome::Accumulating { .. }
    ));
    assert_eq!(online.history().len(), 4);
}
