//! End-to-end `ServeEngine` behavior: caching, invalidation, and serving
//! through the micro-batched server.

use hire_core::{HireConfig, HireModel};
use hire_graph::Rating;
use hire_serve::{
    EngineConfig, FrozenModel, Predictor, RatingQuery, ServeEngine, ServeError, Server,
    ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn engine() -> ServeEngine {
    let dataset = hire_data::SyntheticConfig::movielens_like()
        .scaled(40, 35, (8, 15))
        .generate(21);
    let config = HireConfig::fast().with_blocks(1).with_context_size(8, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let engine_config = EngineConfig {
        cache_capacity: 64,
        ..EngineConfig::from_model_config(&config)
    };
    ServeEngine::new(frozen, Arc::new(dataset), engine_config)
}

#[test]
fn repeated_queries_hit_the_cache_and_agree() {
    let engine = engine();
    let q = RatingQuery { user: 3, item: 5 };
    let first = engine.predict_batch(&[q]).expect("first")[0];
    let second = engine.predict_batch(&[q]).expect("second")[0];
    assert_eq!(
        first, second,
        "cached context must reproduce the prediction"
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert!(first >= 0.0 && first <= 5.0, "rating {first} out of range");
}

#[test]
fn insert_rating_invalidates_touching_contexts() {
    let engine = engine();
    let q = RatingQuery { user: 3, item: 5 };
    let _ = engine.predict_batch(&[q]).expect("warm the cache");
    assert_eq!(engine.cache_len(), 1);
    // The cached block contains user 3, so an edge on user 3 invalidates it.
    let removed = engine
        .insert_rating(Rating::new(3, 30, 4.0))
        .expect("insert rating");
    assert_eq!(removed, 1);
    assert_eq!(engine.cache_len(), 0);
    // Next query re-samples against the updated graph.
    let _ = engine.predict_batch(&[q]).expect("re-served");
    assert_eq!(engine.cache_stats().misses, 2);
}

#[test]
fn out_of_range_queries_are_typed_errors() {
    let engine = engine();
    let err = engine
        .predict_batch(&[RatingQuery { user: 999, item: 0 }])
        .expect_err("unknown user must fail");
    assert!(matches!(err, ServeError::Model(_)), "got {err}");
    let err = engine
        .insert_rating(Rating::new(0, 999, 3.0))
        .expect_err("unknown item must fail");
    assert!(matches!(err, ServeError::Model(_)), "got {err}");
}

#[test]
fn mixed_shape_batches_are_grouped_correctly() {
    let engine = engine();
    // A batch mixing users/items with different neighborhood sizes can
    // yield different context shapes; predict_batch must group and still
    // answer per-query, matching the single-query results.
    let queries: Vec<RatingQuery> = (0..6)
        .map(|k| RatingQuery {
            user: k * 5 % 40,
            item: k * 7 % 35,
        })
        .collect();
    let batched = engine.predict_batch(&queries).expect("batched");
    for (k, q) in queries.iter().enumerate() {
        let single = engine.predict_batch(&[*q]).expect("single")[0];
        assert_eq!(
            batched[k], single,
            "query {k}: batched and single predictions must agree"
        );
    }
}

#[test]
fn serves_through_the_worker_pool() {
    let engine = Arc::new(engine());
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            workers: 2,
            max_batch: 4,
            max_queue: 256,
            batch_timeout: Duration::from_millis(1),
        },
    );
    let handles: Vec<_> = (0..20)
        .map(|k| {
            let q = RatingQuery {
                user: k % 40,
                item: (k * 3) % 35,
            };
            (q, server.submit(q).expect("accepted"))
        })
        .collect();
    for (q, h) in handles {
        let pred = h.wait().expect("served");
        assert!(
            pred.rating >= 0.0 && pred.rating <= 5.0,
            "query {q:?}: rating {} out of range",
            pred.rating
        );
    }
    server.shutdown();
    assert_eq!(server.stats().completed, 20);
}
