//! Five-tier degradation ladder under chaos (DESIGN.md §13).
//!
//! Invariants, on top of `tests/chaos.rs`:
//!
//! 1. A thin deadline budget is served by the **quantized** tier, within
//!    its documented error bound of the model tier.
//! 2. A half-open breaker whose probe budget is spent serves the
//!    quantized tier instead of degrading to graph statistics.
//! 3. Each rung falls to the next: quantized → hybrid → fallback, and
//!    model → hybrid → fallback. No rung is ever skipped downward.
//! 4. Per-version and per-scenario tier accounting is *exact* under mixed
//!    faults and online hot swaps (every answered query is counted in
//!    exactly one tier bucket of each breakdown).
//! 5. The whole five-tier schedule replays bit-identically per seed.

use hire_chaos::{sites, FaultKind, FaultPlan};
use hire_core::{train_hybrid, HireConfig, HireModel, HybridConfig};
use hire_data::Dataset;
use hire_serve::{
    BreakerConfig, EngineConfig, FrozenModel, Predictor, QuantTierConfig, RatingQuery,
    ResilienceConfig, ServeEngine, ServeError, ServedBy, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USERS: usize = 40;
const ITEMS: usize = 35;

fn dataset() -> Dataset {
    hire_data::SyntheticConfig::movielens_like()
        .scaled(USERS, ITEMS, (8, 15))
        .generate(21)
}

/// A quantized-tier config whose budget threshold dwarfs any real forward
/// time, so a `now + 5s` deadline deterministically selects the tier while
/// leaving ample budget for the quantized forward itself to finish.
fn eager_quant() -> QuantTierConfig {
    QuantTierConfig {
        deadline_threshold: Duration::from_secs(10),
        ..QuantTierConfig::default()
    }
}

/// A deadline that always trips the quantized budget trigger (see
/// [`eager_quant`]) but never actually expires within a test.
fn thin_budget() -> Option<Instant> {
    Some(Instant::now() + Duration::from_secs(5))
}

fn build_engine(
    resilience: ResilienceConfig,
    faults: Option<Arc<FaultPlan>>,
    hybrid: bool,
) -> (ServeEngine, Arc<Dataset>) {
    build_engine_with_cache(resilience, faults, hybrid, 64)
}

fn build_engine_with_cache(
    resilience: ResilienceConfig,
    faults: Option<Arc<FaultPlan>>,
    hybrid: bool,
    cache_capacity: usize,
) -> (ServeEngine, Arc<Dataset>) {
    let dataset = Arc::new(dataset());
    let config = HireConfig::fast().with_blocks(1).with_context_size(8, 8);
    let mut rng = StdRng::seed_from_u64(4);
    let model = HireModel::new(&dataset, &config, &mut rng);
    let frozen = FrozenModel::from_model(&model, &dataset).expect("freeze");
    let engine_config = EngineConfig {
        cache_capacity,
        ..EngineConfig::from_model_config(&config)
    };
    let mut engine =
        ServeEngine::new(frozen, dataset.clone(), engine_config).with_resilience(resilience);
    if let Some(plan) = faults {
        engine = engine.with_faults(plan);
    }
    if hybrid {
        engine = engine.with_hybrid(train_hybrid(&dataset, &HybridConfig::default()));
    }
    (engine, dataset)
}

fn fast_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        failure_threshold: 0.5,
        min_samples: 4,
        cooldown: Duration::ZERO,
        half_open_trials: 1,
    }
}

fn queries(n: usize) -> Vec<RatingQuery> {
    (0..n)
        .map(|k| RatingQuery {
            user: (k * 7) % USERS,
            item: (k * 11) % ITEMS,
        })
        .collect()
}

#[test]
fn thin_deadline_budget_is_served_by_the_quantized_tier_within_bound() {
    let (engine, dataset) = build_engine(
        ResilienceConfig {
            quantized: Some(eager_quant()),
            ..ResilienceConfig::default()
        },
        None,
        false,
    );
    let qs = queries(12);
    let thin = engine
        .predict_batch_tagged(&qs, thin_budget())
        .expect("quantized tier answers");
    let (lo, hi) = (dataset.min_rating, dataset.max_rating());
    for (k, a) in thin.iter().enumerate() {
        assert_eq!(
            a.served_by,
            ServedBy::Quantized,
            "query {k}: a thin budget must select the quantized tier"
        );
        assert!(
            (lo - 0.5..=hi + 0.5).contains(&a.rating),
            "query {k}: quantized rating {} far outside [{lo}, {hi}]",
            a.rating
        );
    }
    // Quantized answers are never memoized: re-asking with a full budget
    // must produce fresh *model*-tier answers, and the two tiers must
    // agree within the documented bound.
    let full = engine
        .predict_batch_tagged(&qs, None)
        .expect("model tier answers");
    let bound = engine
        .current_model()
        .quantized()
        .expect("quantized companion built")
        .prediction_bound();
    for (k, (q, m)) in thin.iter().zip(&full).enumerate() {
        assert_eq!(
            m.served_by,
            ServedBy::Model,
            "query {k}: quantized answers must not be laundered into the memo"
        );
        assert!(
            (q.rating - m.rating).abs() <= bound,
            "query {k}: |quantized {} - model {}| exceeds bound {bound}",
            q.rating,
            m.rating
        );
    }
    let tiers = engine.tier_stats();
    assert_eq!(tiers.quantized, qs.len() as u64);
    assert_eq!(tiers.model, qs.len() as u64);
    assert_eq!(tiers.fallback, 0);
}

#[test]
fn half_open_probe_exhaustion_is_served_by_the_quantized_tier() {
    // Model attempts either stall 5ms (holding their breaker admission)
    // or fail. Failures trip the breaker fast; with a zero cooldown every
    // post-open attempt is a half-open probe, and whenever one thread's
    // probe stalls, the other thread finds the probe budget spent — that
    // traffic must ride the quantized tier, not drop to graph statistics.
    let plan = Arc::new(
        FaultPlan::new(3)
            .with_fault(
                sites::ENGINE_FORWARD,
                FaultKind::Delay(Duration::from_millis(5)),
                0.5,
            )
            .with_fault(sites::ENGINE_FORWARD, FaultKind::Error, 1.0),
    );
    // Cache disabled: a successful forward would otherwise memoize every
    // pair and the memo fast path would starve the breaker of traffic.
    let (engine, _) = build_engine_with_cache(
        ResilienceConfig {
            breaker: Some(fast_breaker()),
            retry_attempts: 1,
            ..ResilienceConfig::default()
        },
        Some(plan),
        false,
        0,
    );
    let engine = Arc::new(engine);
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let engine = engine.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let qs = queries(16);
                for _ in 0..400 {
                    for q in &qs {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        engine
                            .predict_batch_tagged(std::slice::from_ref(q), None)
                            .expect("the ladder always answers");
                        if engine.tier_stats().quantized > 0 {
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panic escapes the ladder");
    }
    assert!(
        engine.tier_stats().quantized > 0,
        "a half-open breaker with a spent probe budget must serve the \
         quantized tier: {:?}",
        engine.tier_stats()
    );
}

#[test]
fn model_failure_falls_to_hybrid_then_fallback() {
    // Rung 3: a panicking model with a healthy hybrid → every answer is
    // hybrid-tier, in range.
    let panic_storm =
        || Arc::new(FaultPlan::new(3).with_fault(sites::ENGINE_FORWARD, FaultKind::Panic, 1.0));
    let no_breaker = || ResilienceConfig {
        breaker: None,
        ..ResilienceConfig::default()
    };
    let (engine, dataset) = build_engine(no_breaker(), Some(panic_storm()), true);
    let qs = queries(12);
    let answers = engine.predict_batch_tagged(&qs, None).expect("hybrid");
    let (lo, hi) = (dataset.min_rating, dataset.max_rating());
    for (k, a) in answers.iter().enumerate() {
        assert_eq!(a.served_by, ServedBy::Hybrid, "query {k}");
        assert!(
            (lo..=hi).contains(&a.rating),
            "query {k}: hybrid rating {} outside [{lo}, {hi}]",
            a.rating
        );
    }
    assert_eq!(engine.tier_stats().hybrid, qs.len() as u64);
    assert_eq!(engine.tier_stats().fallback, 0);

    // Rung 4: the hybrid faulted too → graph statistics, with the
    // degradation attributed to the model failure.
    let plan = Arc::new(
        FaultPlan::new(3)
            .with_fault(sites::ENGINE_FORWARD, FaultKind::Panic, 1.0)
            .with_fault(sites::HYBRID_FORWARD, FaultKind::Error, 1.0),
    );
    let (engine, _) = build_engine(no_breaker(), Some(plan), true);
    let answers = engine.predict_batch_tagged(&qs, None).expect("fallback");
    assert!(answers.iter().all(|a| a.served_by == ServedBy::Fallback));
    let tiers = engine.tier_stats();
    assert_eq!(tiers.fallback, qs.len() as u64);
    assert_eq!(tiers.failure_degraded, qs.len() as u64);
}

#[test]
fn quantized_failure_falls_to_hybrid_then_fallback() {
    let quant_storm =
        || Arc::new(FaultPlan::new(5).with_fault(sites::QUANT_FORWARD, FaultKind::Panic, 1.0));
    let eager = || ResilienceConfig {
        quantized: Some(eager_quant()),
        ..ResilienceConfig::default()
    };
    // With a hybrid installed, a panicking quantized tier lands there…
    let (engine, _) = build_engine(eager(), Some(quant_storm()), true);
    let qs = queries(10);
    let answers = engine
        .predict_batch_tagged(&qs, thin_budget())
        .expect("hybrid");
    assert!(
        answers.iter().all(|a| a.served_by == ServedBy::Hybrid),
        "a faulted quantized tier must fall to the hybrid tier"
    );
    assert_eq!(engine.tier_stats().hybrid, qs.len() as u64);

    // …and without one, on graph statistics.
    let (engine, _) = build_engine(eager(), Some(quant_storm()), false);
    let answers = engine
        .predict_batch_tagged(&qs, thin_budget())
        .expect("fallback");
    assert!(answers.iter().all(|a| a.served_by == ServedBy::Fallback));
    assert_eq!(engine.tier_stats().failure_degraded, qs.len() as u64);
}

#[test]
fn five_tier_schedule_replays_identically_per_seed() {
    let run = |seed: u64| {
        let plan = Arc::new(FaultPlan::mixed(seed, 0.3));
        let (engine, _) = build_engine(
            ResilienceConfig {
                breaker: Some(fast_breaker()),
                quantized: Some(eager_quant()),
                ..ResilienceConfig::default()
            },
            Some(plan.clone()),
            true,
        );
        // Cycle the deadline class so every rung of the ladder is in
        // play: full budget (model/cache), thin budget (quantized), and
        // already-expired (hybrid/fallback).
        let outcomes: Vec<_> = queries(36)
            .iter()
            .enumerate()
            .map(|(k, q)| {
                let deadline = match k % 3 {
                    0 => None,
                    1 => thin_budget(),
                    _ => Some(Instant::now()),
                };
                engine
                    .predict_batch_tagged(std::slice::from_ref(q), deadline)
                    .map(|a| (a[0].rating.to_bits(), a[0].served_by))
                    .map_err(|e| e.to_string())
            })
            .collect();
        (outcomes, plan.total_injected())
    };
    assert_eq!(run(7), run(7), "same seed must replay the same schedule");
    assert_eq!(run(1234), run(1234));
}

#[test]
fn tier_accounting_is_exact_under_mixed_chaos_and_hot_swaps() {
    let plan = Arc::new(FaultPlan::mixed(0xC0FFEE, 0.3));
    let (engine, _) = build_engine(
        ResilienceConfig {
            breaker: Some(fast_breaker()),
            quantized: Some(eager_quant()),
            ..ResilienceConfig::default()
        },
        Some(plan),
        true,
    );
    let qs = queries(24);
    let mut answered = 0u64;
    for round in 0..6 {
        for (k, q) in qs.iter().enumerate() {
            let deadline = match k % 3 {
                0 => None,
                1 => thin_budget(),
                _ => Some(Instant::now()),
            };
            let answers = engine
                .predict_batch_tagged(std::slice::from_ref(q), deadline)
                .expect("the ladder always answers");
            answered += answers.len() as u64;
        }
        // A hot swap per round spreads the accounting across versions;
        // the identical weights keep the swap compatible by construction.
        if round % 2 == 1 {
            let clone = engine.current_model().model().clone();
            engine.install_model(clone).expect("compatible swap");
        }
    }
    let sum = |s: hire_serve::TierStats| s.model + s.quantized + s.hybrid + s.cache + s.fallback;
    let global = engine.tier_stats();
    assert_eq!(
        sum(global),
        answered,
        "global tier counters must cover every answer exactly once: {global:?}"
    );
    assert_eq!(
        global.fallback,
        global.deadline_degraded + global.breaker_degraded + global.failure_degraded,
        "every fallback answer must carry exactly one degradation reason"
    );
    let by_version: u64 = engine.version_stats().iter().map(|&(_, s)| sum(s)).sum();
    assert_eq!(
        by_version, answered,
        "per-version accounting must be exact across swaps"
    );
    let by_scenario: u64 = engine.scenario_stats().iter().map(|&(_, s)| sum(s)).sum();
    assert_eq!(
        by_scenario, answered,
        "per-scenario accounting must be exact"
    );
    assert!(
        engine.version_stats().len() > 1,
        "the swaps must have spread answers across versions"
    );
    // The mix must genuinely exercise the whole ladder, or the identities
    // above prove less than they claim.
    for (tier, count) in [
        ("model", global.model),
        ("quantized", global.quantized),
        ("hybrid", global.hybrid),
        ("cache", global.cache),
        ("fallback", global.fallback),
    ] {
        assert!(count > 0, "tier {tier} was never exercised: {global:?}");
    }
}

#[test]
fn every_query_gets_exactly_one_typed_reply_across_five_tiers_and_swaps() {
    for seed in [7u64, 0xC0FFEE] {
        let plan = Arc::new(FaultPlan::mixed(seed, 0.25));
        let (engine, _) = build_engine(
            ResilienceConfig {
                quantized: Some(eager_quant()),
                ..ResilienceConfig::default()
            },
            Some(plan.clone()),
            true,
        );
        let engine = Arc::new(engine);
        let server = Server::start_with_faults(
            engine.clone(),
            ServerConfig {
                workers: 2,
                max_batch: 4,
                max_queue: 256,
                batch_timeout: Duration::from_millis(1),
            },
            Some(plan.clone()),
        );
        // Online hot swaps race the in-flight traffic throughout.
        let swapper = {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let clone = engine.current_model().model().clone();
                    engine.install_model(clone).expect("compatible swap");
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        // Submit budget classes in phases: a batch inherits the tightest
        // deadline of its members, so interleaving classes would drag
        // every coalesced batch down to the expired class.
        let mut accepted = Vec::new();
        let qs = queries(48);
        let budgets = [
            None,                         // model / cache tier
            Some(Duration::from_secs(5)), // quantized budget trigger
            Some(Duration::ZERO),         // expired on arrival → hybrid
        ];
        for (class, budget) in budgets.into_iter().enumerate() {
            for q in &qs[class * 16..(class + 1) * 16] {
                match server.submit_with_deadline(*q, budget) {
                    Ok(h) => accepted.push(h),
                    Err(ServeError::Overloaded { .. }) => {}
                    Err(other) => panic!("seed {seed}: unexpected submit error: {other}"),
                }
            }
        }
        let n_accepted = accepted.len() as u64;
        for (k, h) in accepted.into_iter().enumerate() {
            match h.recv_timeout(Duration::from_secs(30)) {
                Ok(pred) => {
                    assert!(
                        (0.0..=5.5).contains(&pred.rating),
                        "seed {seed}, query {k}: rating {} out of range",
                        pred.rating
                    );
                }
                Err(ServeError::DeadlineExceeded)
                | Err(ServeError::WorkerLost)
                | Err(ServeError::CircuitOpen)
                | Err(ServeError::Injected { .. })
                | Err(ServeError::Model(_)) => {}
                Err(other) => panic!("seed {seed}, query {k}: unexpected error: {other}"),
            }
        }
        swapper.join().expect("swapper never panics");
        server.shutdown();
        assert_eq!(
            server.stats().completed,
            n_accepted,
            "seed {seed}: every accepted query answered exactly once"
        );
        let tiers = engine.tier_stats();
        assert!(
            tiers.quantized > 0,
            "seed {seed}: thin budgets must exercise the quantized tier: {tiers:?}"
        );
        assert!(
            tiers.hybrid > 0,
            "seed {seed}: expired deadlines must exercise the hybrid tier: {tiers:?}"
        );
    }
}
