//! Durable serving state: snapshots + WAL replay = crash recovery
//! (DESIGN.md §15).
//!
//! A WAL-attached [`ServeEngine`] logs every state transition before it
//! takes effect: serve-time ratings, holdout diversions, model promotions
//! and demotions. This module closes the loop:
//!
//! * [`write_snapshot`] captures the whole serving state — the insert
//!   log, the online loop's routing state, and the model lineage — into
//!   one checksummed snapshot under the `serving` checkpoint lineage,
//!   logs a `SnapshotBarrier{covered}` record, and truncates WAL segments
//!   the snapshot fully covers. Without snapshots the log only grows;
//!   with them it stays bounded.
//! * [`recover`] rebuilds a crashed engine from the newest snapshot plus
//!   the WAL tail: replays rating edges in their original commit order
//!   (bit-identical CSR ⇒ bit-identical deterministic context samples),
//!   reloads promoted weights from the checkpoint lineages named by the
//!   `ModelPromoted` records, reinstates the demotion history, and
//!   re-routes the online loop's holdout slice exactly as the crashed
//!   loop had it.
//!
//! The recovery contract, proven by `tests/wal_recovery.rs` at every
//! kill point: **no acknowledged write is lost** (at `Group`/`Strict`
//! durability) and the recovered engine answers **bit-identically** to
//! an engine that never crashed.

use crate::engine::{EngineConfig, LineageSnapshot, ServeEngine, SlotSource};
use crate::frozen::FrozenModel;
use crate::online::{OnlineConfig, OnlineLoop, REJECTED_TAG};
use hire_ckpt::{CheckpointStore, PayloadReader, PayloadWriter, SNAPSHOT_EXT};
use hire_data::Dataset;
use hire_error::{HireError, HireResult};
use hire_graph::{BipartiteGraph, Rating};
use hire_wal::{Wal, WalOptions, WalRecord};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// Checkpoint lineage tag for whole-serving-state snapshots. The steps
/// key of each snapshot is the WAL LSN it covers.
pub const SERVING_TAG: &str = "serving";

/// Serving-snapshot payload format version.
const SNAPSHOT_FORMAT: u8 = 1;

/// Everything a serving snapshot persists (decoded form).
struct ServingSnapshot {
    /// WAL LSN the snapshot is current as of: every record with a lower
    /// LSN is reflected in the fields below.
    covered: u64,
    /// The engine's full insert log, in commit order.
    ratings: Vec<Rating>,
    /// Online-loop cursor (ratings consumed).
    cursor: usize,
    /// Online-loop round counter.
    round: u64,
    /// Arrival indices ever diverted to the holdout slice.
    marked: BTreeSet<usize>,
    /// Model lineage with reload sources.
    lineage: LineageSnapshot,
}

fn encode_source(w: &mut PayloadWriter, source: &SlotSource) {
    match source {
        SlotSource::Base => w.put_u8(0),
        SlotSource::Checkpoint { tag, steps } => {
            w.put_u8(1);
            w.put_u64(*steps);
            let bytes = tag.as_bytes();
            w.put_u32(bytes.len() as u32);
            for b in bytes {
                w.put_u8(*b);
            }
        }
    }
}

fn decode_source(r: &mut PayloadReader<'_>) -> HireResult<SlotSource> {
    match r.take_u8("source kind")? {
        0 => Ok(SlotSource::Base),
        1 => {
            let steps = r.take_u64("source steps")?;
            let len = r.take_u32("source tag len")? as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                bytes.push(r.take_u8("source tag byte")?);
            }
            let tag = String::from_utf8(bytes).map_err(|_| {
                HireError::invalid_data("ServingSnapshot", "source tag is not UTF-8")
            })?;
            Ok(SlotSource::Checkpoint { tag, steps })
        }
        other => Err(HireError::invalid_data(
            "ServingSnapshot",
            format!("unknown slot source kind {other}"),
        )),
    }
}

fn encode_snapshot(snap: &ServingSnapshot) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u8(SNAPSHOT_FORMAT);
    w.put_u64(snap.covered);
    w.put_u64(snap.ratings.len() as u64);
    for r in &snap.ratings {
        w.put_u64(r.user as u64);
        w.put_u64(r.item as u64);
        w.put_f32(r.value);
    }
    w.put_u64(snap.cursor as u64);
    w.put_u64(snap.round);
    w.put_u64(snap.marked.len() as u64);
    for &idx in &snap.marked {
        w.put_u64(idx as u64);
    }
    w.put_u64(snap.lineage.history.len() as u64);
    for (source, version) in &snap.lineage.history {
        encode_source(&mut w, source);
        w.put_u64(*version);
    }
    encode_source(&mut w, &snap.lineage.current.0);
    w.put_u64(snap.lineage.current.1);
    w.put_u64(snap.lineage.next_version);
    w.finish()
}

fn decode_snapshot(payload: &[u8], label: &str) -> HireResult<ServingSnapshot> {
    let mut r = PayloadReader::new(payload, label);
    let format = r.take_u8("snapshot format")?;
    if format != SNAPSHOT_FORMAT {
        return Err(HireError::invalid_data(
            "ServingSnapshot",
            format!("unsupported snapshot format {format}"),
        ));
    }
    let covered = r.take_u64("covered lsn")?;
    let n = r.take_len("rating count")?;
    let mut ratings = Vec::with_capacity(n);
    for _ in 0..n {
        ratings.push(Rating {
            user: r.take_u64("rating user")? as usize,
            item: r.take_u64("rating item")? as usize,
            value: r.take_f32("rating value")?,
        });
    }
    let cursor = r.take_u64("cursor")? as usize;
    let round = r.take_u64("round")?;
    let marks = r.take_len("mark count")?;
    let mut marked = BTreeSet::new();
    for _ in 0..marks {
        marked.insert(r.take_u64("mark index")? as usize);
    }
    let slots = r.take_len("history len")?;
    let mut history = Vec::with_capacity(slots);
    for _ in 0..slots {
        let source = decode_source(&mut r)?;
        let version = r.take_u64("history version")?;
        history.push((source, version));
    }
    let current_source = decode_source(&mut r)?;
    let current_version = r.take_u64("current version")?;
    let next_version = r.take_u64("next version")?;
    r.expect_exhausted()?;
    Ok(ServingSnapshot {
        covered,
        ratings,
        cursor,
        round,
        marked,
        lineage: LineageSnapshot {
            history,
            current: (current_source, current_version),
            next_version,
        },
    })
}

/// Captures the engine + online-loop state into a durable snapshot under
/// the [`SERVING_TAG`] lineage, logs a covering `SnapshotBarrier`, and
/// truncates every WAL segment the snapshot fully covers. Returns the
/// covered LSN.
///
/// Lock order (the one `crate` convention that prevents deadlock):
/// online state → engine write order → engine install order. Holding all
/// three pins the WAL — no rating, mark, promotion, or demotion record
/// can land between capturing the state and reading the covered LSN.
pub fn write_snapshot(engine: &ServeEngine, online: &OnlineLoop) -> HireResult<u64> {
    let wal = engine.wal().cloned().ok_or_else(|| {
        HireError::invalid_data("durable", "write_snapshot needs a WAL-attached engine")
    })?;
    let Some(dir) = online.config().checkpoint_dir.clone() else {
        return Err(HireError::invalid_data(
            "durable",
            "write_snapshot needs OnlineConfig::checkpoint_dir",
        ));
    };
    let keep = online.config().keep_last.max(1);
    let (payload, covered, cursor, round) = {
        let state = online.freeze_state();
        let (ratings, lineage, covered) = engine.durable_capture();
        let snap = ServingSnapshot {
            covered,
            ratings,
            cursor: state.cursor,
            round: state.round,
            marked: state.marked.clone(),
            lineage,
        };
        (
            encode_snapshot(&snap),
            covered,
            state.cursor as u64,
            state.round,
        )
    };
    let store = CheckpointStore::open_tagged(&dir, SERVING_TAG, keep)?;
    store.save_raw(covered, &payload)?;
    // The barrier is logged only after the snapshot is durable: a crash
    // between the two leaves a barrier-less snapshot (recovery still uses
    // it — the steps key carries the covered LSN), never a barrier whose
    // snapshot does not exist.
    wal.append_durable(&WalRecord::SnapshotBarrier {
        covered: Some(covered),
        cursor,
        round,
    })
    .map_err(HireError::from)?;
    wal.truncate_covered(covered).map_err(HireError::from)?;
    Ok(covered)
}

/// The result of [`recover`]: a rebuilt engine + online loop, plus what
/// recovery found.
pub struct Recovered {
    /// The rebuilt serving engine, WAL re-attached (new writes append to
    /// the same log).
    pub engine: Arc<ServeEngine>,
    /// The rebuilt online loop: same cursor, round, and holdout slice the
    /// crashed loop had durably recorded.
    pub online: Arc<OnlineLoop>,
    /// Total ratings in the rebuilt insert log (snapshot + WAL replay).
    pub ratings: usize,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: usize,
    /// Covered LSN of the snapshot recovery started from (0 = no
    /// snapshot, full-log replay).
    pub snapshot_covered: u64,
    /// Torn-tail bytes the WAL open repaired away.
    pub torn_bytes: u64,
}

/// Rebuilds a serving engine + online loop after a crash, from the newest
/// [`SERVING_TAG`] snapshot (if any) plus the surviving WAL records.
///
/// `base_model`, `dataset`, `base_graph`, and the configs must be the
/// same the crashed engine started from — they are the deterministic
/// inputs the log's deltas apply to. Returns a typed error when the log
/// is corrupt mid-stream, when a record sequence is inconsistent (e.g. a
/// demotion with no history), or when the incumbent's checkpointed
/// weights cannot be reloaded. History slots whose weights fail to load
/// are dropped with a warning (losing a demotion target, never the
/// incumbent).
pub fn recover(
    base_model: FrozenModel,
    dataset: Arc<Dataset>,
    base_graph: Arc<BipartiteGraph>,
    engine_config: EngineConfig,
    online_config: OnlineConfig,
    wal_dir: impl AsRef<Path>,
    wal_opts: WalOptions,
) -> HireResult<Recovered> {
    let (wal, wal_recovery) = Wal::open(wal_dir.as_ref(), wal_opts).map_err(HireError::from)?;
    let wal = Arc::new(wal);

    // ── 1. Newest serving snapshot, if one was ever written ───────────
    let mut covered = 0u64;
    let mut ratings: Vec<Rating> = Vec::new();
    let mut cursor = 0usize;
    let mut round = 0u64;
    let mut marked: BTreeSet<usize> = BTreeSet::new();
    let mut lineage = LineageSnapshot {
        history: Vec::new(),
        current: (SlotSource::Base, 1),
        next_version: 2,
    };
    if let Some(dir) = &online_config.checkpoint_dir {
        if dir.exists() {
            let store =
                CheckpointStore::open_tagged(dir, SERVING_TAG, online_config.keep_last.max(1))?;
            if let Some((steps, payload)) = store.load_latest_raw()? {
                let snap = decode_snapshot(&payload, "serving snapshot")?;
                if snap.covered != steps {
                    return Err(HireError::invalid_data(
                        "durable",
                        format!(
                            "serving snapshot self-reports covered LSN {} under steps key {steps}",
                            snap.covered
                        ),
                    ));
                }
                covered = snap.covered;
                ratings = snap.ratings;
                cursor = snap.cursor;
                round = snap.round;
                marked = snap.marked;
                lineage = snap.lineage;
            }
        }
    }

    // ── 2. Fold the WAL tail over the snapshot ────────────────────────
    // Records below the covered LSN are already reflected in the snapshot
    // (they survive on disk only until truncation catches up).
    let mut records_replayed = 0usize;
    for (lsn, record) in &wal_recovery.records {
        if *lsn < covered {
            continue;
        }
        records_replayed += 1;
        match record {
            WalRecord::Rating { user, item, value } => ratings.push(Rating {
                user: *user as usize,
                item: *item as usize,
                value: *value,
            }),
            WalRecord::HoldoutMark { index } => {
                marked.insert(*index as usize);
            }
            WalRecord::ModelPromoted { .. } | WalRecord::Demoted { .. } => {
                fold_model_event(&mut lineage, record)?;
            }
            WalRecord::SnapshotBarrier {
                cursor: c,
                round: r,
                ..
            } => {
                cursor = *c as usize;
                round = *r;
            }
        }
    }

    // ── 3. Rebuild the engine: base graph + replayed edges ────────────
    // One copy-on-write commit per rating, in log order, retraces the
    // crashed engine's epoch sequence — the final CSR is bit-identical,
    // so every deterministic context sample (and therefore every answer)
    // matches.
    let engine = Arc::new(
        ServeEngine::with_shared_graph(
            base_model.clone(),
            dataset.clone(),
            base_graph,
            engine_config,
        )
        .with_wal(wal),
    );
    for rating in &ratings {
        engine.replay_rating(*rating);
    }

    // ── 4. Reload the model lineage from its checkpoint sources ───────
    let ckpt_dir = online_config.checkpoint_dir.clone();
    restore_from_lineage(
        &engine,
        &lineage,
        &base_model,
        &dataset,
        ckpt_dir.as_deref(),
    )?;

    // ── 5. Sweep partial rejected-candidate artifacts ─────────────────
    if let Some(dir) = &ckpt_dir {
        prune_partial_rejected(dir);
    }

    // ── 6. Rebuild the online loop's routing state ────────────────────
    let total = ratings.len();
    let online = Arc::new(OnlineLoop::recovered(
        engine.clone(),
        online_config,
        cursor,
        round,
        marked,
        &ratings,
    ));
    Ok(Recovered {
        engine,
        online,
        ratings: total,
        records_replayed,
        snapshot_covered: covered,
        torn_bytes: wal_recovery.truncated_bytes,
    })
}

/// Applies one `ModelPromoted` / `Demoted` WAL record to a lineage being
/// rebuilt. Returns `Ok(false)` (untouched) for every other record type.
///
/// Both records are logged with the engine's install order held, so a
/// valid log sequences versions exactly: a promotion/demotion record must
/// carry the lineage's `next_version`. A record that does not — or a
/// demotion folding onto an empty history — means the log and the
/// snapshot disagree, and recovery must stop rather than serve a lineage
/// it cannot prove.
pub fn fold_model_event(lineage: &mut LineageSnapshot, record: &WalRecord) -> HireResult<bool> {
    match record {
        WalRecord::ModelPromoted {
            version,
            tag,
            steps,
        } => {
            // The swap itself may not have completed before the crash —
            // the record is durable, so recovery rolls it forward (the
            // weights were checkpointed before the record was logged).
            if *version != lineage.next_version {
                return Err(HireError::invalid_data(
                    "durable",
                    format!(
                        "promotion record for v{version} does not follow next version {}",
                        lineage.next_version
                    ),
                ));
            }
            let displaced = std::mem::replace(
                &mut lineage.current,
                (
                    SlotSource::Checkpoint {
                        tag: tag.clone(),
                        steps: *steps,
                    },
                    *version,
                ),
            );
            lineage.history.push(displaced);
            if lineage.history.len() > 4 {
                lineage.history.remove(0);
            }
            lineage.next_version = *version + 1;
            Ok(true)
        }
        WalRecord::Demoted { new_version } => {
            if *new_version != lineage.next_version {
                return Err(HireError::invalid_data(
                    "durable",
                    format!(
                        "demotion record for v{new_version} does not follow next version {}",
                        lineage.next_version
                    ),
                ));
            }
            let restored = lineage.history.pop().ok_or_else(|| {
                HireError::invalid_data("durable", "demotion record with an empty history")
            })?;
            let displaced = std::mem::replace(&mut lineage.current, (restored.0, *new_version));
            lineage.history.push(displaced);
            lineage.next_version = *new_version + 1;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Loads the weights every slot of `lineage` names and reinstates the
/// lineage on `engine`. `Base` sources resolve to `base_model`;
/// `Checkpoint` sources load `{tag}-{steps:012}.hckpt` from `ckpt_dir`.
/// A history slot whose weights fail to load is dropped with a warning
/// (a lost demotion target degrades gracefully); an unloadable incumbent
/// is a typed error — recovery cannot serve weights it does not have.
pub fn restore_from_lineage(
    engine: &ServeEngine,
    lineage: &LineageSnapshot,
    base_model: &FrozenModel,
    dataset: &Dataset,
    ckpt_dir: Option<&Path>,
) -> HireResult<()> {
    let resolve = |source: &SlotSource| -> HireResult<FrozenModel> {
        match source {
            SlotSource::Base => Ok(base_model.clone()),
            SlotSource::Checkpoint { tag, steps } => {
                let dir = ckpt_dir.ok_or_else(|| {
                    HireError::invalid_data(
                        "durable",
                        "lineage references a checkpoint but no checkpoint_dir is configured",
                    )
                })?;
                let path = dir.join(format!("{tag}-{steps:012}.{SNAPSHOT_EXT}"));
                FrozenModel::from_snapshot_file(&path, dataset, base_model.config())
            }
        }
    };
    let mut history = Vec::with_capacity(lineage.history.len());
    for (source, version) in &lineage.history {
        match resolve(source) {
            Ok(model) => history.push((model, source.clone(), *version)),
            Err(err) => eprintln!("recovery: dropping history slot v{version}: {err}"),
        }
    }
    let current_model = resolve(&lineage.current.0)?;
    engine.restore_lineage(
        history,
        (current_model, lineage.current.0.clone(), lineage.current.1),
        lineage.next_version,
    );
    Ok(())
}

/// Removes partial rejected-candidate artifacts a crash can strand in the
/// checkpoint dir: a `rejected-*` weights snapshot without its eval
/// report, an eval report without its snapshot, and interrupted-write
/// `.tmp` leftovers of the rejected lineage. (The online loop writes the
/// snapshot first, then the report — a crash between the two leaves the
/// pair half-made; neither half is referenced by the WAL, so sweeping is
/// safe.) Best-effort: I/O errors leave files for the next recovery.
fn prune_partial_rejected(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("{REJECTED_TAG}-");
    let snap_ext = format!(".{SNAPSHOT_EXT}");
    let mut snaps: BTreeSet<String> = BTreeSet::new();
    let mut evals: BTreeSet<String> = BTreeSet::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix(&prefix) else {
            continue;
        };
        if name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        } else if let Some(steps) = stem.strip_suffix(&snap_ext) {
            snaps.insert(steps.to_string());
        } else if let Some(steps) = stem.strip_suffix(".eval.json") {
            evals.insert(steps.to_string());
        }
    }
    for orphan in snaps.symmetric_difference(&evals) {
        let half = if snaps.contains(orphan) {
            dir.join(format!("{prefix}{orphan}{snap_ext}"))
        } else {
            dir.join(format!("{prefix}{orphan}.eval.json"))
        };
        let _ = std::fs::remove_file(half);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_payload_round_trips() {
        let snap = ServingSnapshot {
            covered: 42,
            ratings: vec![
                Rating {
                    user: 3,
                    item: 9,
                    value: 4.5,
                },
                Rating {
                    user: 0,
                    item: 1,
                    value: f32::from_bits(0x7FC0_0001), // NaN payload survives
                },
            ],
            cursor: 2,
            round: 7,
            marked: [0usize, 5, 9].into_iter().collect(),
            lineage: LineageSnapshot {
                history: vec![
                    (SlotSource::Base, 1),
                    (
                        SlotSource::Checkpoint {
                            tag: "candidate".into(),
                            steps: 3,
                        },
                        2,
                    ),
                ],
                current: (
                    SlotSource::Checkpoint {
                        tag: "candidate".into(),
                        steps: 5,
                    },
                    4,
                ),
                next_version: 5,
            },
        };
        let payload = encode_snapshot(&snap);
        let back = decode_snapshot(&payload, "test").expect("decode");
        assert_eq!(back.covered, snap.covered);
        assert_eq!(back.ratings.len(), 2);
        assert_eq!(back.ratings[0].user, 3);
        assert_eq!(
            back.ratings[1].value.to_bits(),
            snap.ratings[1].value.to_bits()
        );
        assert_eq!(back.cursor, 2);
        assert_eq!(back.round, 7);
        assert_eq!(back.marked, snap.marked);
        assert_eq!(back.lineage, snap.lineage);
    }

    #[test]
    fn truncated_snapshot_payload_is_typed_error() {
        let snap = ServingSnapshot {
            covered: 1,
            ratings: vec![Rating {
                user: 1,
                item: 2,
                value: 3.0,
            }],
            cursor: 1,
            round: 1,
            marked: BTreeSet::new(),
            lineage: LineageSnapshot {
                history: Vec::new(),
                current: (SlotSource::Base, 1),
                next_version: 2,
            },
        };
        let payload = encode_snapshot(&snap);
        for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
            assert!(
                decode_snapshot(&payload[..cut], "test").is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn prune_removes_orphan_halves_and_keeps_pairs() {
        let dir = std::env::temp_dir().join(format!("hire-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let touch = |name: &str| std::fs::write(dir.join(name), b"x").expect("touch");
        touch("rejected-000000000001.hckpt");
        touch("rejected-000000000001.eval.json");
        touch("rejected-000000000002.hckpt"); // crash before its report
        touch("rejected-000000000003.eval.json"); // report without weights
        touch("rejected-000000000004.hckpt.tmp"); // interrupted write
        touch("candidate-000000000009.hckpt"); // other lineage: untouched
        prune_partial_rejected(&dir);
        let left: BTreeSet<String> = std::fs::read_dir(&dir)
            .expect("read")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert!(left.contains("rejected-000000000001.hckpt"));
        assert!(left.contains("rejected-000000000001.eval.json"));
        assert!(left.contains("candidate-000000000009.hckpt"));
        assert!(!left.contains("rejected-000000000002.hckpt"));
        assert!(!left.contains("rejected-000000000003.eval.json"));
        assert!(!left.contains("rejected-000000000004.hckpt.tmp"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
