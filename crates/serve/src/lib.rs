//! # hire-serve
//!
//! Online inference for the HIRE reproduction — the first subsystem of the
//! repo that never builds an autograd tape. Five layers:
//!
//! - [`FrozenModel`] — a trained [`hire_core::HireModel`] exported to plain
//!   [`hire_tensor::NdArray`] weights (or loaded from a `hire-ckpt`
//!   snapshot), with a tape-free forward that is bit-identical to the live
//!   model, a batched variant for micro-batching, and a deadline-aware
//!   variant that abandons work for queries that already timed out.
//! - [`ContextCache`] — a capacity-bounded LRU memoizing sampled
//!   [`hire_data::PredictionContext`]s per `(user, item, strategy, n, m)`
//!   key, with explicit invalidation when new rating edges arrive.
//! - [`ServeEngine`] — glues frozen model, dataset, rating graph, sampler
//!   and cache into a [`Predictor`]: resolve context (cache or sample),
//!   group same-shape queries, run one batched forward — wrapped in the
//!   five-tier degradation ladder (DESIGN.md §13): per-batch deadlines, a
//!   [`CircuitBreaker`] around the model tier, seeded-backoff retries, an
//!   int8/f16 [`QuantizedModel`] mid-tier for thin deadline budgets and
//!   half-open probes, a trained [`hire_core::HybridModel`] mid-tier, and
//!   a graph-statistics fallback predictor. Every [`Answer`] is tagged
//!   with the tier that produced it ([`ServedBy`]).
//! - [`QuantizedModel`] — a [`FrozenModel`] quantized post-training to
//!   symmetric-per-tensor int8 (or f16), dequantized on the fly inside the
//!   matmul kernels; rebuilt automatically on every model hot swap.
//! - [`CircuitBreaker`] — sliding-window failure-rate breaker
//!   (closed / open / half-open) that sheds model-tier load when the
//!   frozen forward is misbehaving.
//! - [`Server`] — a micro-batching worker pool: queries are submitted over
//!   channels (optionally with per-query deadline budgets), coalesced up to
//!   `max_batch` while respecting the tightest deadline in the batch,
//!   executed on `workers` threads, with bounded-queue backpressure
//!   ([`ServeError::Overloaded`]), panic isolation
//!   ([`ServeError::WorkerLost`]), typed deadline replies
//!   ([`ServeError::DeadlineExceeded`]), and seeded-backoff retries
//!   ([`Server::predict_with_retry`]).
//!
//! A sixth layer closes the loop from serving back to training:
//! [`OnlineLoop`] / [`OnlineTrainer`] fine-tune a copy of the serving
//! model on freshly inserted ratings in a crash-isolated background
//! thread, score the candidate against the incumbent on a held-out slice
//! (overall and per cold-start scenario — [`ColdScenario`]), and promote
//! only non-regressing candidates via an atomic versioned hot swap
//! ([`ServeEngine::install_model`], [`ModelSlot`], [`ModelVersion`]).
//!
//! Fault injection for all of the above lives in the `hire-chaos` crate;
//! the serve sites are `server.batch`, `engine.resolve`, `engine.forward`,
//! `quant.forward`, `hybrid.forward`, `ckpt.decode` (see `tests/chaos.rs`)
//! and the online sites `trainer.step`, `online.shadow_eval`,
//! `online.swap` (see `tests/online_chaos.rs`).

pub mod breaker;
pub mod cache;
pub mod durable;
pub mod engine;
pub mod frozen;
pub mod online;
pub mod quant;
pub mod server;

pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use cache::{CacheKey, CacheStats, CachedContext, ContextCache, ExportedContext};
pub use durable::{
    fold_model_event, recover, restore_from_lineage, write_snapshot, Recovered, SERVING_TAG,
};
pub use engine::{
    ColdScenario, EngineConfig, LineageSnapshot, ModelSlot, PreparedInstall, QuantTierConfig,
    ResilienceConfig, ServeEngine, SlotSource, TierStats,
};
pub use frozen::FrozenModel;
pub use online::{
    EvalReport, OnlineConfig, OnlineLoop, OnlineTrainer, RoundOutcome, ScenarioEval, CANDIDATE_TAG,
    REJECTED_TAG,
};
pub use quant::QuantizedModel;
pub use server::{
    Answer, ModelVersion, Prediction, PredictionHandle, Predictor, RatingQuery, RetryPolicy,
    ServeError, ServedBy, Server, ServerConfig, ServerStats,
};
