//! # hire-serve
//!
//! Online inference for the HIRE reproduction — the first subsystem of the
//! repo that never builds an autograd tape. Four layers:
//!
//! - [`FrozenModel`] — a trained [`hire_core::HireModel`] exported to plain
//!   [`hire_tensor::NdArray`] weights (or loaded from a `hire-ckpt`
//!   snapshot), with a tape-free forward that is bit-identical to the live
//!   model and a batched variant for micro-batching.
//! - [`ContextCache`] — a capacity-bounded LRU memoizing sampled
//!   [`hire_data::PredictionContext`]s per `(user, item, strategy, n, m)`
//!   key, with explicit invalidation when new rating edges arrive.
//! - [`ServeEngine`] — glues frozen model, dataset, rating graph, sampler
//!   and cache into a [`Predictor`]: resolve context (cache or sample),
//!   group same-shape queries, run one batched forward.
//! - [`Server`] — a micro-batching worker pool: queries are submitted over
//!   channels, coalesced up to `max_batch`, executed on `workers` threads,
//!   with bounded-queue backpressure ([`ServeError::Overloaded`]) and panic
//!   isolation ([`ServeError::WorkerLost`]).

pub mod cache;
pub mod engine;
pub mod frozen;
pub mod server;

pub use cache::{CacheKey, CacheStats, CachedContext, ContextCache};
pub use engine::{EngineConfig, ServeEngine};
pub use frozen::FrozenModel;
pub use server::{
    Prediction, PredictionHandle, Predictor, RatingQuery, ServeError, Server, ServerConfig,
    ServerStats,
};
