//! Micro-batching worker pool.
//!
//! Queries enter a bounded queue; worker threads coalesce up to
//! `max_batch` of them (waiting at most `batch_timeout` for stragglers,
//! and never past the tightest per-query deadline in the batch) and
//! execute one batched predictor call. Backpressure is explicit: a full
//! queue rejects the submission with [`ServeError::Overloaded`] instead of
//! buffering unboundedly. A panicking predictor poisons only the in-flight
//! batch — its callers receive [`ServeError::WorkerLost`] and the worker
//! thread survives to serve the next batch. A query that is already past
//! its deadline when a worker picks it up is answered
//! [`ServeError::DeadlineExceeded`] without spending a forward on it —
//! accepted queries are always answered, never silently late.

use hire_chaos::{sites, FaultPlan, InjectedFault};
use hire_core::{Backoff, BackoffConfig};
use hire_error::HireError;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One rating query: "what would `user` rate `item`?"
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RatingQuery {
    /// User index.
    pub user: usize,
    /// Item index.
    pub item: usize,
}

/// Monotonically increasing identifier of an installed serving model.
/// Version 1 is the model the engine was built with; every hot swap
/// (promotion *or* demotion) installs the next version — numbers are never
/// reused, so a reply's version pins exactly which weights produced it.
pub type ModelVersion = u64;

/// Which tier of the degradation ladder produced an answer.
/// Fidelity order: `Model > Quantized > Hybrid > Cache > Fallback`
/// (DESIGN.md §13). `Cache` sits out of trigger order — exact memos are
/// consulted first as a fast path — but a memo replays a *previous*
/// model answer, so in fidelity terms it ranks below a live mid-tier
/// forward on fresh weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// A fresh frozen-model forward.
    Model,
    /// A forward through the int8/f16 quantized model (deadline budget
    /// too tight for the full model, or the breaker is half-open and out
    /// of probe budget).
    Quantized,
    /// The trained bias + content hybrid predictor (both model tiers
    /// unavailable).
    Hybrid,
    /// The exact per-entry prediction memo in the context cache.
    Cache,
    /// The graph-statistics fallback predictor (degraded answer).
    Fallback,
}

impl ServedBy {
    /// Stable lowercase label for logs and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::Model => "model",
            ServedBy::Quantized => "quantized",
            ServedBy::Hybrid => "hybrid",
            ServedBy::Cache => "cache",
            ServedBy::Fallback => "fallback",
        }
    }
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted rating, in the dataset's rating range.
    pub rating: f32,
    /// Submit-to-completion latency (includes queueing and batching).
    pub latency: Duration,
    /// The tier that produced the answer.
    pub served_by: ServedBy,
    /// The model version the batch was pinned to when it was answered
    /// (0 for predictors that don't version their models).
    pub version: ModelVersion,
}

/// One tier-tagged answer from a [`Predictor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// Predicted rating.
    pub rating: f32,
    /// The tier that produced it.
    pub served_by: ServedBy,
    /// The model version the answering batch was pinned to (0 for
    /// unversioned predictors).
    pub version: ModelVersion,
}

/// Serving errors.
#[derive(Debug)]
pub enum ServeError {
    /// The queue is full; retry later (backpressure).
    Overloaded {
        /// Jobs queued when the submission was rejected.
        queue_len: usize,
        /// The configured queue bound.
        max_queue: usize,
    },
    /// The worker executing this query panicked or disconnected.
    WorkerLost,
    /// The server is draining; no new queries are accepted.
    ShuttingDown,
    /// The query's deadline budget elapsed before an answer was produced.
    DeadlineExceeded,
    /// The model tier's circuit breaker is open and no fallback tier is
    /// configured to degrade to.
    CircuitOpen,
    /// A chaos-injected transient fault (only reachable with a
    /// [`FaultPlan`] installed and resilience disabled).
    Injected {
        /// The fault site that fired.
        site: &'static str,
    },
    /// An engine invariant broke — e.g. a ladder walk finished with a
    /// query still unanswered. A bug, but surfaced as a typed reply so it
    /// degrades one batch instead of killing a worker.
    Internal {
        /// What invariant broke.
        detail: String,
    },
    /// The model or context pipeline failed.
    Model(HireError),
}

impl ServeError {
    /// Whether a retry may plausibly succeed: lost workers, backpressure,
    /// and injected faults are transient; everything else is not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. } | ServeError::WorkerLost | ServeError::Injected { .. }
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_len,
                max_queue,
            } => write!(f, "server overloaded: {queue_len} queued (max {max_queue})"),
            ServeError::WorkerLost => write!(f, "worker lost (panicked or disconnected)"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::CircuitOpen => write!(f, "model circuit breaker is open"),
            ServeError::Injected { site } => write!(f, "injected fault at `{site}`"),
            ServeError::Internal { detail } => {
                write!(f, "internal serving invariant broken: {detail}")
            }
            ServeError::Model(e) => write!(f, "{e}"),
        }
    }
}

/// The one place batch errors are duplicated for fan-out to every caller
/// of a failed batch. `HireError` is not `Clone`, so the `Model` payload
/// is re-wrapped preserving its message.
impl Clone for ServeError {
    fn clone(&self) -> Self {
        match self {
            ServeError::Overloaded {
                queue_len,
                max_queue,
            } => ServeError::Overloaded {
                queue_len: *queue_len,
                max_queue: *max_queue,
            },
            ServeError::WorkerLost => ServeError::WorkerLost,
            ServeError::ShuttingDown => ServeError::ShuttingDown,
            ServeError::DeadlineExceeded => ServeError::DeadlineExceeded,
            ServeError::CircuitOpen => ServeError::CircuitOpen,
            ServeError::Injected { site } => ServeError::Injected { site },
            ServeError::Internal { detail } => ServeError::Internal {
                detail: detail.clone(),
            },
            ServeError::Model(e) => {
                ServeError::Model(HireError::invalid_data("serve", e.to_string()))
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<InjectedFault> for ServeError {
    fn from(fault: InjectedFault) -> Self {
        ServeError::Injected { site: fault.site }
    }
}

/// Anything that can answer a batch of rating queries. Implemented by
/// [`crate::ServeEngine`]; tests inject slow/panicking stand-ins.
pub trait Predictor: Send + Sync {
    /// Predicts a rating per query, in order.
    fn predict_batch(&self, queries: &[RatingQuery]) -> Result<Vec<f32>, ServeError>;

    /// Deadline-aware, tier-tagged variant: `deadline` is the tightest
    /// per-query deadline in the batch (None = unbounded). The default
    /// delegates to [`Predictor::predict_batch`] and tags every answer
    /// [`ServedBy::Model`].
    fn predict_batch_tagged(
        &self,
        queries: &[RatingQuery],
        deadline: Option<Instant>,
    ) -> Result<Vec<Answer>, ServeError> {
        let _ = deadline;
        Ok(self
            .predict_batch(queries)?
            .into_iter()
            .map(|rating| Answer {
                rating,
                served_by: ServedBy::Model,
                version: 0,
            })
            .collect())
    }
}

/// Worker-pool settings.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum queries coalesced into one predictor call.
    pub max_batch: usize,
    /// Queue bound; submissions beyond it are rejected as `Overloaded`.
    pub max_queue: usize,
    /// How long a worker waits for more queries before running a partial
    /// batch.
    pub batch_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_batch: 8,
            max_queue: 1024,
            batch_timeout: Duration::from_millis(2),
        }
    }
}

/// How [`Server::predict_with_retry`] retries transient failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: usize,
    /// Delay schedule between attempts (see [`BackoffConfig`]).
    pub backoff: BackoffConfig,
    /// Base seed for the per-query jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: BackoffConfig::default(),
            seed: 0x48495245,
        }
    }
}

/// Lifetime counters for a server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries answered (successfully or with a typed error).
    pub completed: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Batches lost to predictor panics.
    pub worker_panics: u64,
    /// Queries answered `DeadlineExceeded` because their budget elapsed
    /// before a worker could run them.
    pub deadline_expired: u64,
}

struct Job {
    query: RatingQuery,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    config: ServerConfig,
    faults: Option<Arc<FaultPlan>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    worker_panics: AtomicU64,
    deadline_expired: AtomicU64,
}

/// Recovers from a poisoned mutex: the shared state holds plain data that
/// stays consistent even if a holder panicked mid-critical-section.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// An in-flight query: wait on it for the prediction.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictionHandle {
    /// Blocks until the query is answered. A dropped worker surfaces as
    /// [`ServeError::WorkerLost`], never a hang.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Bounded wait: blocks at most `timeout` for the answer. Elapsing the
    /// timeout returns [`ServeError::DeadlineExceeded`] without consuming
    /// the handle — the query is still in flight and a later
    /// `recv_timeout`/[`PredictionHandle::wait`] can still collect it.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Prediction, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }
}

/// The micro-batching server.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Spawns `config.workers` threads serving `predictor`.
    pub fn start(predictor: Arc<dyn Predictor>, config: ServerConfig) -> Server {
        Self::start_with_faults(predictor, config, None)
    }

    /// [`Server::start`] with a chaos [`FaultPlan`] hooked into the worker
    /// loop (`server.batch` site). Pass `None` for production serving —
    /// the hook then costs one null check per batch.
    pub fn start_with_faults(
        predictor: Arc<dyn Predictor>,
        config: ServerConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Server {
        let config = ServerConfig {
            workers: config.workers.max(1),
            max_batch: config.max_batch.max(1),
            max_queue: config.max_queue.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            config,
            faults,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = shared.clone();
                let predictor = predictor.clone();
                std::thread::spawn(move || worker_loop(shared, predictor))
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues a query; returns a handle to wait on. Rejects immediately
    /// when the queue is full or the server is draining — an accepted
    /// submission is always answered.
    pub fn submit(&self, query: RatingQuery) -> Result<PredictionHandle, ServeError> {
        self.submit_with_deadline(query, None)
    }

    /// [`Server::submit`] with a per-query deadline budget. A query whose
    /// budget elapses before a worker runs it is answered
    /// [`ServeError::DeadlineExceeded`]; one that expires mid-batch is
    /// degraded by the predictor where possible. Batch coalescing never
    /// waits past the tightest deadline in the batch.
    pub fn submit_with_deadline(
        &self,
        query: RatingQuery,
        budget: Option<Duration>,
    ) -> Result<PredictionHandle, ServeError> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        {
            let mut st = lock(&self.shared.state);
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.jobs.len() >= self.shared.config.max_queue {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    queue_len: st.jobs.len(),
                    max_queue: self.shared.config.max_queue,
                });
            }
            st.jobs.push_back(Job {
                query,
                enqueued: now,
                deadline: budget.map(|b| now + b),
                reply: tx,
            });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.cv.notify_one();
        Ok(PredictionHandle { rx })
    }

    /// Blocking predict: submit + wait.
    pub fn predict(&self, query: RatingQuery) -> Result<Prediction, ServeError> {
        self.submit(query)?.wait()
    }

    /// Blocking predict with seeded, jittered exponential-backoff retries
    /// on transient failures ([`ServeError::is_transient`]). The jitter
    /// stream is derived from `(policy.seed, query)`, so a replay retries
    /// at the same instants.
    pub fn predict_with_retry(
        &self,
        query: RatingQuery,
        policy: &RetryPolicy,
    ) -> Result<Prediction, ServeError> {
        let seed = policy.seed
            ^ (query.user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (query.item as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let mut backoff = Backoff::new(policy.backoff.clone(), seed);
        loop {
            match self.predict(query) {
                Err(e)
                    if e.is_transient()
                        && (backoff.attempt() as usize) + 1 < policy.max_attempts.max(1) =>
                {
                    std::thread::sleep(backoff.next_delay());
                }
                result => return result,
            }
        }
    }

    /// Stops accepting queries, drains the queue, and joins the workers.
    /// Every query accepted before the call is still answered. Idempotent.
    pub fn shutdown(&self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
            deadline_expired: self.shared.deadline_expired.load(Ordering::Relaxed),
        }
    }

    /// Jobs currently queued (excluding in-flight batches).
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.state).jobs.len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>, predictor: Arc<dyn Predictor>) {
    loop {
        // Wait for the first runnable job (or shutdown with an empty
        // queue). Jobs already past their deadline are answered
        // `DeadlineExceeded` here, without spending a forward.
        let mut st = lock(&shared.state);
        let first = 'first: loop {
            while let Some(job) = st.jobs.pop_front() {
                if job
                    .deadline
                    .is_some_and(|deadline| Instant::now() >= deadline)
                {
                    shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
                    continue;
                }
                break 'first job;
            }
            if st.shutdown {
                return;
            }
            st = shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        };

        // Coalesce up to max_batch jobs, waiting at most batch_timeout for
        // stragglers — but never past the tightest deadline already in the
        // batch. During shutdown, take whatever is queued and run.
        let mut tightest = first.deadline;
        let mut batch = vec![first];
        let mut wait_until = Instant::now() + shared.config.batch_timeout;
        if let Some(deadline) = tightest {
            wait_until = wait_until.min(deadline);
        }
        while batch.len() < shared.config.max_batch {
            if let Some(job) = st.jobs.pop_front() {
                if let Some(deadline) = job.deadline {
                    tightest = Some(tightest.map_or(deadline, |t| t.min(deadline)));
                    wait_until = wait_until.min(deadline);
                }
                batch.push(job);
                continue;
            }
            if st.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= wait_until {
                break;
            }
            let (guard, timeout) = shared
                .cv
                .wait_timeout(st, wait_until - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if timeout.timed_out() && st.jobs.is_empty() {
                break;
            }
        }
        drop(st);

        let queries: Vec<RatingQuery> = batch.iter().map(|j| j.query).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &shared.faults {
                plan.fire(sites::SERVER_BATCH)?;
            }
            predictor.predict_batch_tagged(&queries, tightest)
        }));
        match result {
            Ok(Ok(answers)) if answers.len() == batch.len() => {
                for (job, answer) in batch.iter().zip(&answers) {
                    // Count before replying so a caller that sees its
                    // answer also sees the counter include it.
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Ok(Prediction {
                        rating: answer.rating,
                        latency: job.enqueued.elapsed(),
                        served_by: answer.served_by,
                        version: answer.version,
                    }));
                }
            }
            Ok(Ok(answers)) => {
                // A misbehaving predictor returned the wrong number of
                // answers (e.g. a chaos `WrongShape` fault). Every caller
                // gets a typed error — truncating the zip would leave the
                // surplus jobs answered `WorkerLost` by channel drop and
                // mis-assign ratings on a short batch.
                let e = ServeError::Model(HireError::invalid_data(
                    "Server",
                    format!(
                        "predictor returned {} answers for a batch of {}",
                        answers.len(),
                        batch.len()
                    ),
                ));
                for job in &batch {
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
            Ok(Err(e)) => {
                for job in &batch {
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
            Err(_panic) => {
                // The batch is lost but the worker survives; callers get a
                // typed error instead of a hung receiver.
                shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                for job in &batch {
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(ServeError::WorkerLost));
                }
            }
        }
    }
}
