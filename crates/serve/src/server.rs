//! Micro-batching worker pool.
//!
//! Queries enter a bounded queue; worker threads coalesce up to
//! `max_batch` of them (waiting at most `batch_timeout` for stragglers)
//! and execute one batched predictor call. Backpressure is explicit: a
//! full queue rejects the submission with [`ServeError::Overloaded`]
//! instead of buffering unboundedly. A panicking predictor poisons only
//! the in-flight batch — its callers receive [`ServeError::WorkerLost`]
//! and the worker thread survives to serve the next batch.

use hire_error::HireError;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One rating query: "what would `user` rate `item`?"
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RatingQuery {
    /// User index.
    pub user: usize,
    /// Item index.
    pub item: usize,
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted rating, in the dataset's rating range.
    pub rating: f32,
    /// Submit-to-completion latency (includes queueing and batching).
    pub latency: Duration,
}

/// Serving errors.
#[derive(Debug)]
pub enum ServeError {
    /// The queue is full; retry later (backpressure).
    Overloaded {
        /// Jobs queued when the submission was rejected.
        queue_len: usize,
        /// The configured queue bound.
        max_queue: usize,
    },
    /// The worker executing this query panicked or disconnected.
    WorkerLost,
    /// The server is draining; no new queries are accepted.
    ShuttingDown,
    /// The model or context pipeline failed.
    Model(HireError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_len,
                max_queue,
            } => write!(f, "server overloaded: {queue_len} queued (max {max_queue})"),
            ServeError::WorkerLost => write!(f, "worker lost (panicked or disconnected)"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Re-creates an error for fan-out to every query of a failed batch
/// (`HireError` is not `Clone`, so the `Model` payload is re-wrapped).
fn replicate(e: &ServeError) -> ServeError {
    match e {
        ServeError::Overloaded {
            queue_len,
            max_queue,
        } => ServeError::Overloaded {
            queue_len: *queue_len,
            max_queue: *max_queue,
        },
        ServeError::WorkerLost => ServeError::WorkerLost,
        ServeError::ShuttingDown => ServeError::ShuttingDown,
        ServeError::Model(e) => ServeError::Model(HireError::invalid_data("serve", e.to_string())),
    }
}

/// Anything that can answer a batch of rating queries. Implemented by
/// [`crate::ServeEngine`]; tests inject slow/panicking stand-ins.
pub trait Predictor: Send + Sync {
    /// Predicts a rating per query, in order.
    fn predict_batch(&self, queries: &[RatingQuery]) -> Result<Vec<f32>, ServeError>;
}

/// Worker-pool settings.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Maximum queries coalesced into one predictor call.
    pub max_batch: usize,
    /// Queue bound; submissions beyond it are rejected as `Overloaded`.
    pub max_queue: usize,
    /// How long a worker waits for more queries before running a partial
    /// batch.
    pub batch_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_batch: 8,
            max_queue: 1024,
            batch_timeout: Duration::from_millis(2),
        }
    }
}

/// Lifetime counters for a server.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries answered (successfully or with a model error).
    pub completed: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Batches lost to predictor panics.
    pub worker_panics: u64,
}

struct Job {
    query: RatingQuery,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    config: ServerConfig,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    worker_panics: AtomicU64,
}

/// Recovers from a poisoned mutex: the shared state holds plain data that
/// stays consistent even if a holder panicked mid-critical-section.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// An in-flight query: wait on it for the prediction.
#[derive(Debug)]
pub struct PredictionHandle {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictionHandle {
    /// Blocks until the query is answered. A dropped worker surfaces as
    /// [`ServeError::WorkerLost`], never a hang.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

/// The micro-batching server.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Spawns `config.workers` threads serving `predictor`.
    pub fn start(predictor: Arc<dyn Predictor>, config: ServerConfig) -> Server {
        let config = ServerConfig {
            workers: config.workers.max(1),
            max_batch: config.max_batch.max(1),
            max_queue: config.max_queue.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            config,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = shared.clone();
                let predictor = predictor.clone();
                std::thread::spawn(move || worker_loop(shared, predictor))
            })
            .collect();
        Server {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues a query; returns a handle to wait on. Rejects immediately
    /// when the queue is full or the server is draining — an accepted
    /// submission is always answered.
    pub fn submit(&self, query: RatingQuery) -> Result<PredictionHandle, ServeError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock(&self.shared.state);
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.jobs.len() >= self.shared.config.max_queue {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    queue_len: st.jobs.len(),
                    max_queue: self.shared.config.max_queue,
                });
            }
            st.jobs.push_back(Job {
                query,
                enqueued: Instant::now(),
                reply: tx,
            });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.cv.notify_one();
        Ok(PredictionHandle { rx })
    }

    /// Blocking predict: submit + wait.
    pub fn predict(&self, query: RatingQuery) -> Result<Prediction, ServeError> {
        self.submit(query)?.wait()
    }

    /// Stops accepting queries, drains the queue, and joins the workers.
    /// Every query accepted before the call is still answered. Idempotent.
    pub fn shutdown(&self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Jobs currently queued (excluding in-flight batches).
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.state).jobs.len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>, predictor: Arc<dyn Predictor>) {
    loop {
        // Wait for the first job (or shutdown with an empty queue).
        let mut st = lock(&shared.state);
        let first = loop {
            if let Some(job) = st.jobs.pop_front() {
                break job;
            }
            if st.shutdown {
                return;
            }
            st = shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        };

        // Coalesce up to max_batch jobs, waiting at most batch_timeout for
        // stragglers. During shutdown, take whatever is queued and run.
        let mut batch = vec![first];
        let deadline = Instant::now() + shared.config.batch_timeout;
        while batch.len() < shared.config.max_batch {
            if let Some(job) = st.jobs.pop_front() {
                batch.push(job);
                continue;
            }
            if st.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = shared
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
            if timeout.timed_out() && st.jobs.is_empty() {
                break;
            }
        }
        drop(st);

        let queries: Vec<RatingQuery> = batch.iter().map(|j| j.query).collect();
        let result = catch_unwind(AssertUnwindSafe(|| predictor.predict_batch(&queries)));
        match result {
            Ok(Ok(ratings)) => {
                debug_assert_eq!(ratings.len(), batch.len());
                for (job, &rating) in batch.iter().zip(&ratings) {
                    // Count before replying so a caller that sees its
                    // answer also sees the counter include it.
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Ok(Prediction {
                        rating,
                        latency: job.enqueued.elapsed(),
                    }));
                }
            }
            Ok(Err(e)) => {
                for job in &batch {
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(replicate(&e)));
                }
            }
            Err(_panic) => {
                // The batch is lost but the worker survives; callers get a
                // typed error instead of a hung receiver.
                shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                for job in &batch {
                    let _ = job.reply.send(Err(ServeError::WorkerLost));
                }
            }
        }
    }
}
