//! LRU cache of sampled prediction contexts.
//!
//! Context sampling (BFS over the rating graph plus mask bookkeeping) is a
//! large share of per-query serving cost; repeated queries for the same
//! `(user, item)` under the same sampling settings can reuse the sampled
//! block. Entries are invalidated explicitly when a new rating edge
//! touches any user or item inside the cached block — the block's input
//! mask would otherwise go stale.

use hire_data::PredictionContext;
use hire_graph::{EpochSource, PinnedGraph};
use std::collections::HashMap;
use std::sync::Arc;

/// What a cached context was sampled for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Query user.
    pub user: usize,
    /// Query item.
    pub item: usize,
    /// Sampling strategy tag (e.g. `"neighborhood"`).
    pub strategy: &'static str,
    /// Context row budget.
    pub n: usize,
    /// Context column budget.
    pub m: usize,
}

/// Monotonic hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries removed by rating-edge invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hits / lookups, or 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    ctx: Arc<PredictionContext>,
    /// Memoized model output for this key, stamped with the
    /// [`crate::ModelVersion`] it was computed under. Valid exactly as
    /// long as the context is *and* only for that model version: the
    /// prediction is a pure function of `(model, key, graph)`, so a hot
    /// model swap invalidates every memo lazily — a lookup under a
    /// different version misses and recomputes, mirroring the graph-epoch
    /// guard that protects the context itself.
    prediction: Option<(u64, f32)>,
    last_used: u64,
}

/// A context exported for hot-key replication: the cached block plus its
/// version-stamped memoized prediction, if any.
pub type ExportedContext = (Arc<PredictionContext>, Option<(u64, f32)>);

/// A cache hit: the sampled context, plus the memoized prediction if one
/// was stored since the entry was (re)created — and was computed under the
/// model version the lookup asked for.
#[derive(Debug, Clone)]
pub struct CachedContext {
    /// The sampled prediction context.
    pub ctx: Arc<PredictionContext>,
    /// The memoized model output, if already computed under the queried
    /// model version.
    pub prediction: Option<f32>,
}

/// Capacity-bounded LRU map from [`CacheKey`] to sampled contexts.
///
/// Recency is tracked with a monotonic tick instead of a linked list: at
/// the cache's size (thousands of entries) an `O(len)` scan on eviction is
/// cheaper and simpler than pointer surgery, and eviction only happens on
/// inserts past capacity.
pub struct ContextCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl ContextCache {
    /// Creates a cache holding at most `capacity` contexts. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ContextCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up a context, marking it most-recently-used on hit. The memo
    /// is only surfaced if it was stored under `version` — a memo from a
    /// swapped-out model is stale for the current model but the *context*
    /// stays valid (sampling does not depend on the model), so only the
    /// prediction half of the entry is withheld.
    pub fn get(&mut self, key: &CacheKey, version: u64) -> Option<CachedContext> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(CachedContext {
                    ctx: entry.ctx.clone(),
                    prediction: entry
                        .prediction
                        .and_then(|(v, p)| (v == version).then_some(p)),
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a context, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, key: CacheKey, ctx: Arc<PredictionContext>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                ctx,
                prediction: None,
                last_used: self.tick,
            },
        );
    }

    /// The epoch-guarded insert shared by the single-engine path and the
    /// sharded per-shard snapshots: caches `ctx` only if `source` (the
    /// graph the context was sampled from) has not moved past the epoch of
    /// the pinned snapshot the sample was taken against. A sample that
    /// raced a rating insert is still good enough to *answer* the query
    /// that raced the write, but must never be memoized — its block mask
    /// may already be stale. Returns whether the context was cached.
    pub fn insert_if_current(
        &mut self,
        key: CacheKey,
        ctx: Arc<PredictionContext>,
        pinned: &PinnedGraph,
        source: &dyn EpochSource,
    ) -> bool {
        if !pinned.is_current(source) {
            return false;
        }
        self.insert(key, ctx);
        true
    }

    /// Reads an entry without touching recency or hit/miss counters — the
    /// export side of hot-key replication, which must not distort the LRU
    /// order or the hit-rate telemetry of the owning shard. The memo is
    /// returned with its version stamp so the adopting cache can re-stamp
    /// it exactly.
    pub fn peek(&self, key: &CacheKey) -> Option<ExportedContext> {
        self.map.get(key).map(|e| (e.ctx.clone(), e.prediction))
    }

    /// Memoizes the model output for a live entry. No-op if the entry was
    /// evicted or invalidated in the meantime — and, crucially, if the key
    /// was *resampled*: `ctx` must be the exact context the prediction was
    /// computed from (`Arc` identity), otherwise a forward that raced an
    /// `invalidate_edge` + fresh `insert` would attach a stale value to
    /// the new context and the cache would serve it forever after.
    /// The memo is stamped with the model `version` that computed it; a
    /// lookup under any other version ignores it.
    pub fn store_prediction(
        &mut self,
        key: &CacheKey,
        ctx: &Arc<PredictionContext>,
        version: u64,
        prediction: f32,
    ) {
        if let Some(entry) = self.map.get_mut(key) {
            if Arc::ptr_eq(&entry.ctx, ctx) {
                entry.prediction = Some((version, prediction));
            }
        }
    }

    /// Drops every cached context whose block contains `user` or `item` —
    /// called when the rating edge `(user, item)` is inserted into the
    /// graph. Returns the number of entries removed.
    pub fn invalidate_edge(&mut self, user: usize, item: usize) -> usize {
        let before = self.map.len();
        self.map
            .retain(|_, e| !e.ctx.users.contains(&user) && !e.ctx.items.contains(&item));
        let removed = before - self.map.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hire_tensor::NdArray;

    fn key(user: usize, item: usize) -> CacheKey {
        CacheKey {
            user,
            item,
            strategy: "test",
            n: 4,
            m: 4,
        }
    }

    fn ctx(users: Vec<usize>, items: Vec<usize>) -> Arc<PredictionContext> {
        let (n, m) = (users.len(), items.len());
        Arc::new(PredictionContext {
            users,
            items,
            ratings: NdArray::zeros([n, m]),
            input_mask: NdArray::zeros([n, m]),
            target_mask: NdArray::zeros([n, m]),
        })
    }

    /// Version stamp used by tests that don't exercise versioning.
    const V1: u64 = 1;

    #[test]
    fn hit_miss_counters() {
        let mut cache = ContextCache::new(4);
        assert!(cache.get(&key(0, 0), V1).is_none());
        cache.insert(key(0, 0), ctx(vec![0], vec![0]));
        assert!(cache.get(&key(0, 0), V1).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ContextCache::new(2);
        cache.insert(key(0, 0), ctx(vec![0], vec![0]));
        cache.insert(key(1, 1), ctx(vec![1], vec![1]));
        let _ = cache.get(&key(0, 0), V1); // 0 is now more recent than 1
        cache.insert(key(2, 2), ctx(vec![2], vec![2]));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(&key(1, 1), V1).is_none(),
            "LRU entry must be evicted"
        );
        assert!(cache.get(&key(0, 0), V1).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidation_removes_touching_blocks_only() {
        let mut cache = ContextCache::new(8);
        cache.insert(key(0, 0), ctx(vec![0, 1], vec![0, 1]));
        cache.insert(key(2, 2), ctx(vec![2, 3], vec![2, 3]));
        cache.insert(key(4, 4), ctx(vec![4, 1], vec![4, 5])); // shares user 1
        let removed = cache.invalidate_edge(1, 9);
        assert_eq!(removed, 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(2, 2), V1).is_some());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn memoized_prediction_lives_and_dies_with_its_entry() {
        let mut cache = ContextCache::new(4);
        let first = ctx(vec![0], vec![0]);
        cache.insert(key(0, 0), first.clone());
        assert_eq!(cache.get(&key(0, 0), V1).unwrap().prediction, None);
        cache.store_prediction(&key(0, 0), &first, V1, 3.5);
        assert_eq!(cache.get(&key(0, 0), V1).unwrap().prediction, Some(3.5));
        // Re-inserting (fresh sample) clears the memo.
        let second = ctx(vec![0], vec![0]);
        cache.insert(key(0, 0), second.clone());
        assert_eq!(cache.get(&key(0, 0), V1).unwrap().prediction, None);
        // Invalidation drops the memo together with the context.
        cache.store_prediction(&key(0, 0), &second, V1, 4.0);
        cache.invalidate_edge(0, 9);
        assert!(cache.get(&key(0, 0), V1).is_none());
        // Storing against a dead key is a no-op, not a resurrection.
        cache.store_prediction(&key(0, 0), &second, V1, 1.0);
        assert!(cache.get(&key(0, 0), V1).is_none());
    }

    #[test]
    fn store_prediction_rejects_mismatched_context() {
        let mut cache = ContextCache::new(4);
        let stale = ctx(vec![0], vec![0]);
        let fresh = ctx(vec![0], vec![0]);
        cache.insert(key(0, 0), fresh.clone());
        // A forward computed against `stale` raced an invalidate + fresh
        // insert: its value must not attach to the fresh context.
        cache.store_prediction(&key(0, 0), &stale, V1, 2.5);
        assert_eq!(cache.get(&key(0, 0), V1).unwrap().prediction, None);
        cache.store_prediction(&key(0, 0), &fresh, V1, 2.5);
        assert_eq!(cache.get(&key(0, 0), V1).unwrap().prediction, Some(2.5));
    }

    #[test]
    fn memo_is_scoped_to_its_model_version() {
        let mut cache = ContextCache::new(4);
        let c = ctx(vec![0], vec![0]);
        cache.insert(key(0, 0), c.clone());
        cache.store_prediction(&key(0, 0), &c, 1, 3.5);
        // The context survives a model swap; the memo does not.
        let hit = cache.get(&key(0, 0), 2).expect("context still cached");
        assert_eq!(hit.prediction, None, "v1 memo is stale for v2");
        assert!(Arc::ptr_eq(&hit.ctx, &c), "context is model-independent");
        // Still valid for a batch that pinned v1 before the swap.
        assert_eq!(cache.get(&key(0, 0), 1).unwrap().prediction, Some(3.5));
        // The v2 forward overwrites the stamp.
        cache.store_prediction(&key(0, 0), &c, 2, 4.25);
        assert_eq!(cache.get(&key(0, 0), 2).unwrap().prediction, Some(4.25));
        assert_eq!(cache.get(&key(0, 0), 1).unwrap().prediction, None);
    }

    #[test]
    fn epoch_guarded_insert_refuses_stale_samples() {
        use hire_graph::{BipartiteGraph, EpochedGraph, Rating};
        let g = EpochedGraph::new(BipartiteGraph::empty(4, 4));
        let mut cache = ContextCache::new(4);
        // Sampled against the pinned snapshot, graph unchanged: cached.
        let pin = g.pin();
        assert!(cache.insert_if_current(key(0, 0), ctx(vec![0], vec![0]), &pin, &g));
        assert_eq!(cache.len(), 1);
        // A commit lands between pin and insert: the sample is refused.
        let pin = g.pin();
        g.commit_edges(&[Rating::new(1, 1, 3.0)]);
        assert!(!cache.insert_if_current(key(1, 1), ctx(vec![1], vec![1]), &pin, &g));
        assert!(cache.get(&key(1, 1), V1).is_none());
    }

    #[test]
    fn peek_does_not_touch_recency_or_counters() {
        let mut cache = ContextCache::new(2);
        let c = ctx(vec![0], vec![0]);
        cache.insert(key(0, 0), c.clone());
        cache.store_prediction(&key(0, 0), &c, 7, 2.5);
        let before = cache.stats();
        let (peeked, memo) = cache.peek(&key(0, 0)).expect("live entry");
        assert!(Arc::ptr_eq(&peeked, &c));
        assert_eq!(memo, Some((7, 2.5)));
        assert!(cache.peek(&key(3, 3)).is_none());
        assert_eq!(cache.stats(), before, "peek must not count as a lookup");
        // Peeking key(0,0) must not have refreshed it: inserting two more
        // evicts it as the oldest.
        cache.insert(key(1, 1), ctx(vec![1], vec![1]));
        cache.insert(key(2, 2), ctx(vec![2], vec![2]));
        assert!(
            cache.peek(&key(0, 0)).is_none(),
            "peek must not refresh LRU"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ContextCache::new(0);
        cache.insert(key(0, 0), ctx(vec![0], vec![0]));
        assert!(cache.is_empty());
        assert!(cache.get(&key(0, 0), V1).is_none());
    }
}
