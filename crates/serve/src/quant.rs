//! The quantized serving tier: a [`FrozenModel`] with every weight matrix
//! compressed post-training (symmetric per-tensor int8, or f16 as a
//! config option) and dequantized on the fly inside the matmul kernels.
//!
//! A [`QuantizedModel`] is derived mechanically from any frozen model
//! ([`QuantizedModel::from_frozen`]) — the engine rebuilds one on every
//! `install_model` hot swap, so the quantized tier always tracks the
//! incumbent version. Its forward mirrors the f32 forward operation for
//! operation: embedding gathers, the three MHSA projections per HIM
//! layer, and the decoder head read compressed weights
//! (`linalg::gather_rows_dequant` / `linear_nd_dequant`), while
//! activations, softmax, layer norms, and biases stay f32.
//!
//! Determinism: dequantization is a pure per-element function and the
//! dequant kernels keep the single-accumulator ascending-`k` chain of the
//! f32 kernels, so quantized predictions are bit-identical across thread
//! counts.
//!
//! Error bound: every compressed tensor records its worst per-element
//! reconstruction error; [`QuantizedModel::max_weight_err`] is the max
//! across all of them. The prediction-level error this induces is
//! validated against the f32 oracle in `tests/quant.rs` (the decoder's
//! `α·sigmoid` squashes logit error by at most `α/4` per logit unit,
//! which keeps rating-scale deltas small — the test pins the observed
//! bound).

use crate::frozen::{FrozenModel, FrozenNorm, LAYER_NORM_EPS};
use hire_data::{Dataset, PredictionContext};
use hire_error::{HireError, HireResult};
use hire_nn::{mhsa_forward_quant, QuantMhsaWeights};
use hire_par::SendPtr;
use hire_tensor::{linalg, NdArray, QuantMode, QuantizedTensor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One HIM block with quantized MHSA projections; layer-norm affine
/// parameters stay f32 (they are vectors — negligible memory, and norms
/// are sensitive to weight rounding).
#[derive(Debug, Clone)]
struct QuantBlock {
    mbu: Option<QuantMhsaWeights>,
    mbi: Option<QuantMhsaWeights>,
    mba: Option<QuantMhsaWeights>,
    norm_mbu: Option<FrozenNorm>,
    norm_mbi: Option<FrozenNorm>,
    norm_mba: Option<FrozenNorm>,
    residual: bool,
}

/// A frozen HIRE model with compressed weights — the second rung of the
/// degradation ladder (DESIGN.md §13).
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    user_embeddings: Vec<QuantizedTensor>,
    item_embeddings: Vec<QuantizedTensor>,
    rating_embedding: QuantizedTensor,
    blocks: Vec<QuantBlock>,
    decoder_w: QuantizedTensor,
    decoder_b: NdArray,
    alpha: f32,
    min_rating: f32,
    rating_levels: usize,
    user_id_only: bool,
    item_id_only: bool,
    attr_dim: usize,
    mode: QuantMode,
    max_weight_err: f32,
}

impl QuantizedModel {
    /// Compresses a frozen model under `mode`. Pure post-training: no
    /// calibration data, no retraining — safe to run inside the hot-swap
    /// path.
    pub fn from_frozen(model: &FrozenModel, mode: QuantMode) -> Self {
        fn q(a: &NdArray, mode: QuantMode, max_err: &mut f32) -> QuantizedTensor {
            let t = QuantizedTensor::quantize(a, mode);
            *max_err = max_err.max(t.max_err());
            t
        }
        fn q_mhsa(
            w: &hire_nn::MhsaWeights,
            mode: QuantMode,
            max_err: &mut f32,
        ) -> QuantMhsaWeights {
            let qw = QuantMhsaWeights::from_weights(w, mode);
            *max_err = max_err.max(qw.max_weight_err());
            qw
        }
        let mut max_err = 0.0f32;
        let user_embeddings: Vec<_> = model
            .user_embeddings
            .iter()
            .map(|a| q(a, mode, &mut max_err))
            .collect();
        let item_embeddings: Vec<_> = model
            .item_embeddings
            .iter()
            .map(|a| q(a, mode, &mut max_err))
            .collect();
        let rating_embedding = q(&model.rating_embedding, mode, &mut max_err);
        let blocks: Vec<QuantBlock> = model
            .blocks
            .iter()
            .map(|b| QuantBlock {
                mbu: b.mbu.as_ref().map(|w| q_mhsa(w, mode, &mut max_err)),
                mbi: b.mbi.as_ref().map(|w| q_mhsa(w, mode, &mut max_err)),
                mba: b.mba.as_ref().map(|w| q_mhsa(w, mode, &mut max_err)),
                norm_mbu: b.norm_mbu.clone(),
                norm_mbi: b.norm_mbi.clone(),
                norm_mba: b.norm_mba.clone(),
                residual: b.residual,
            })
            .collect();
        let decoder_w = q(&model.decoder_w, mode, &mut max_err);
        QuantizedModel {
            user_embeddings,
            item_embeddings,
            rating_embedding,
            blocks,
            decoder_w,
            decoder_b: model.decoder_b.clone(),
            alpha: model.alpha,
            min_rating: model.min_rating,
            rating_levels: model.rating_levels,
            user_id_only: model.user_id_only,
            item_id_only: model.item_id_only,
            attr_dim: model.attr_dim,
            mode,
            max_weight_err: max_err,
        }
    }

    /// The compression scheme this model was built with.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Worst per-element weight reconstruction error across every
    /// compressed tensor (recorded at quantization time).
    pub fn max_weight_err(&self) -> f32 {
        self.max_weight_err
    }

    /// The documented prediction-error bound of this quantized model
    /// against its f32 [`FrozenModel`] oracle, in rating units.
    ///
    /// Predictions come out of `α · sigmoid(g(H))`, so every prediction
    /// lives in `[0, α]` and the sigmoid's 1/4 Lipschitz constant damps
    /// the accumulated weight-reconstruction error of the decoder input.
    /// The scale factors below (5% of the output range for int8, 1% for
    /// f16) are pinned empirically across the config zoo and random-weight
    /// property tests in `hire-serve/tests/quant.rs` and hold with a wide
    /// margin; the serve benchmark's smoke gate re-checks the int8 bound
    /// end to end on every CI run.
    pub fn prediction_bound(&self) -> f32 {
        match self.mode {
            QuantMode::Int8 => 0.05 * self.alpha,
            QuantMode::F16 => 0.01 * self.alpha,
        }
    }

    /// Number of attribute channels `h = h_u + h_i + 1`.
    pub fn num_attrs(&self) -> usize {
        self.user_embeddings.len() + self.item_embeddings.len() + 1
    }

    /// Embedding width `e = h * f`.
    pub fn embed_dim(&self) -> usize {
        self.num_attrs() * self.attr_dim
    }

    fn user_code(&self, dataset: &Dataset, user: usize, attr: usize) -> usize {
        if self.user_id_only {
            user
        } else {
            dataset.user_attrs[user][attr]
        }
    }

    fn item_code(&self, dataset: &Dataset, item: usize, attr: usize) -> usize {
        if self.item_id_only {
            item
        } else {
            dataset.item_attrs[item][attr]
        }
    }

    /// Mirror of `FrozenModel::encode` with dequantizing gathers.
    fn encode(&self, ctx: &PredictionContext, dataset: &Dataset) -> HireResult<NdArray> {
        let n = ctx.n();
        let m = ctx.m();
        let f = self.attr_dim;
        for &u in &ctx.users {
            if u >= dataset.num_users {
                return Err(HireError::invalid_data(
                    "QuantizedModel",
                    format!("context user {u} out of range {}", dataset.num_users),
                ));
            }
        }
        for &i in &ctx.items {
            if i >= dataset.num_items {
                return Err(HireError::invalid_data(
                    "QuantizedModel",
                    format!("context item {i} out of range {}", dataset.num_items),
                ));
            }
        }

        let user_feats: Vec<NdArray> = self
            .user_embeddings
            .iter()
            .enumerate()
            .map(|(k, emb)| {
                let codes: Vec<usize> = ctx
                    .users
                    .iter()
                    .map(|&u| self.user_code(dataset, u, k))
                    .collect();
                linalg::gather_rows_dequant(emb, &codes)
            })
            .collect();
        let refs: Vec<&NdArray> = user_feats.iter().collect();
        let x_u = linalg::concat_last(&refs); // [n, hu*f]

        let item_feats: Vec<NdArray> = self
            .item_embeddings
            .iter()
            .enumerate()
            .map(|(k, emb)| {
                let codes: Vec<usize> = ctx
                    .items
                    .iter()
                    .map(|&i| self.item_code(dataset, i, k))
                    .collect();
                linalg::gather_rows_dequant(emb, &codes)
            })
            .collect();
        let refs: Vec<&NdArray> = item_feats.iter().collect();
        let x_i = linalg::concat_last(&refs); // [m, hi*f]

        let mut codes = Vec::with_capacity(n * m);
        for flat in 0..n * m {
            let visible = ctx.input_mask.as_slice()[flat] == 1.0;
            let code = if visible {
                let value = ctx.ratings.as_slice()[flat];
                ((value - self.min_rating).round() as usize).min(self.rating_levels - 1)
            } else {
                0
            };
            codes.push(code);
        }
        let raw_r = linalg::gather_rows_dequant(&self.rating_embedding, &codes); // [n*m, f]
        let mut mask = NdArray::zeros([n * m, f]);
        for flat in 0..n * m {
            if ctx.input_mask.as_slice()[flat] == 1.0 {
                for j in 0..f {
                    mask.as_mut_slice()[flat * f + j] = 1.0;
                }
            }
        }
        let x_r = linalg::broadcast_zip(&raw_r, &mask, |x, y| x * y).reshaped(vec![n, m, f]);

        let hu_f = self.user_embeddings.len() * f;
        let hi_f = self.item_embeddings.len() * f;
        let u_grid = linalg::broadcast_zip(
            &x_u.reshape([n, 1, hu_f]),
            &NdArray::ones([n, m, hu_f]),
            |x, y| x * y,
        );
        let i_grid = linalg::broadcast_zip(
            &x_i.reshape([1, m, hi_f]),
            &NdArray::ones([n, m, hi_f]),
            |x, y| x * y,
        );
        Ok(linalg::concat_last(&[&u_grid, &i_grid, &x_r]))
    }

    /// Residual-add + optional LayerNorm, mirroring `FrozenModel::post`.
    fn post(x: &NdArray, y: NdArray, residual: bool, norm: &Option<FrozenNorm>) -> NdArray {
        let z = if residual {
            linalg::broadcast_zip(x, &y, |a, b| a + b)
        } else {
            y
        };
        match norm {
            Some(nm) => linalg::layer_norm_last_nd(&z, &nm.gamma, &nm.beta, LAYER_NORM_EPS),
            None => z,
        }
    }

    /// HIM blocks over a batch of stacked contexts `[B, n, m, e]` with
    /// quantized MHSA projections.
    fn run_blocks(&self, mut x: NdArray, bsz: usize, n: usize, m: usize) -> NdArray {
        let h = self.num_attrs();
        let f = self.attr_dim;
        let e = h * f;
        for block in &self.blocks {
            if let Some(w) = &block.mbu {
                let per_item = linalg::permute(&x, &[0, 2, 1, 3]).reshaped(vec![bsz * m, n, e]);
                let y = mhsa_forward_quant(&per_item, w);
                let y = linalg::permute(&y.reshaped(vec![bsz, m, n, e]), &[0, 2, 1, 3]);
                x = Self::post(&x, y, block.residual, &block.norm_mbu);
            }
            if let Some(w) = &block.mbi {
                let y =
                    mhsa_forward_quant(&x.reshape([bsz * n, m, e]), w).reshaped(vec![bsz, n, m, e]);
                x = Self::post(&x, y, block.residual, &block.norm_mbi);
            }
            if let Some(w) = &block.mba {
                let y = mhsa_forward_quant(&x.reshape([bsz * n * m, h, f]), w)
                    .reshaped(vec![bsz, n, m, e]);
                x = Self::post(&x, y, block.residual, &block.norm_mba);
            }
        }
        x
    }

    /// Decoder: `α · sigmoid(H W + b)` with a dequantizing head matmul.
    fn decode(&self, x: &NdArray, bsz: usize, n: usize, m: usize) -> NdArray {
        let y = linalg::linear_nd_dequant(x, &self.decoder_w); // [B, n, m, 1]
        let y = linalg::broadcast_zip(&y, &self.decoder_b, |a, b| a + b);
        let alpha = self.alpha;
        y.map(|v| 1.0 / (1.0 + (-v).exp()))
            .map(|v| v * alpha)
            .reshaped(vec![bsz, n, m])
    }

    /// Tape-free quantized forward: the predicted rating matrix `[n, m]`.
    pub fn forward_nograd(
        &self,
        ctx: &PredictionContext,
        dataset: &Dataset,
    ) -> HireResult<NdArray> {
        let n = ctx.n();
        let m = ctx.m();
        let h = self.encode(ctx, dataset)?;
        let e = self.embed_dim();
        let x = self.run_blocks(h.reshaped(vec![1, n, m, e]), 1, n, m);
        Ok(self.decode(&x, 1, n, m).reshaped(vec![n, m]))
    }

    /// Batched quantized forward with a deadline budget — the same
    /// contract as `FrozenModel::forward_nograd_batch_within`: `Ok(None)`
    /// when the deadline passed before the block stack started.
    pub fn forward_nograd_batch_within(
        &self,
        ctxs: &[&PredictionContext],
        dataset: &Dataset,
        deadline: Option<Instant>,
    ) -> HireResult<Option<Vec<NdArray>>> {
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        let Some(first) = ctxs.first() else {
            return Ok(Some(Vec::new()));
        };
        let (n, m) = (first.n(), first.m());
        let bsz = ctxs.len();
        let e = self.embed_dim();
        for ctx in ctxs {
            if ctx.n() != n || ctx.m() != m {
                return Err(HireError::invalid_data(
                    "QuantizedModel",
                    format!(
                        "batched contexts must share a shape: {}x{} vs {n}x{m}",
                        ctx.n(),
                        ctx.m()
                    ),
                ));
            }
        }
        let slab = n * m * e;
        let mut stacked = vec![0.0f32; bsz * slab];
        let stacked_ptr = SendPtr(stacked.as_mut_ptr());
        let timed_out = AtomicBool::new(false);
        let outcomes: Vec<HireResult<()>> = hire_par::parallel_map_chunks(bsz, 1, |rr| {
            for bi in rr {
                if timed_out.load(Ordering::Relaxed) || expired() {
                    timed_out.store(true, Ordering::Relaxed);
                    return Ok(());
                }
                let h = self.encode(ctxs[bi], dataset)?;
                // SAFETY: each context owns a disjoint slab of `stacked`.
                unsafe { stacked_ptr.slice_mut(bi * slab, slab) }.copy_from_slice(h.as_slice());
            }
            Ok(())
        });
        for outcome in outcomes {
            outcome?;
        }
        if timed_out.load(Ordering::Relaxed) || expired() {
            return Ok(None);
        }
        let x = self.run_blocks(NdArray::from_vec(vec![bsz, n, m, e], stacked), bsz, n, m);
        let out = self.decode(&x, bsz, n, m);
        Ok(Some(
            out.as_slice()
                .chunks(n * m)
                .map(|chunk| NdArray::from_vec(vec![n, m], chunk.to_vec()))
                .collect(),
        ))
    }
}
