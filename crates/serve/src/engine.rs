//! The serving engine: frozen model + rating graph + context cache.

use crate::cache::{CacheKey, CacheStats, ContextCache};
use crate::frozen::FrozenModel;
use crate::server::{Predictor, RatingQuery, ServeError};
use hire_data::{test_context_with_ratio, Dataset, PredictionContext};
use hire_error::HireError;
use hire_graph::{BipartiteGraph, NeighborhoodSampler, Rating};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// The sampling strategy tag recorded in cache keys.
const STRATEGY: &str = "neighborhood";

/// Engine settings (context sampling + cache).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Context row budget `n`.
    pub context_users: usize,
    /// Context column budget `m`.
    pub context_items: usize,
    /// Fraction of visible block edges revealed as input (the paper masks
    /// test contexts to training density; see
    /// [`hire_data::test_context_with_ratio`]).
    pub keep_ratio: f32,
    /// Context-cache capacity; 0 disables caching.
    pub cache_capacity: usize,
    /// Base seed for deterministic per-query context sampling.
    pub seed: u64,
}

impl EngineConfig {
    /// Derives serving settings from a model configuration: same context
    /// budget and input density the model was trained with.
    pub fn from_model_config(config: &hire_core::HireConfig) -> Self {
        EngineConfig {
            context_users: config.context_users,
            context_items: config.context_items,
            keep_ratio: config.input_ratio,
            cache_capacity: 4096,
            seed: 0x48495245, // "HIRE"
        }
    }
}

/// Serves rating queries from a frozen model.
///
/// Contexts are sampled deterministically per `(seed, user, item)` and
/// memoized in an LRU [`ContextCache`]; `insert_rating` updates the graph
/// and invalidates every cached block the new edge touches.
pub struct ServeEngine {
    model: FrozenModel,
    dataset: Arc<Dataset>,
    graph: RwLock<Arc<BipartiteGraph>>,
    cache: Mutex<ContextCache>,
    config: EngineConfig,
}

/// Poison recovery: cache and graph stay consistent across a panicking
/// holder (plain data updates only).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// SplitMix64-style mix of the engine seed and the query pair, so context
/// sampling is reproducible per query and stable across cache evictions.
fn context_seed(base: u64, user: usize, item: usize) -> u64 {
    let mut z = base
        ^ (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (item as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ServeEngine {
    /// Builds an engine over the dataset's rating graph.
    pub fn new(model: FrozenModel, dataset: Arc<Dataset>, config: EngineConfig) -> Self {
        let graph = Arc::new(dataset.graph());
        ServeEngine {
            model,
            dataset,
            graph: RwLock::new(graph),
            cache: Mutex::new(ContextCache::new(config.cache_capacity)),
            config,
        }
    }

    /// The frozen model being served.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Context-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        lock(&self.cache).stats()
    }

    /// Live cache entries.
    pub fn cache_len(&self) -> usize {
        lock(&self.cache).len()
    }

    /// Inserts a new observed rating into the serving graph and invalidates
    /// every cached context whose block contains the edge's user or item.
    /// Returns the number of invalidated contexts.
    pub fn insert_rating(&self, rating: Rating) -> Result<usize, ServeError> {
        if rating.user >= self.dataset.num_users || rating.item >= self.dataset.num_items {
            return Err(ServeError::Model(HireError::invalid_data(
                "ServeEngine",
                format!(
                    "rating edge ({}, {}) out of range",
                    rating.user, rating.item
                ),
            )));
        }
        {
            let mut graph = self.graph.write().unwrap_or_else(|p| p.into_inner());
            *graph = Arc::new(graph.with_extra_edges(&[rating]));
        }
        Ok(lock(&self.cache).invalidate_edge(rating.user, rating.item))
    }

    /// Resolves the prediction context for a query: cache hit, or a fresh
    /// deterministic sample over the current graph.
    pub fn context_for(&self, query: &RatingQuery) -> Result<Arc<PredictionContext>, ServeError> {
        self.resolve(query).map(|(_, ctx, _)| ctx)
    }

    /// `context_for` plus the cache key and any memoized prediction. The
    /// memo is exact, not approximate: the model is frozen, sampling is
    /// deterministic per `(seed, user, item)`, and graph updates invalidate
    /// the whole entry — so a stored prediction is bit-identical to
    /// recomputing it.
    fn resolve(
        &self,
        query: &RatingQuery,
    ) -> Result<(CacheKey, Arc<PredictionContext>, Option<f32>), ServeError> {
        if query.user >= self.dataset.num_users {
            return Err(ServeError::Model(HireError::invalid_data(
                "ServeEngine",
                format!(
                    "user {} out of range {}",
                    query.user, self.dataset.num_users
                ),
            )));
        }
        if query.item >= self.dataset.num_items {
            return Err(ServeError::Model(HireError::invalid_data(
                "ServeEngine",
                format!(
                    "item {} out of range {}",
                    query.item, self.dataset.num_items
                ),
            )));
        }
        let key = CacheKey {
            user: query.user,
            item: query.item,
            strategy: STRATEGY,
            n: self.config.context_users,
            m: self.config.context_items,
        };
        if let Some(hit) = lock(&self.cache).get(&key) {
            return Ok((key, hit.ctx, hit.prediction));
        }
        let graph = self.graph.read().unwrap_or_else(|p| p.into_inner()).clone();
        let mut rng = StdRng::seed_from_u64(context_seed(self.config.seed, query.user, query.item));
        // The query cell is target-masked, so its placeholder value never
        // reaches the model input.
        let placeholder = Rating::new(query.user, query.item, self.dataset.min_rating);
        let ctx = test_context_with_ratio(
            &graph,
            &NeighborhoodSampler,
            &[placeholder],
            self.config.context_users,
            self.config.context_items,
            self.config.keep_ratio,
            &mut rng,
        )
        .map_err(ServeError::Model)?;
        let ctx = Arc::new(ctx);
        lock(&self.cache).insert(key.clone(), ctx.clone());
        Ok((key, ctx, None))
    }
}

/// A deduplicated query awaiting a forward: its cache key, resolved
/// context, and the positions in the incoming batch waiting on the answer.
struct PendingQuery {
    key: CacheKey,
    ctx: Arc<PredictionContext>,
    waiters: Vec<usize>,
}

impl Predictor for ServeEngine {
    fn predict_batch(&self, queries: &[RatingQuery]) -> Result<Vec<f32>, ServeError> {
        let mut out = vec![0.0f32; queries.len()];
        // Deduplicate the batch: coalesced traffic is skewed, so one
        // forward per distinct (user, item) answers every duplicate. The
        // memo fast-path skips the forward entirely for contexts whose
        // prediction was already computed and not invalidated since.
        let mut pending: BTreeMap<(usize, usize), PendingQuery> = BTreeMap::new();
        for (i, q) in queries.iter().enumerate() {
            if let Some(p) = pending.get_mut(&(q.user, q.item)) {
                p.waiters.push(i);
                continue;
            }
            let (key, ctx, memo) = self.resolve(q)?;
            match memo {
                Some(v) => out[i] = v,
                None => {
                    pending.insert(
                        (q.user, q.item),
                        PendingQuery {
                            key,
                            ctx,
                            waiters: vec![i],
                        },
                    );
                }
            }
        }
        // Group same-shape contexts into one stacked forward each; the
        // sampler may return fewer rows/columns than budgeted on tiny
        // graphs, so shapes can differ across queries.
        let unique: Vec<&PendingQuery> = pending.values().collect();
        let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (k, p) in unique.iter().enumerate() {
            groups.entry((p.ctx.n(), p.ctx.m())).or_default().push(k);
        }
        for indices in groups.values() {
            let refs: Vec<&PredictionContext> = indices.iter().map(|&k| &*unique[k].ctx).collect();
            let preds = self
                .model
                .forward_nograd_batch(&refs, &self.dataset)
                .map_err(ServeError::Model)?;
            for (p, &k) in indices.iter().enumerate() {
                let PendingQuery { key, ctx, waiters } = unique[k];
                let (row, col) = match (ctx.user_row(key.user), ctx.item_col(key.item)) {
                    (Some(r), Some(c)) => (r, c),
                    _ => {
                        return Err(ServeError::Model(HireError::invalid_data(
                            "ServeEngine",
                            format!(
                                "query ({}, {}) missing from its context",
                                key.user, key.item
                            ),
                        )))
                    }
                };
                let value = preds[p].at(&[row, col]);
                lock(&self.cache).store_prediction(key, value);
                for &i in waiters {
                    out[i] = value;
                }
            }
        }
        Ok(out)
    }
}
